//! A field bug in a web server: the paper's uServer scenario (§5.3).
//!
//! ```text
//! cargo run --release --example webserver_field_bug
//! ```
//!
//! The uServer runs at a "user site" serving HTTP requests; after the
//! workload is processed the process is crashed externally (SEGFAULT
//! injection), exactly like the paper's methodology. The developer then
//! reproduces the execution from the partial branch log — recovering
//! what the requests must have looked like without ever seeing them.
//!
//! The example also reproduces Table 3's instrumentation-vs-debugging
//! balance. The combined (dynamic+static) plan logs far fewer branches
//! than static, and for three PRs that thrift made the server bug
//! irreproducible (the old ∞ rows: partially-instrumented scan loops
//! shifted the flat bitvector out of alignment). The combined plan now
//! *spends* a little more instrumentation — per-branch-location bit
//! cursors — and reproduces too; the static plan stays the cheap-replay
//! / expensive-logging end of the tradeoff.

use retrace::prelude::*;
use retrace::{progs, workloads};

fn main() {
    // Build the server (application + mini-libc).
    let cp = progs::Program::Userver.build().expect("userver compiles");
    println!(
        "uServer: {} branch locations ({} in libc)",
        cp.n_branches(),
        cp.prog
            .ast
            .branches
            .iter()
            .filter(|b| b.unit == progs::Program::Userver.libc_unit().unwrap())
            .count()
    );

    // The crash scenario: one POST request with a body.
    let scenario = &workloads::scenarios(42)[2];
    println!(
        "scenario {}: {} — {} request(s)",
        scenario.id,
        scenario.description,
        scenario.requests.len()
    );

    // Input shape: one client connection per request, contents symbolic.
    let spec = InputSpec {
        argv: vec![ArgSpec::Fixed(b"userver".to_vec())],
        clients: scenario
            .requests
            .iter()
            .map(|r| ClientSpec {
                packet_lens: vec![r.len()],
                close_after: true,
            })
            .collect(),
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![progs::Program::Userver.libc_unit().unwrap()];
    // Crash the server once the workload is served (§5.3).
    wb.kernel.signal_plan = Some(SignalPlan {
        sig: 11,
        after_all_conns_served: true,
        after_n_syscalls: None,
    });

    // Analyze. On the uServer the concolic exploration exhausts its
    // frontier well below full coverage — exactly the paper's LC setting.
    let bundle = wb.analyze(48);
    let combined = wb.plan(Method::DynamicStatic, &bundle);
    let static_plan = wb.plan(Method::Static, &bundle);
    println!(
        "dynamic+static instruments {}/{} locations, static {}/{} (dynamic coverage {:.0}%)",
        combined.n_instrumented(),
        wb.cp.n_branches(),
        static_plan.n_instrumented(),
        wb.cp.n_branches(),
        bundle.coverage_pct()
    );

    // User site, combined plan: partial instrumentation of the parse
    // loops makes the flat bitvector fragile, so the plan opts into the
    // per-location cursor format (visible in the report's spend counter)
    // — that spend is what turned this row from ∞ into a finite one.
    let parts = InputParts {
        conns: scenario.requests.clone(),
        ..InputParts::default()
    };
    let combined_run = wb.logged_run(&combined, &parts);
    let combined_report = combined_run.report.expect("SEGFAULT delivered");
    let combined_result = wb.replay(&combined, &combined_report, 128);
    if combined_result.reproduced {
        println!(
            "dynamic+static (lc): reproduced after {} run(s) — {} log bits across {} \
             per-location streams, +{} cost units of cursor spend",
            combined_result.runs,
            combined_run.log_bits,
            combined_run.cursor_locations,
            combined_run.cursor_spend_units,
        );
    } else {
        println!(
            "dynamic+static (lc): NOT reproduced after {} run(s) — the pre-cursor ∞ row \
             is back; see ROADMAP's combined-row item",
            combined_result.runs
        );
    }

    let run = wb.logged_run(&static_plan, &parts);
    let report = run.report.expect("SEGFAULT delivered");
    println!(
        "crash: {} at {} after {} request(s); report = {} branch bits + {} syscall records",
        report.crash.kind,
        report.crash.loc,
        run.requests,
        report.trace.len(),
        report.syscalls.len()
    );

    // Developer site: reproduce from the static-plan log.
    let result = wb.replay(&static_plan, &report, 400);
    assert!(result.reproduced, "replay failed: {result:?}");
    println!(
        "static: reproduced in {} run(s) / {} solver call(s) / {}ms",
        result.runs, result.solver_calls, result.wall_ms
    );
    let assignment = result.witness_assignment.expect("witness");
    let reconstructed: Vec<u8> = assignment
        .iter()
        .take(scenario.requests[0].len())
        .map(|v| (*v & 0xff) as u8)
        .collect();
    println!(
        "reconstructed request bytes: {:?}",
        String::from_utf8_lossy(&reconstructed)
    );
    println!(
        "(compare the original: {:?})",
        String::from_utf8_lossy(&scenario.requests[0])
    );
}
