//! A field bug in a web server: the paper's uServer scenario (§5.3).
//!
//! ```text
//! cargo run --release --example webserver_field_bug
//! ```
//!
//! The uServer runs at a "user site" serving HTTP requests; after the
//! workload is processed the process is crashed externally (SEGFAULT
//! injection), exactly like the paper's methodology. The developer then
//! reproduces the execution from the partial branch log — recovering
//! what the requests must have looked like without ever seeing them.
//!
//! The example also reproduces Table 3's headline contrast: with the
//! low-coverage dynamic analysis the combined method cannot reproduce the
//! server bug (the paper's ∞ entries), while the static method can.

use retrace::prelude::*;
use retrace::{progs, workloads};

fn main() {
    // Build the server (application + mini-libc).
    let cp = progs::Program::Userver.build().expect("userver compiles");
    println!(
        "uServer: {} branch locations ({} in libc)",
        cp.n_branches(),
        cp.prog
            .ast
            .branches
            .iter()
            .filter(|b| b.unit == progs::Program::Userver.libc_unit().unwrap())
            .count()
    );

    // The crash scenario: one POST request with a body.
    let scenario = &workloads::scenarios(42)[2];
    println!(
        "scenario {}: {} — {} request(s)",
        scenario.id,
        scenario.description,
        scenario.requests.len()
    );

    // Input shape: one client connection per request, contents symbolic.
    let spec = InputSpec {
        argv: vec![ArgSpec::Fixed(b"userver".to_vec())],
        clients: scenario
            .requests
            .iter()
            .map(|r| ClientSpec {
                packet_lens: vec![r.len()],
                close_after: true,
            })
            .collect(),
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![progs::Program::Userver.libc_unit().unwrap()];
    // Crash the server once the workload is served (§5.3).
    wb.kernel.signal_plan = Some(SignalPlan {
        sig: 11,
        after_all_conns_served: true,
        after_n_syscalls: None,
    });

    // Analyze. On the uServer the concolic exploration exhausts its
    // frontier well below full coverage — exactly the paper's LC setting.
    let bundle = wb.analyze(48);
    let combined = wb.plan(Method::DynamicStatic, &bundle);
    let static_plan = wb.plan(Method::Static, &bundle);
    println!(
        "dynamic+static instruments {}/{} locations, static {}/{} (dynamic coverage {:.0}%)",
        combined.n_instrumented(),
        wb.cp.n_branches(),
        static_plan.n_instrumented(),
        wb.cp.n_branches(),
        bundle.coverage_pct()
    );

    // User site: serve the scenario, crash, capture the report. The
    // deployment below logs under the *static* plan — §5.3's reliable
    // configuration: with low dynamic coverage, Table 3 reports ∞ for the
    // dynamic methods on the uServer, while the static method reproduces.
    let parts = InputParts {
        conns: scenario.requests.clone(),
        ..InputParts::default()
    };
    let combined_run = wb.logged_run(&combined, &parts);
    let combined_report = combined_run.report.expect("SEGFAULT delivered");
    let combined_result = wb.replay(&combined, &combined_report, 128);
    if combined_result.reproduced {
        println!(
            "dynamic+static (lc): reproduced after {} run(s) — coverage has improved \
             past the paper's LC setting; update this example's narrative",
            combined_result.runs
        );
    } else {
        println!(
            "dynamic+static (lc): NOT reproduced after {} run(s) — the paper's ∞ row",
            combined_result.runs
        );
    }

    let run = wb.logged_run(&static_plan, &parts);
    let report = run.report.expect("SEGFAULT delivered");
    println!(
        "crash: {} at {} after {} request(s); report = {} branch bits + {} syscall records",
        report.crash.kind,
        report.crash.loc,
        run.requests,
        report.trace.len(),
        report.syscalls.len()
    );

    // Developer site: reproduce from the static-plan log.
    let result = wb.replay(&static_plan, &report, 400);
    assert!(result.reproduced, "replay failed: {result:?}");
    println!(
        "static: reproduced in {} run(s) / {} solver call(s) / {}ms",
        result.runs, result.solver_calls, result.wall_ms
    );
    let assignment = result.witness_assignment.expect("witness");
    let reconstructed: Vec<u8> = assignment
        .iter()
        .take(scenario.requests[0].len())
        .map(|v| (*v & 0xff) as u8)
        .collect();
    println!(
        "reconstructed request bytes: {:?}",
        String::from_utf8_lossy(&reconstructed)
    );
    println!(
        "(compare the original: {:?})",
        String::from_utf8_lossy(&scenario.requests[0])
    );
}
