//! The paper's core tradeoff, measured live: instrumentation overhead
//! versus bug-reproduction effort across the four methods.
//!
//! ```text
//! cargo run --release --example instrumentation_tradeoff
//! ```
//!
//! Runs the mkdir benchmark under all four instrumentation methods and
//! prints, for each: user-site CPU overhead, log size, and developer-site
//! replay effort for the real `-Z` crash. The combined method should sit
//! on the knee of the curve — that is the paper's thesis.

use retrace::prelude::*;
use retrace::{progs, workloads};

fn main() {
    let inv = workloads::coreutils_crash_argv()
        .into_iter()
        .find(|c| c.program == "mkdir")
        .expect("mkdir invocation");
    let cp = progs::Program::Mkdir.build().expect("mkdir compiles");

    // Shape follows the crash invocation: N symbolic args of its lengths.
    let mut argv = vec![ArgSpec::Fixed(inv.argv[0].clone())];
    for a in &inv.argv[1..] {
        argv.push(ArgSpec::Symbolic(a.len()));
    }
    let spec = InputSpec {
        argv,
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![progs::Program::Mkdir.libc_unit().unwrap()];

    let bundle = wb.analyze(32);
    println!(
        "analysis: coverage {:.0}% over {} branch locations\n",
        bundle.coverage_pct(),
        wb.cp.n_branches()
    );

    let crash_parts = InputParts {
        argv_sym: inv.argv[1..].to_vec(),
        ..InputParts::default()
    };
    // Overhead is measured on a benign input of the same shape.
    let benign_parts = InputParts {
        argv_sym: vec![b"/a".to_vec(), b"/b".to_vec()],
        ..InputParts::default()
    };

    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "method", "cpu %", "locations", "log bits", "replay runs", "repro?"
    );
    for method in Method::ALL {
        let plan = wb.plan(method, &bundle);
        let over = wb.overhead(method.name(), &plan, &benign_parts);
        let run = wb.logged_run(&plan, &crash_parts);
        let report = run.report.expect("mkdir -Z crashes");
        let res = wb.replay(&plan, &report, 512);
        println!(
            "{:<16} {:>8.1} {:>10} {:>10} {:>12} {:>8}",
            method.name(),
            over.cpu_pct,
            plan.n_instrumented(),
            report.trace.len(),
            res.runs,
            if res.reproduced { "yes" } else { "NO (∞)" }
        );
    }
    println!(
        "\nThe knee: dynamic+static should match static's replay effort at a\n\
         fraction of its instrumentation (the paper's conclusion)."
    );
}
