//! Privacy at fleet scale: what leaves the users' machines, and what
//! the developer does with a *pile* of reports.
//!
//! ```text
//! cargo run --example privacy_preserving_report
//! ```
//!
//! The paper's motivation (§1): input logging leaks user data;
//! coredumps leak memory. Partial branch logs leak only *which way
//! branches went*. This example deploys the same checksum bug to
//! several users with different sensitive inputs, shows that none of
//! the secrets appear in any shipped report, and then triages the whole
//! pile through the fleet pipeline: the reports cluster into ONE class,
//! the developer replays ONE representative, every other member is
//! verified by bit-stream conformance, and the single reconstructed
//! witness reproduces the bug for all of them — the Castro-et-al.
//! property, amortized.

use retrace::prelude::*;

const PROGRAM: &str = r#"
    // Processes a "credit card"-like field: crashes when the checksum
    // digit mismatches (a bug), independent of most of the digits.
    int main(int argc, char **argv) {
        char *card = argv[1];
        int sum = 0;
        for (int i = 0; i < 8; i++) {
            if (card[i] < '0' || card[i] > '9') {
                return 1;   // not a number: rejected
            }
            sum += card[i] - '0';
        }
        if (sum % 10 == card[8] - '0') {
            return 0;       // checksum OK
        }
        // Bug: the error path dereferences a null "error context".
        int *errctx = 0;
        return *errctx;
    }
"#;

/// Each user's "card number": distinct secrets, same bad-checksum bug.
/// The last user's checksum is valid — their deployment stays healthy
/// and files nothing.
const USERS: [&[u8; 9]; 4] = [b"123456789", b"111111111", b"987654321", b"111111118"];

fn main() {
    let cp = minic::build(&[("main", PROGRAM)]).expect("compiles");
    let spec = InputSpec::argv_symbolic("checker", 1, 9);
    let wb = Workbench::new(cp, spec.clone());

    // Fleet side: one registered binary, many user deployments. The
    // pipeline analyzes and plans ONCE, lazily, at the first deploy.
    let mut pipeline = TriagePipeline::new(TriageConfig::default());
    let checker = pipeline.register(FleetBinary::new("checker", wb, 24));

    let kernel = pipeline.binary(checker).wb.kernel.clone();
    for secret in USERS {
        let parts = InputParts {
            argv_sym: vec![secret.to_vec()],
            ..InputParts::default()
        };
        pipeline.deploy(checker, &spec, &kernel, &parts);
    }

    // Every shipped report: branch bits and syscall records, no input.
    println!("--- the complete shipped bug reports ---");
    for (sub, secret) in pipeline.submissions().iter().zip(USERS) {
        let shipped = serde_json::to_string(&sub.report).expect("serializable");
        let secret_str = String::from_utf8_lossy(secret).to_string();
        assert!(
            !shipped.contains(&secret_str),
            "the secret must not appear in the report"
        );
        println!(
            "user with input {secret_str:?}: {} bytes shipped, secret absent",
            shipped.len()
        );
    }
    println!(
        "(one user had a valid checksum: {} deployments, {} reports, {} healthy)\n",
        pipeline.ledger().deployments,
        pipeline.ledger().reports,
        pipeline.ledger().healthy,
    );

    // Developer side: triage the pile. All three crashing users took
    // the same branch path, so their reports cluster into one class —
    // one guided replay covers everyone.
    let out = pipeline.triage();
    assert_eq!(out.classes.len(), 1, "one bug, one class");
    let class = &out.classes[0];
    assert!(class.row.reproduced);
    assert_eq!(class.members.len(), 3);
    assert_eq!(out.ledger.conformant, 3, "members verified by conformance");
    assert_eq!(out.ledger.analyses, 1, "analysis amortized across users");
    assert_eq!(out.ledger.replays, 1, "one replay for the whole class");

    let witness = class.witness_argv.as_ref().expect("witness");
    let w = String::from_utf8_lossy(&witness[1]).to_string();
    println!(
        "triaged: {} reports -> {} class (dedup {:.1}x)",
        out.ledger.reports,
        out.classes.len(),
        out.dedup_ratio()
    );
    println!("developer-reconstructed input: {w:?}");
    println!(
        "same bug, different digits — one replay ({} runs, {} solver calls) \
         and every user's report conformance-checked against the one witness; \
         the paths were recovered, never the data",
        class.row.runs, class.row.solver_calls
    );
}
