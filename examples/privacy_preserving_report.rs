//! Privacy: what leaves the user's machine, and what does not.
//!
//! ```text
//! cargo run --example privacy_preserving_report
//! ```
//!
//! The paper's motivation (§1): input logging leaks user data; coredumps
//! leak memory. Partial branch logs leak only *which way branches went*.
//! This example processes a "sensitive" input, prints the entire
//! serialized bug report, shows that the secret is absent, and then shows
//! the developer reconstructing a *different* input that reaches the same
//! bug — the Castro-et-al. property without user-site replay.

use retrace::prelude::*;

const PROGRAM: &str = r#"
    // Processes a "credit card"-like field: crashes when the checksum
    // digit mismatches (a bug), independent of most of the digits.
    int main(int argc, char **argv) {
        char *card = argv[1];
        int sum = 0;
        for (int i = 0; i < 8; i++) {
            if (card[i] < '0' || card[i] > '9') {
                return 1;   // not a number: rejected
            }
            sum += card[i] - '0';
        }
        if (sum % 10 == card[8] - '0') {
            return 0;       // checksum OK
        }
        // Bug: the error path dereferences a null "error context".
        int *errctx = 0;
        return *errctx;
    }
"#;

fn main() {
    let cp = minic::build(&[("main", PROGRAM)]).expect("compiles");
    let spec = InputSpec::argv_symbolic("checker", 1, 9);
    let wb = Workbench::new(cp, spec);
    let bundle = wb.analyze(24);
    let plan = wb.plan(Method::DynamicStatic, &bundle);

    // The user's sensitive input: a "card number" with a bad checksum.
    let secret = b"12345678 9";
    let secret = &secret[..9];
    let parts = InputParts {
        argv_sym: vec![secret.to_vec()],
        ..InputParts::default()
    };
    let run = wb.logged_run(&plan, &parts);
    let report = run.report.expect("checksum bug fires");

    let shipped = serde_json::to_string_pretty(&report).expect("serializable");
    println!("--- the complete shipped bug report ---");
    println!("{shipped}");
    println!("---------------------------------------");
    let secret_str = String::from_utf8_lossy(secret).to_string();
    assert!(
        !shipped.contains(&secret_str.trim().replace(' ', "")),
        "the secret must not appear in the report"
    );
    println!("the user's input {secret_str:?} appears nowhere above.\n");

    // Developer side: reproduce with a fresh input.
    let res = wb.replay(&plan, &report, 512);
    assert!(res.reproduced, "replay failed: {res:?}");
    let witness = res.witness_argv.expect("witness");
    let w = String::from_utf8_lossy(&witness[1]).to_string();
    println!("developer-reconstructed input: {w:?}");
    println!(
        "same bug, different digits — the path was recovered, not the data \
         (runs: {}, solver calls: {})",
        res.runs, res.solver_calls
    );
}
