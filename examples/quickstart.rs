//! Quickstart: the full record → ship → replay cycle on a tiny program.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end: analyze a program, instrument
//! it with the combined (dynamic+static) method, run it on a "user" input
//! that crashes, and reproduce the crash at the "developer" site from the
//! partial branch log alone.

use retrace::prelude::*;

const PROGRAM: &str = r#"
    // A tiny option parser with a crash hidden behind a specific flag
    // combination (the coreutils bug pattern of the paper's §5.2).
    int main(int argc, char **argv) {
        int verbose = 0;
        int mode = 0;
        for (int i = 1; i < argc; i++) {
            char *arg = argv[i];
            if (arg[0] == '-') {
                if (arg[1] == 'v') { verbose = 1; }
                else if (arg[1] == 'm') { mode = arg[2] - '0'; }
                else if (arg[1] == 'Z') {
                    // Bug: consumes the next argument without checking
                    // that it exists.
                    i++;
                    char c = argv[i][0];
                    mode = mode + c;
                }
            }
        }
        if (verbose) { printf("mode=%d\n", mode); }
        return 0;
    }
"#;

fn main() {
    // 1. Build the program (parse -> check -> compile).
    let cp = minic::build(&[("main", PROGRAM)]).expect("program compiles");
    println!("program has {} branch locations", cp.n_branches());

    // 2. Declare the input shape: two symbolic arguments of 2 bytes.
    let spec = InputSpec::argv_symbolic("demo", 2, 2);
    let wb = Workbench::new(cp, spec);

    // 3. Pre-ship analyses (paper §2.1 + §2.2).
    let bundle = wb.analyze(32);
    println!(
        "dynamic analysis: {} runs, {:.0}% branch coverage, {} crash(es) found pre-ship",
        bundle.dyn_result.runs,
        bundle.coverage_pct(),
        bundle.dyn_result.crashes.len()
    );

    // 4. Instrument with the combined method (the paper's best tradeoff).
    let plan = wb.plan(Method::DynamicStatic, &bundle);
    println!(
        "dynamic+static instruments {} of {} branch locations",
        plan.n_instrumented(),
        wb.cp.n_branches()
    );

    // 5. The "user site": run on an input that triggers the bug.
    let user_input = InputParts {
        argv_sym: vec![b"-v".to_vec(), b"-Z".to_vec()],
        ..InputParts::default()
    };
    let run = wb.logged_run(&plan, &user_input);
    let report = run.report.expect("the user hit the bug");
    println!(
        "user-site crash: {} at {} ({} log bits, {} syscall records, {} bytes shipped)",
        report.crash.kind,
        report.crash.loc,
        report.trace.len(),
        report.syscalls.len(),
        report.transfer_bytes()
    );

    // 6. The "developer site": reproduce from the partial log.
    let result = wb.replay(&plan, &report, 256);
    assert!(result.reproduced, "replay must succeed");
    let witness = result.witness_argv.expect("witness input");
    println!(
        "reproduced in {} replay run(s), {} solver call(s)",
        result.runs, result.solver_calls
    );
    println!(
        "witness argv: {:?}",
        witness
            .iter()
            .map(|a| String::from_utf8_lossy(a).to_string())
            .collect::<Vec<_>>()
    );
    // The decisive byte combination was recovered from the branch log —
    // the original input was never shipped.
    assert_eq!(&witness[2][..2], b"-Z");
    println!("privacy preserved: the report contained no input bytes.");
}
