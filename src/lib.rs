//! `retrace` — partial branch logging and guided symbolic replay.
//!
//! A complete reproduction of *"Striking a New Balance Between Program
//! Instrumentation and Debugging Time"* (Crameri, Bianchini, Zwaenepoel —
//! EuroSys 2011) as a Rust workspace. This facade crate re-exports every
//! subsystem:
//!
//! | crate | role |
//! |---|---|
//! | [`minic`] | C-like language + instrumentable VM (the CIL stand-in) |
//! | [`solver`] | symbolic expressions + finite-domain constraint solver |
//! | [`oskit`] | deterministic kernel simulation (fs, sockets, select, signals) |
//! | [`concolic`] | dynamic analysis: concolic engine, branch labeling (§2.1) |
//! | [`staticax`] | static analysis: points-to + interprocedural taint (§2.2) |
//! | [`instrument`] | the four methods, branch/syscall logging, bug reports (§2.3) |
//! | [`replay`] | log-guided bug reproduction (§3) |
//! | [`progs`] | the benchmarks, in mini-C (coreutils, uServer, diff, micros) |
//! | [`workloads`] | deterministic workload generators (the httperf stand-in) |
//! | [`core`] | the end-to-end [`Workbench`](core::Workbench) pipeline |
//! | [`triage`] | fleet-scale report clustering: one replay per bug class |
//!
//! # Quickstart
//!
//! ```
//! use retrace::prelude::*;
//!
//! // A program with a crash hidden behind input comparisons.
//! let cp = minic::build(&[("main", r#"
//!     int main(int argc, char **argv) {
//!         if (argv[1][0] == 'x') {
//!             int *p = 0;
//!             return *p;    // crash only for inputs starting with 'x'
//!         }
//!         return 0;
//!     }
//! "#)]).unwrap();
//!
//! // Shape: one symbolic argument of 1 byte.
//! let wb = Workbench::new(cp, InputSpec::argv_symbolic("demo", 1, 1));
//!
//! // Analyze, plan (combined method), deploy on the "user's" input...
//! let bundle = wb.analyze(16);
//! let plan = wb.plan(Method::DynamicStatic, &bundle);
//! let parts = InputParts { argv_sym: vec![b"x".to_vec()], ..Default::default() };
//! let run = wb.logged_run(&plan, &parts);
//! let report = run.report.expect("the user hit the bug");
//!
//! // ...and reproduce the bug at the developer site.
//! let result = wb.replay(&plan, &report, 64);
//! assert!(result.reproduced);
//! assert_eq!(result.witness_argv.unwrap()[1][0], b'x');
//! ```

pub use concolic;
pub use instrument;
pub use minic;
pub use oskit;
pub use progs;
pub use replay;
pub use retrace_core as core;
pub use retrace_triage as triage;
pub use search;
pub use solver;
pub use staticax;
pub use workloads;

/// The most common imports for end-to-end use.
pub mod prelude {
    pub use crate::core::{AnalysisBundle, LoggedRun, Overhead, ReplayRow, Workbench};
    pub use crate::triage::{FleetBinary, TriageConfig, TriagePipeline};
    pub use concolic::{ArgSpec, ClientSpec, FileSpec, InputSpec};
    pub use instrument::{BugReport, Method, Plan};
    pub use minic::{self, CompiledProgram, CrashKind, RunOutcome};
    pub use oskit::{KernelConfig, SignalPlan};
    pub use replay::{InputParts, ReplayResult};
    // `Strategy` stays out of the prelude: it would shadow
    // `proptest::prelude::Strategy` in downstream test globs. Reach it
    // as `search::Strategy`.
    pub use search::SearchPolicy;
}
