//! Cross-crate integration: the full pipeline on the real benchmark bugs.

use retrace::prelude::*;
use retrace::{progs, workloads};

/// Builds the workbench for a coreutil around its crash invocation.
fn coreutil_bench(p: progs::Program) -> (Workbench, InputParts) {
    let inv = workloads::coreutils_crash_argv()
        .into_iter()
        .find(|c| c.program == p.name())
        .expect("known coreutil");
    let mut argv = vec![ArgSpec::Fixed(inv.argv[0].clone())];
    let mut argv_sym = Vec::new();
    for a in &inv.argv[1..] {
        argv.push(ArgSpec::Symbolic(a.len()));
        argv_sym.push(a.clone());
    }
    let spec = InputSpec {
        argv,
        ..InputSpec::default()
    };
    let cp = p.build().expect("compiles");
    let mut wb = Workbench::new(cp, spec);
    if let Some(u) = p.libc_unit() {
        wb.static_exclude = vec![u];
    }
    for (path, data) in &inv.needs_files {
        wb.kernel.fs.install_file(path, data.to_vec());
    }
    (
        wb,
        InputParts {
            argv_sym,
            ..InputParts::default()
        },
    )
}

#[test]
fn all_four_coreutils_bugs_reproduce_under_combined_method() {
    for p in [
        progs::Program::Mkdir,
        progs::Program::Mknod,
        progs::Program::Mkfifo,
        progs::Program::Paste,
    ] {
        let (wb, parts) = coreutil_bench(p);
        let bundle = wb.analyze(24);
        let plan = wb.plan(Method::DynamicStatic, &bundle);
        let run = wb.logged_run(&plan, &parts);
        let report = run
            .report
            .unwrap_or_else(|| panic!("{} must crash on its bug input", p.name()));
        let res = wb.replay(&plan, &report, 512);
        assert!(
            res.reproduced,
            "{}: combined-method replay failed after {} runs",
            p.name(),
            res.runs
        );
    }
}

#[test]
fn overhead_ordering_matches_the_paper() {
    // dynamic <= dynamic+static <= static <= all branches (±tolerance),
    // measured on mkdir's benign run.
    let (wb, _) = coreutil_bench(progs::Program::Mkdir);
    let bundle = wb.analyze(24);
    let parts = InputParts {
        argv_sym: vec![b"/a".to_vec(), b"/b".to_vec()],
        ..InputParts::default()
    };
    let pct = |m: Method| {
        let plan = wb.plan(m, &bundle);
        wb.overhead(m.name(), &plan, &parts).cpu_pct
    };
    let dynamic = pct(Method::Dynamic);
    let combined = pct(Method::DynamicStatic);
    let stat = pct(Method::Static);
    let all = pct(Method::AllBranches);
    assert!(
        dynamic <= combined + 1.0,
        "dynamic {dynamic} vs combined {combined}"
    );
    assert!(
        combined <= stat + 1.0,
        "combined {combined} vs static {stat}"
    );
    assert!(stat <= all + 1.0, "static {stat} vs all {all}");
    assert!(all > 110.0, "all-branches is visibly more expensive: {all}");
}

#[test]
fn static_and_all_leave_no_symbolic_branch_unlogged() {
    // The Table 4 invariant: the static method instruments every branch
    // that is dynamically symbolic on the true run (it over-approximates).
    let (wb, parts) = coreutil_bench(progs::Program::Mkdir);
    let bundle = wb.analyze(24);
    for m in [Method::Static, Method::AllBranches] {
        let plan = wb.plan(m, &bundle);
        let stats = wb.log_stats(&plan, &parts);
        assert_eq!(
            stats.unlogged_locs,
            0,
            "{} must cover every symbolic location",
            m.name()
        );
    }
}

#[test]
fn combined_instruments_fewer_locations_than_static() {
    let (wb, _) = coreutil_bench(progs::Program::Paste);
    let bundle = wb.analyze(32);
    let combined = wb.plan(Method::DynamicStatic, &bundle).n_instrumented();
    let stat = wb.plan(Method::Static, &bundle).n_instrumented();
    let all = wb.plan(Method::AllBranches, &bundle).n_instrumented();
    assert!(
        combined <= stat,
        "combined ({combined}) must not exceed static ({stat})"
    );
    assert!(stat <= all);
}

#[test]
fn userver_scenario_roundtrip() {
    // One full uServer scenario: serve a request, SEGV injection, replay.
    let scenario = &workloads::scenarios(42)[1];
    let cp = progs::Program::Userver.build().expect("compiles");
    let spec = InputSpec {
        argv: vec![ArgSpec::Fixed(b"userver".to_vec())],
        clients: scenario
            .requests
            .iter()
            .map(|r| ClientSpec {
                packet_lens: vec![r.len()],
                close_after: true,
            })
            .collect(),
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![progs::Program::Userver.libc_unit().unwrap()];
    wb.kernel.signal_plan = Some(SignalPlan {
        sig: 11,
        after_all_conns_served: true,
        after_n_syscalls: None,
    });
    let bundle = wb.analyze(16);
    let plan = wb.plan(Method::Static, &bundle);
    let parts = InputParts {
        conns: scenario.requests.clone(),
        ..InputParts::default()
    };
    let run = wb.logged_run(&plan, &parts);
    let report = run.report.expect("SEGV fires");
    assert_eq!(report.crash.kind, CrashKind::Signal(11));
    let res = wb.replay(&plan, &report, 300);
    assert!(res.reproduced, "uServer scenario 2 replay: {res:?}");
}

#[test]
fn diff_scenario_roundtrip() {
    let sc = &workloads::diff_scenarios()[0];
    let cp = progs::Program::Diff.build().expect("compiles");
    let spec = InputSpec {
        argv: vec![
            ArgSpec::Fixed(b"diff".to_vec()),
            ArgSpec::Fixed(b"/a".to_vec()),
            ArgSpec::Fixed(b"/b".to_vec()),
        ],
        files: vec![
            FileSpec {
                path: "/a".into(),
                len: sc.a.len(),
            },
            FileSpec {
                path: "/b".into(),
                len: sc.b.len(),
            },
        ],
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![progs::Program::Diff.libc_unit().unwrap()];
    let parts = InputParts {
        files: vec![sc.a.clone(), sc.b.clone()],
        ..InputParts::default()
    };
    // Arm the end-of-run signal from a baseline syscall count.
    let (_, meter, _) = wb.baseline_run(&parts);
    wb.kernel.signal_plan = Some(SignalPlan {
        sig: 11,
        after_all_conns_served: false,
        after_n_syscalls: Some(meter.syscalls),
    });
    let bundle = wb.analyze(8);
    let plan = wb.plan(Method::Static, &bundle);
    let run = wb.logged_run(&plan, &parts);
    let report = run.report.expect("diff SEGV fires");
    let res = wb.replay(&plan, &report, 300);
    assert!(res.reproduced, "diff scenario 1 replay: {res:?}");
}

#[test]
fn report_is_a_durable_serializable_artifact() {
    let (wb, parts) = coreutil_bench(progs::Program::Mkfifo);
    let bundle = wb.analyze(16);
    let plan = wb.plan(Method::AllBranches, &bundle);
    let report = wb.logged_run(&plan, &parts).report.expect("crashes");
    let json = serde_json::to_string(&report).expect("serialize");
    let back: BugReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
    // A report deserialized "on another machine" still replays.
    let res = wb.replay(&plan, &back, 256);
    assert!(res.reproduced);
}
