//! Property-based integration tests over the paper's invariants.

use proptest::prelude::*;
use retrace::prelude::*;
use retrace::{instrument::DynLabel, minic};

/// The §2.3 combination rule as a predicate (oracle for the Plan impl).
fn combined_oracle(d: DynLabel, s: bool) -> bool {
    match d {
        DynLabel::Symbolic => true,
        DynLabel::Concrete => false,
        DynLabel::Unvisited => s,
    }
}

fn arb_label() -> impl Strategy<Value = DynLabel> {
    prop_oneof![
        Just(DynLabel::Unvisited),
        Just(DynLabel::Concrete),
        Just(DynLabel::Symbolic),
    ]
}

proptest! {
    /// Plan::build implements the paper's combination rule exactly, for
    /// arbitrary label vectors.
    #[test]
    fn combination_rule_matches_oracle(
        labels in proptest::collection::vec((arb_label(), any::<bool>()), 1..100)
    ) {
        let dynamic: Vec<DynLabel> = labels.iter().map(|(d, _)| *d).collect();
        let stat: Vec<bool> = labels.iter().map(|(_, s)| *s).collect();
        let n = labels.len();
        let combined = Plan::build(Method::DynamicStatic, &dynamic, &stat, n);
        let dyn_plan = Plan::build(Method::Dynamic, &dynamic, &stat, n);
        let stat_plan = Plan::build(Method::Static, &dynamic, &stat, n);
        let all = Plan::build(Method::AllBranches, &dynamic, &stat, n);
        for i in 0..n {
            prop_assert_eq!(combined.instrumented[i], combined_oracle(dynamic[i], stat[i]));
            // Dynamic ⊆ combined: anything dynamic logs, combined logs.
            prop_assert!(!dyn_plan.instrumented[i] || combined.instrumented[i]);
            // Combined ⊆ dynamic ∪ static.
            prop_assert!(
                !combined.instrumented[i]
                    || dyn_plan.instrumented[i]
                    || stat_plan.instrumented[i]
            );
            prop_assert!(all.instrumented[i]);
        }
    }

    /// For arbitrary inputs, a logged run's bit count equals its
    /// instrumented-branch execution count, and the trace replays its
    /// own directions.
    #[test]
    fn log_bits_equal_instrumented_executions(
        arg in proptest::collection::vec(0x20u8..0x7f, 1..6)
    ) {
        let src = r#"
            int main(int argc, char **argv) {
                int n = 0;
                for (int i = 0; argv[1][i] != 0; i++) {
                    if (argv[1][i] > 'm') { n++; }
                }
                return n;
            }
        "#;
        let cp = minic::build(&[("main", src)]).expect("compiles");
        let n = cp.n_branches();
        let wb = Workbench::new(cp, InputSpec::argv_symbolic("p", 1, arg.len()));
        let plan = Plan {
            method: Method::AllBranches,
            instrumented: vec![true; n],
            suppressed: Vec::new(),
            log_syscalls: true,
            format: retrace::instrument::LogFormat::Flat,
            ..Plan::none(n)
        };
        let parts = InputParts { argv_sym: vec![arg], ..InputParts::default() };
        let run = wb.logged_run(&plan, &parts);
        prop_assert_eq!(run.log_bits, run.instrumented_execs);
        prop_assert_eq!(run.log_bits, run.meter.branches);
    }

    /// Deployment determinism: the same input yields the identical meter
    /// and log, byte for byte.
    #[test]
    fn deployment_is_deterministic(
        arg in proptest::collection::vec(0x20u8..0x7f, 1..5)
    ) {
        let src = r#"
            int main(int argc, char **argv) {
                int acc = 0;
                for (int i = 0; argv[1][i] != 0; i++) {
                    acc = acc * 31 + argv[1][i];
                    if (acc % 7 == 0) { acc++; }
                }
                sys_time();
                return acc & 0xff;
            }
        "#;
        let cp = minic::build(&[("main", src)]).expect("compiles");
        let n = cp.n_branches();
        let wb = Workbench::new(cp, InputSpec::argv_symbolic("p", 1, arg.len()));
        let plan = Plan {
            method: Method::AllBranches,
            instrumented: vec![true; n],
            suppressed: Vec::new(),
            log_syscalls: true,
            format: retrace::instrument::LogFormat::Flat,
            ..Plan::none(n)
        };
        let parts = InputParts { argv_sym: vec![arg], ..InputParts::default() };
        let a = wb.logged_run(&plan, &parts);
        let b = wb.logged_run(&plan, &parts);
        prop_assert_eq!(a.meter, b.meter);
        prop_assert_eq!(a.log_bits, b.log_bits);
        prop_assert_eq!(a.stdout, b.stdout);
    }
}

/// Deterministic (non-proptest) invariant: replay reproduces a guarded
/// crash for every instrumentation method on a program where dynamic
/// coverage is complete.
#[test]
fn every_method_reproduces_with_full_coverage() {
    let src = r#"
        int main(int argc, char **argv) {
            if (argv[1][0] == 'k') {
                if (argv[1][1] == '9') {
                    int *p = 0;
                    return *p;
                }
            }
            return 0;
        }
    "#;
    let cp = minic::build(&[("main", src)]).expect("compiles");
    let wb = Workbench::new(cp, InputSpec::argv_symbolic("p", 1, 2));
    let bundle = wb.analyze(32);
    let parts = InputParts {
        argv_sym: vec![b"k9".to_vec()],
        ..InputParts::default()
    };
    for m in Method::ALL {
        let plan = wb.plan(m, &bundle);
        let report = wb
            .logged_run(&plan, &parts)
            .report
            .expect("guarded crash fires");
        let res = wb.replay(&plan, &report, 256);
        assert!(res.reproduced, "{} failed: {res:?}", m.name());
        let w = res.witness_argv.expect("witness");
        assert_eq!(
            &w[1][..2],
            b"k9",
            "{}: witness must re-derive input",
            m.name()
        );
    }
}
