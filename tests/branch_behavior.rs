//! The paper's two foundational assumptions (§1, validated in §5.2),
//! checked over the real benchmarks:
//!
//! 1. "a large number of branches do not depend on the program input" —
//!    concrete executions dominate;
//! 2. "application branches are typically either always symbolic or
//!    always concrete" — mixed locations are rare, and rarer in the
//!    application than in the library.

use retrace::prelude::*;
use retrace::{concolic::Profile, progs};

fn profile_of(p: progs::Program, spec: InputSpec, parts: InputParts) -> (Workbench, Profile) {
    let cp = p.build().expect("compiles");
    let mut wb = Workbench::new(cp, spec);
    if let Some(u) = p.libc_unit() {
        wb.static_exclude = vec![u];
    }
    let profile = wb.profile(&parts);
    (wb, profile)
}

#[test]
fn most_branch_executions_are_concrete_in_mkdir() {
    let (_, profile) = profile_of(
        progs::Program::Mkdir,
        InputSpec::argv_symbolic("mkdir", 2, 4),
        InputParts {
            argv_sym: vec![b"-p".to_vec(), b"/a/b".to_vec()],
            ..InputParts::default()
        },
    );
    let total = profile.total_execs();
    let symbolic = profile.symbolic_execs();
    assert!(total > 0);
    assert!(
        symbolic * 2 < total,
        "symbolic executions must be a minority: {symbolic}/{total}"
    );
}

#[test]
fn branch_locations_are_rarely_mixed() {
    // Assumption 2, on the uServer with a realistic request.
    let req = b"GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n".to_vec();
    let spec = InputSpec {
        argv: vec![ArgSpec::Fixed(b"userver".to_vec())],
        clients: vec![ClientSpec {
            packet_lens: vec![req.len()],
            close_after: true,
        }],
        ..InputSpec::default()
    };
    let (wb, profile) = profile_of(
        progs::Program::Userver,
        spec,
        InputParts {
            conns: vec![req],
            ..InputParts::default()
        },
    );
    let lib = progs::Program::Userver.libc_unit().unwrap();
    let mut pure = 0usize;
    let mut mixed_app = 0usize;
    let mut mixed_lib = 0usize;
    for (i, info) in wb.cp.prog.ast.branches.iter().enumerate() {
        let (t, s) = (profile.total[i], profile.symbolic[i]);
        if s == 0 || t == 0 {
            continue;
        }
        if s == t {
            pure += 1;
        } else if info.unit == lib {
            mixed_lib += 1;
        } else {
            mixed_app += 1;
        }
    }
    let mixed = mixed_app + mixed_lib;
    assert!(
        pure > mixed * 2,
        "purely-symbolic locations ({pure}) must dominate mixed ones ({mixed})"
    );
    // The paper observes mixing concentrated in the library; our mini
    // server also mixes in a few parser bound-checks (loop indices are
    // concrete, buffer contents symbolic), so we only assert that both
    // sides mix somewhere without a hard split.
    assert!(mixed_lib > 0 || mixed_app > 0 || mixed == 0);
}

#[test]
fn upgrade_only_labeling_converges_across_runs() {
    // Running the analysis twice as long never *removes* a symbolic
    // label (monotonicity of the §2.1 labeling).
    let cp = progs::Program::Paste.build().expect("compiles");
    let spec = InputSpec::argv_symbolic("paste", 2, 4);
    let mut wb = Workbench::new(cp, spec);
    wb.kernel
        .fs
        .install_file("/one", b"line1\nline2\n".to_vec());
    wb.static_exclude = vec![progs::Program::Paste.libc_unit().unwrap()];
    let small = wb.analyze(4);
    let large = wb.analyze(16);
    for i in 0..small.dyn_labels.len() {
        if small.dyn_labels[i] == retrace::instrument::DynLabel::Symbolic {
            assert_eq!(
                large.dyn_labels[i],
                retrace::instrument::DynLabel::Symbolic,
                "branch {i} lost its symbolic label with more budget"
            );
        }
    }
}
