//! Seeded bug-report corpora for fleet-scale triage.
//!
//! The paper's deployment story is many users running the same binary
//! and shipping tiny branch-log reports; the triage pipeline's job is to
//! cluster those reports and replay each equivalence class once. This
//! module generates the *inputs* for that story: per-program mixes of
//! crash-expected and healthy invocations, labeled at generation time
//! so the pipeline's clustering can be checked against ground truth.
//!
//! Every entry is derived from `mix_seed(mix_seed(seed, CORPUS_SALT),
//! index)`, so a corpus is reproducible byte-for-byte from `(prog, n,
//! seed)` alone and any single entry can be regenerated without the
//! rest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrace_core::mix_seed;

use crate::http;

/// Domain-separation salt for corpus entry seeds (distinct from the
/// [`crate::argv::random_argv`] and [`http::saturation_workload`]
/// salts, so corpora never alias those streams).
const CORPUS_SALT: u64 = 0xc0_95;

/// Ground-truth label attached to each corpus entry at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusLabel {
    /// The input drives the program into a known crash site.
    CrashExpected,
    /// The input exercises a healthy path (clean exit, no report).
    Healthy,
}

/// One generated invocation of a fleet binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Program name (matches `progs::Program::name`).
    pub program: &'static str,
    /// Whether this input is expected to crash.
    pub label: CorpusLabel,
    /// Which variant pool the entry was drawn from (crash variants and
    /// healthy variants are numbered independently). Distinct crash
    /// variants generally land in distinct triage classes.
    pub variant: u32,
    /// Symbolic argv values, one per symbolic slot (coreutils only).
    pub argv_sym: Vec<Vec<u8>>,
    /// Client request bytes, one per connection (uServer only).
    pub conns: Vec<Vec<u8>>,
}

/// Program names [`mixed`] knows how to generate entries for.
pub const CORPUS_PROGRAMS: &[&str] = &["mkdir", "mknod", "mkfifo", "uServer"];

/// A seeded mix of crash-expected and healthy invocations of `prog`.
///
/// Roughly 60% of entries are crash-expected (the fleet skews toward
/// users who hit the bug and filed a report). Deterministic: the same
/// `(prog, n, seed)` always yields the identical entry list.
///
/// # Panics
///
/// Panics if `prog` is not one of [`CORPUS_PROGRAMS`].
pub fn mixed(prog: &str, n: usize, seed: u64) -> Vec<CorpusEntry> {
    assert!(
        CORPUS_PROGRAMS.contains(&prog),
        "no corpus generator for {prog:?} (have {CORPUS_PROGRAMS:?})"
    );
    let base = mix_seed(seed, CORPUS_SALT);
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(mix_seed(base, i as u64));
            entry_for(prog, &mut rng)
        })
        .collect()
}

/// A fleet-wide corpus: `n` entries spread across `programs`, with the
/// per-entry program chosen by the seeded RNG. Same determinism
/// guarantee as [`mixed`].
pub fn fleet_mixed(programs: &[&str], n: usize, seed: u64) -> Vec<CorpusEntry> {
    for p in programs {
        assert!(
            CORPUS_PROGRAMS.contains(p),
            "no corpus generator for {p:?} (have {CORPUS_PROGRAMS:?})"
        );
    }
    let base = mix_seed(seed, CORPUS_SALT);
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(mix_seed(base, i as u64));
            let prog = programs[rng.gen_range(0..programs.len())];
            entry_for(prog, &mut rng)
        })
        .collect()
}

/// Crash-expected entries skew the mix: ~60% of a fleet corpus.
fn crash_expected(rng: &mut StdRng) -> bool {
    rng.gen_range(0..10) < 6
}

/// A path argument `/X` with a randomized letter, so healthy entries
/// vary at the byte level while staying on the same program path.
fn path2(rng: &mut StdRng) -> Vec<u8> {
    vec![b'/', rng.gen_range(b'a'..=b'z')]
}

fn entry_for(prog: &str, rng: &mut StdRng) -> CorpusEntry {
    match prog {
        "mkdir" => mkdir_entry(rng),
        "mknod" => mknod_entry(rng),
        "mkfifo" => mkfifo_entry(rng),
        "uServer" => userver_entry(rng),
        other => unreachable!("validated above: {other}"),
    }
}

/// mkdir takes two 2-byte symbolic args. Every crash variant ends with
/// a trailing `-Z`: option parsing walks past argc looking for the
/// option argument (the Table 1 bug, mkdir.mc:70).
fn mkdir_entry(rng: &mut StdRng) -> CorpusEntry {
    let (label, variant, argv_sym) = if crash_expected(rng) {
        let v = rng.gen_range(0..3u32);
        let first = match v {
            0 => path2(rng),
            1 => b"-v".to_vec(),
            _ => b"-p".to_vec(),
        };
        (CorpusLabel::CrashExpected, v, vec![first, b"-Z".to_vec()])
    } else {
        let v = rng.gen_range(0..3u32);
        let argv = match v {
            0 => vec![path2(rng), path2(rng)],
            1 => vec![b"-v".to_vec(), path2(rng)],
            _ => vec![b"-p".to_vec(), path2(rng)],
        };
        (CorpusLabel::Healthy, v, argv)
    };
    CorpusEntry {
        program: "mkdir",
        label,
        variant,
        argv_sym,
        conns: vec![],
    }
}

/// mknod takes three symbolic args of lengths \[2, 1, 2\]. The crash is
/// the same trailing-option overrun (mknod.mc:42); the `-m` mode path
/// has a guarded healthy exit for invalid modes.
fn mknod_entry(rng: &mut StdRng) -> CorpusEntry {
    let octal = |rng: &mut StdRng| vec![rng.gen_range(b'0'..=b'7')];
    let (label, variant, argv_sym) = if crash_expected(rng) {
        let v = rng.gen_range(0..2u32);
        let argv = match v {
            0 => vec![path2(rng), b"p".to_vec(), b"-Z".to_vec()],
            _ => vec![b"-m".to_vec(), octal(rng), b"-Z".to_vec()],
        };
        (CorpusLabel::CrashExpected, v, argv)
    } else {
        let v = rng.gen_range(0..2u32);
        let argv = match v {
            // `9` is not a valid octal mode: guarded exit(1).
            0 => vec![b"-m".to_vec(), b"9".to_vec(), path2(rng)],
            // `-m` as the last arg is detected before the overrun.
            _ => vec![path2(rng), b"p".to_vec(), b"-m".to_vec()],
        };
        (CorpusLabel::Healthy, v, argv)
    };
    CorpusEntry {
        program: "mknod",
        label,
        variant,
        argv_sym,
        conns: vec![],
    }
}

/// mkfifo takes two 2-byte symbolic args; one crash variant (trailing
/// `-Z` after a path, mkfifo.mc:42) and two healthy pools.
fn mkfifo_entry(rng: &mut StdRng) -> CorpusEntry {
    let (label, variant, argv_sym) = if crash_expected(rng) {
        (
            CorpusLabel::CrashExpected,
            0,
            vec![path2(rng), b"-Z".to_vec()],
        )
    } else {
        let v = rng.gen_range(0..2u32);
        let argv = match v {
            0 => vec![path2(rng), path2(rng)],
            // `-m 77`: valid octal mode consumed, no path left — exit 1.
            _ => vec![b"-m".to_vec(), b"77".to_vec()],
        };
        (CorpusLabel::Healthy, v, argv)
    };
    CorpusEntry {
        program: "mkfifo",
        label,
        variant,
        argv_sym,
        conns: vec![],
    }
}

/// uServer entries carry request bytes per connection. Crash-expected
/// entries reuse the §5.3 scenario requests (scenarios 1 and 2 — the
/// cheap-to-replay parser areas); healthy entries are saturation-style
/// valid GETs. Whether the deployment injects the crash signal is the
/// triage fleet's decision (see `retrace_triage::fleet`), keyed off the
/// label.
fn userver_entry(rng: &mut StdRng) -> CorpusEntry {
    let (label, variant, conns) = if crash_expected(rng) {
        let v = rng.gen_range(0..2u32);
        // Fixed literals from `http::scenarios` exps 1 and 2; the
        // scenario list itself is seed-stable for ids 1-4.
        let req = http::scenarios(0)[v as usize].requests[0].clone();
        (CorpusLabel::CrashExpected, v, vec![req])
    } else {
        let req = http::saturation_workload(1, rng.gen_range(0..u64::MAX >> 1))
            .pop()
            .expect("one request");
        (CorpusLabel::Healthy, 0, vec![req])
    };
    CorpusEntry {
        program: "uServer",
        label,
        variant,
        argv_sym: vec![],
        conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_is_reproducible_byte_for_byte() {
        for prog in CORPUS_PROGRAMS {
            let a = mixed(prog, 64, 9);
            assert_eq!(a, mixed(prog, 64, 9));
            assert_ne!(a, mixed(prog, 64, 10), "{prog} corpus ignores seed");
        }
    }

    #[test]
    fn fleet_mixed_covers_programs_and_labels() {
        let c = fleet_mixed(CORPUS_PROGRAMS, 400, 42);
        assert_eq!(c.len(), 400);
        assert_eq!(c, fleet_mixed(CORPUS_PROGRAMS, 400, 42));
        for prog in CORPUS_PROGRAMS {
            assert!(c.iter().any(|e| e.program == *prog), "{prog} missing");
        }
        let crashes = c
            .iter()
            .filter(|e| e.label == CorpusLabel::CrashExpected)
            .count();
        // ~60% crash-expected, with slack for the seeded draw.
        assert!((40 * 4..=80 * 4).contains(&crashes), "crashes = {crashes}");
    }

    #[test]
    fn entries_match_program_input_shape() {
        for e in fleet_mixed(CORPUS_PROGRAMS, 200, 7) {
            match e.program {
                "mkdir" | "mkfifo" => {
                    assert_eq!(e.argv_sym.len(), 2);
                    assert!(e.conns.is_empty());
                    assert!(e.argv_sym.iter().all(|a| a.len() <= 2));
                }
                "mknod" => {
                    assert_eq!(e.argv_sym.len(), 3);
                    let lens: Vec<usize> = e.argv_sym.iter().map(|a| a.len()).collect();
                    assert_eq!(lens, vec![2, 1, 2]);
                }
                "uServer" => {
                    assert!(e.argv_sym.is_empty());
                    assert_eq!(e.conns.len(), 1);
                }
                other => panic!("unexpected program {other}"),
            }
        }
    }

    #[test]
    fn prefix_stability() {
        // Entry i depends only on (seed, i): growing the corpus keeps
        // the existing prefix (per-entry seeding, not a shared stream).
        let small = fleet_mixed(CORPUS_PROGRAMS, 50, 3);
        let big = fleet_mixed(CORPUS_PROGRAMS, 200, 3);
        assert_eq!(&big[..50], &small[..]);
    }
}
