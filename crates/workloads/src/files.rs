//! Input files for the diff experiments (§5.4).
//!
//! "We replay two executions of diff comparing relatively small but
//! different text files."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One diff experiment: two files to compare.
#[derive(Debug, Clone)]
pub struct DiffScenario {
    /// Experiment number (1-based).
    pub id: usize,
    /// First file contents.
    pub a: Vec<u8>,
    /// Second file contents.
    pub b: Vec<u8>,
}

/// The two diff input scenarios of Table 6.
pub fn diff_scenarios() -> Vec<DiffScenario> {
    vec![
        // Exp 1: one changed line in a short file.
        DiffScenario {
            id: 1,
            a: b"alpha\nbeta\ngamma\n".to_vec(),
            b: b"alpha\nBETA\ngamma\n".to_vec(),
        },
        // Exp 2: insertions, deletions and a change across more lines.
        DiffScenario {
            id: 2,
            a: b"one\ntwo\nthree\nfour\nfive\nsix\n".to_vec(),
            b: b"one\nthree\nFOUR\nfive\nsix\nseven\n".to_vec(),
        },
    ]
}

/// A random text file of `lines` short lines (deterministic per seed).
pub fn random_text_file(lines: usize, line_len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..lines {
        for _ in 0..line_len {
            out.push(b'a' + rng.gen_range(0..26));
        }
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_small_and_different() {
        for s in diff_scenarios() {
            assert_ne!(s.a, s.b);
            assert!(s.a.len() < 160 && s.b.len() < 160, "fits diff's buffers");
        }
    }

    #[test]
    fn random_files_are_deterministic() {
        assert_eq!(random_text_file(4, 6, 9), random_text_file(4, 6, 9));
        assert_ne!(random_text_file(4, 6, 9), random_text_file(4, 6, 10));
        let f = random_text_file(3, 5, 1);
        assert_eq!(f.iter().filter(|b| **b == b'\n').count(), 3);
    }
}
