//! HTTP workload generation (the httperf stand-in).
//!
//! §5.3: "we use HTTP queries of various lengths (between 5 to 400
//! bytes), with different HTTP methods (e.g., GET, POST) and parameters
//! (e.g., Cookies, Content-Length)" — five input scenarios hitting
//! different code areas of the HTTP parser, plus a saturation workload
//! for the overhead measurements of Figure 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrace_core::mix_seed;

/// Domain-separation salt for [`saturation_workload`] streams (the
/// `scenarios` stream predates the salting convention and stays raw —
/// the committed uServer goldens pin its exp-5 bytes).
const SATURATION_SALT: u64 = 0x5a_70;

/// One of the five crash-input scenarios of Table 3.
#[derive(Debug, Clone)]
pub struct HttpScenario {
    /// Experiment number (1-based, as in the paper's tables).
    pub id: usize,
    /// What parser area the scenario stresses.
    pub description: &'static str,
    /// The request bytes, one entry per client connection.
    pub requests: Vec<Vec<u8>>,
}

/// Builds the five input scenarios. Deterministic given `seed`.
pub fn scenarios(seed: u64) -> Vec<HttpScenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        // Exp 1: minimal short request (5 bytes region): HTTP/0.9 style.
        HttpScenario {
            id: 1,
            description: "tiny GET (request-line parser only)",
            requests: vec![b"GET /\n\n".to_vec()],
        },
        // Exp 2: plain GET with a version and one header.
        HttpScenario {
            id: 2,
            description: "GET with version and Host header",
            requests: vec![b"GET /index.html HTTP/1.0\r\nHost: example\r\n\r\n".to_vec()],
        },
        // Exp 3: POST with Content-Length and a body.
        HttpScenario {
            id: 3,
            description: "POST with Content-Length and body",
            requests: vec![
                b"POST /submit HTTP/1.0\r\nContent-Length: 11\r\n\r\nhello=world".to_vec(),
            ],
        },
        // Exp 4: cookie-heavy request.
        HttpScenario {
            id: 4,
            description: "GET with cookies and keep-alive",
            requests: vec![b"GET /about HTTP/1.0\r\nCookie: a=1; b=2; c=3; d=4\r\nConnection: keep-alive\r\n\r\n"
                .to_vec()],
        },
        // Exp 5: long-path request approaching the 400-byte region.
        HttpScenario {
            id: 5,
            description: "long static path (URI length handling)",
            requests: vec![long_path_request(&mut rng)],
        },
    ]
}

fn long_path_request(rng: &mut StdRng) -> Vec<u8> {
    let mut path = String::from("/static/");
    for _ in 0..10 {
        path.push((b'a' + rng.gen_range(0..26)) as char);
    }
    format!("GET {path} HTTP/1.0\r\nHost: example\r\nUser-Agent: httperf-like/1.0\r\n\r\n")
        .into_bytes()
}

/// A saturation workload of `n` valid GET requests over the small static
/// site, for the CPU/storage overhead measurements of Figure 4.
pub fn saturation_workload(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, SATURATION_SALT));
    let paths = ["/", "/index.html", "/about", "/status", "/static/a1"];
    (0..n)
        .map(|_| {
            let p = paths[rng.gen_range(0..paths.len())];
            let cookies = rng.gen_range(0..3);
            let mut req = format!("GET {p} HTTP/1.0\r\nHost: bench\r\n");
            if cookies > 0 {
                req.push_str("Cookie: ");
                for c in 0..cookies {
                    if c > 0 {
                        req.push_str("; ");
                    }
                    req.push_str(&format!("k{c}={}", rng.gen_range(0..100)));
                }
                req.push_str("\r\n");
            }
            req.push_str("\r\n");
            req.into_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_scenarios_in_length_band() {
        let s = scenarios(1);
        assert_eq!(s.len(), 5);
        for sc in &s {
            for r in &sc.requests {
                assert!(
                    r.len() >= 5 && r.len() <= 400,
                    "scenario {} request of {} bytes",
                    sc.id,
                    r.len()
                );
            }
        }
        // Distinct parser areas: methods differ across scenarios.
        assert!(s[2].requests[0].starts_with(b"POST"));
        assert!(s[0].requests[0].len() < 10);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenarios(7);
        let b = scenarios(7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.requests, y.requests);
        }
        let c = scenarios(8);
        assert_ne!(a[4].requests, c[4].requests, "seed changes the long path");
    }

    #[test]
    fn saturation_workload_is_valid_http() {
        let reqs = saturation_workload(50, 3);
        assert_eq!(reqs.len(), 50);
        for r in &reqs {
            assert!(r.starts_with(b"GET "));
            assert!(r.ends_with(b"\r\n\r\n"));
        }
        assert_eq!(saturation_workload(50, 3), reqs);
    }
}
