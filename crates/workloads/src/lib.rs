//! `workloads` — deterministic workload generators.
//!
//! Replaces the external workload tooling of the paper's evaluation:
//! httperf (uServer load + the five crash-input scenarios of §5.3),
//! the diff input files of §5.4, and the coreutils argv corpora of §5.2
//! ("up to 10 arguments, each 100 bytes long"). All generators are
//! seeded and reproducible.

pub mod argv;
pub mod corpus;
pub mod files;
pub mod http;

pub use argv::{coreutils_crash_argv, random_argv, CoreutilInvocation};
pub use corpus::{fleet_mixed, mixed, CorpusEntry, CorpusLabel, CORPUS_PROGRAMS};
pub use files::{diff_scenarios, random_text_file, DiffScenario};
pub use http::{saturation_workload, scenarios, HttpScenario};
