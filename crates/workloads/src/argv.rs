//! argv corpora for the coreutils experiments (§5.2).
//!
//! "We ran the programs with up to 10 arguments, each 100 bytes long."
//! Also provides the known crashing invocations the paper replays.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrace_core::mix_seed;

/// Domain-separation salt for [`random_argv`] streams: generators that
/// share a caller-facing seed must not alias each other's bytes.
const ARGV_SALT: u64 = 0xa5_9f;

/// A named crashing invocation of a coreutil.
#[derive(Debug, Clone)]
pub struct CoreutilInvocation {
    /// Program name (matches `progs::Program::name`).
    pub program: &'static str,
    /// Full argv including argv\[0\].
    pub argv: Vec<Vec<u8>>,
    /// Which paths must exist in the filesystem beforehand.
    pub needs_files: Vec<(&'static str, &'static [u8])>,
}

/// The four crashing invocations of Table 1.
pub fn coreutils_crash_argv() -> Vec<CoreutilInvocation> {
    vec![
        CoreutilInvocation {
            program: "mkdir",
            argv: vec![b"mkdir".to_vec(), b"/a".to_vec(), b"-Z".to_vec()],
            needs_files: vec![],
        },
        CoreutilInvocation {
            program: "mknod",
            argv: vec![
                b"mknod".to_vec(),
                b"/n".to_vec(),
                b"p".to_vec(),
                b"-Z".to_vec(),
            ],
            needs_files: vec![],
        },
        CoreutilInvocation {
            program: "mkfifo",
            argv: vec![b"mkfifo".to_vec(), b"-Z".to_vec()],
            needs_files: vec![],
        },
        CoreutilInvocation {
            program: "paste",
            // The paper's exact shape: `paste -d\\ abcdefghijklmnopqrstuvwxyz`.
            argv: vec![
                b"paste".to_vec(),
                b"-d\\".to_vec(),
                b"/abcdefghijklmnopqrstuvwxyz".to_vec(),
            ],
            needs_files: vec![("/abcdefghijklmnopqrstuvwxyz", b"line1\nline2\n")],
        },
    ]
}

/// Random printable argv: `n_args` arguments of up to `max_len` bytes.
pub fn random_argv(prog: &str, n_args: usize, max_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, ARGV_SALT));
    let mut argv = vec![prog.as_bytes().to_vec()];
    for _ in 0..n_args {
        let len = rng.gen_range(1..=max_len.max(1));
        argv.push(
            (0..len)
                .map(|_| rng.gen_range(0x21u8..0x7f))
                .collect::<Vec<u8>>(),
        );
    }
    argv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_crashing_invocations() {
        let all = coreutils_crash_argv();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(|c| c.program).collect();
        assert_eq!(names, vec!["mkdir", "mknod", "mkfifo", "paste"]);
        // Paste's delimiter ends with a backslash — the bug trigger.
        assert!(all[3].argv[1].ends_with(b"\\"));
    }

    #[test]
    fn random_argv_respects_bounds() {
        let argv = random_argv("prog", 10, 100, 5);
        assert_eq!(argv.len(), 11);
        for a in &argv[1..] {
            assert!(!a.is_empty() && a.len() <= 100);
            assert!(a.iter().all(|b| (0x21..0x7f).contains(b)));
        }
        assert_eq!(random_argv("prog", 10, 100, 5), argv);
    }
}
