//! Statement-level control-flow graphs.
//!
//! The static analysis (the `staticax` crate in this workspace) runs its
//! fixed points over the structured AST, but the CFG is the ground truth
//! for reachability questions: which branches can execute, which
//! statements are dead, and how conditions relate to the paths the
//! replay engine must distinguish. The [`Dominators`] analysis below
//! feeds `staticax`'s branch-implication pass. Tests also use it to
//! validate compiler output against an independent derivation of
//! control flow.

use crate::ast::*;

/// Index of a CFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// Function exit (all returns and fallthrough converge here).
    Exit,
    /// A non-branching statement.
    Stmt(StmtId),
    /// The evaluation of a branch condition; successors are ordered
    /// `[taken, not-taken]`.
    Cond(BranchId, StmtId),
}

/// One node with its successor edges.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node payload.
    pub kind: NodeKind,
    /// Successor nodes. For [`NodeKind::Cond`], index 0 is the true edge.
    pub succs: Vec<NodeId>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name (for diagnostics).
    pub func: String,
    /// All nodes; `entry` and `exit` index into this.
    pub nodes: Vec<Node>,
    /// The entry node.
    pub entry: NodeId,
    /// The exit node.
    pub exit: NodeId,
}

impl Cfg {
    /// Nodes reachable from entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.0 as usize], true) {
                continue;
            }
            for s in &self.nodes[n.0 as usize].succs {
                if !seen[s.0 as usize] {
                    stack.push(*s);
                }
            }
        }
        seen
    }

    /// All branch ids that appear on reachable condition nodes.
    pub fn reachable_branches(&self) -> Vec<BranchId> {
        let seen = self.reachable();
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if seen[i] {
                if let NodeKind::Cond(bid, _) = n.kind {
                    out.push(bid);
                }
            }
        }
        out.sort();
        out
    }

    /// Number of edges in the graph.
    pub fn n_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.succs.len()).sum()
    }

    /// Predecessor lists (inverse of `succs`).
    pub fn preds(&self) -> Vec<Vec<NodeId>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for s in &n.succs {
                preds[s.0 as usize].push(NodeId(i as u32));
            }
        }
        preds
    }

    /// Dominator sets: `a` dominates `b` iff every path entry→`b` passes
    /// through `a`.
    pub fn dominators(&self) -> Dominators {
        let preds = self.preds();
        Dominators::solve(self.nodes.len(), self.entry, |n| {
            preds[n.0 as usize].clone()
        })
    }

    /// Post-dominator sets: `a` post-dominates `b` iff every path
    /// `b`→exit passes through `a` (dominators of the reversed graph,
    /// rooted at exit).
    pub fn post_dominators(&self) -> Dominators {
        Dominators::solve(self.nodes.len(), self.exit, |n| {
            self.nodes[n.0 as usize].succs.clone()
        })
    }

    /// The condition node carrying branch `bid`, if any. `For` step nodes
    /// share the statement id but not the `Cond` kind, so the lookup is
    /// unambiguous.
    pub fn cond_node(&self, bid: BranchId) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(b, _) if b == bid))
            .map(|i| NodeId(i as u32))
    }
}

/// Dominator (or post-dominator) sets over one [`Cfg`], solved by the
/// classic iterative data-flow equations on bitsets:
/// `dom(root) = {root}`, `dom(n) = {n} ∪ ⋂ dom(preds(n))`.
///
/// Nodes unreachable from the root keep the full set (the equation's
/// top element); [`Dominators::dominates`] reports `false` for them so
/// callers never derive facts about code that cannot execute.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// One bitset per node; bit `a` set in `sets[b]` means `a dom b`.
    sets: Vec<Vec<u64>>,
    /// Nodes reachable from the root of the solve.
    reachable: Vec<bool>,
}

impl Dominators {
    fn solve(n: usize, root: NodeId, preds_of: impl Fn(NodeId) -> Vec<NodeId>) -> Dominators {
        let words = n.div_ceil(64);
        let full = vec![u64::MAX; words];
        let mut sets = vec![full; n];
        let mut only_self = vec![0u64; words];
        only_self[root.0 as usize / 64] |= 1 << (root.0 as usize % 64);
        sets[root.0 as usize] = only_self;

        // Reachability from the root along the (possibly reversed) edges
        // the caller handed us, i.e. against the `preds_of` direction.
        let mut succs = vec![Vec::new(); n];
        for b in 0..n {
            for p in preds_of(NodeId(b as u32)) {
                succs[p.0 as usize].push(b);
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![root.0 as usize];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut reachable[v], true) {
                continue;
            }
            stack.extend(succs[v].iter().copied().filter(|s| !reachable[*s]));
        }

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == root.0 as usize || !reachable[b] {
                    continue;
                }
                let mut next = vec![u64::MAX; words];
                for p in preds_of(NodeId(b as u32)) {
                    if !reachable[p.0 as usize] {
                        continue;
                    }
                    for (w, pw) in next.iter_mut().zip(&sets[p.0 as usize]) {
                        *w &= pw;
                    }
                }
                next[b / 64] |= 1 << (b % 64);
                if next != sets[b] {
                    sets[b] = next;
                    changed = true;
                }
            }
        }
        Dominators { sets, reachable }
    }

    /// Does `a` dominate `b` (reflexively)? `false` when `b` is
    /// unreachable from the solve's root.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        self.reachable[b.0 as usize]
            && self.sets[b.0 as usize][a.0 as usize / 64] >> (a.0 as usize % 64) & 1 == 1
    }

    /// Does `a` dominate `b` with `a != b`?
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Was `n` reachable from the solve's root?
    pub fn is_reachable(&self, n: NodeId) -> bool {
        self.reachable[n.0 as usize]
    }
}

/// Builds the CFG of one function definition.
pub fn build_cfg(def: &FuncDef) -> Cfg {
    let mut b = Builder {
        nodes: vec![
            Node {
                kind: NodeKind::Entry,
                succs: Vec::new(),
            },
            Node {
                kind: NodeKind::Exit,
                succs: Vec::new(),
            },
        ],
        exit: NodeId(1),
        breaks: Vec::new(),
        continues: Vec::new(),
    };
    let entry = NodeId(0);
    let ends = b.block(&def.body, vec![entry]);
    // Fallthrough reaches exit (the compiler's implicit `return 0`).
    for e in ends {
        b.connect(e, NodeId(1));
    }
    Cfg {
        func: def.name.clone(),
        nodes: b.nodes,
        entry,
        exit: NodeId(1),
    }
}

struct Builder {
    nodes: Vec<Node>,
    exit: NodeId,
    breaks: Vec<Vec<NodeId>>,
    continues: Vec<Vec<NodeId>>,
}

impl Builder {
    fn add(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            kind,
            succs: Vec::new(),
        });
        NodeId(self.nodes.len() as u32 - 1)
    }

    fn connect(&mut self, from: NodeId, to: NodeId) {
        let succs = &mut self.nodes[from.0 as usize].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }

    fn connect_all(&mut self, froms: &[NodeId], to: NodeId) {
        for f in froms {
            self.connect(*f, to);
        }
    }

    /// Adds a block; `preds` are the dangling edges flowing in. Returns the
    /// dangling edges flowing out (empty if the block never falls through).
    fn block(&mut self, b: &Block, preds: Vec<NodeId>) -> Vec<NodeId> {
        let mut cur = preds;
        for s in &b.stmts {
            cur = self.stmt(s, cur);
        }
        cur
    }

    fn stmt(&mut self, s: &Stmt, preds: Vec<NodeId>) -> Vec<NodeId> {
        match &s.kind {
            StmtKind::Decl { .. } | StmtKind::Expr(_) => {
                let n = self.add(NodeKind::Stmt(s.id));
                self.connect_all(&preds, n);
                vec![n]
            }
            StmtKind::If {
                branch,
                then_b,
                else_b,
                ..
            } => {
                let c = self.add(NodeKind::Cond(*branch, s.id));
                self.connect_all(&preds, c);
                let mut out = self.block(then_b, vec![c]);
                match else_b {
                    Some(e) => out.extend(self.block(e, vec![c])),
                    None => out.push(c),
                }
                out
            }
            StmtKind::While { branch, body, .. } => {
                let c = self.add(NodeKind::Cond(*branch, s.id));
                self.connect_all(&preds, c);
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                let body_out = self.block(body, vec![c]);
                self.connect_all(&body_out, c);
                let conts = self.continues.pop().expect("pushed above");
                self.connect_all(&conts, c);
                let mut out = self.breaks.pop().expect("pushed above");
                out.push(c);
                out
            }
            StmtKind::DoWhile { branch, body, .. } => {
                let c = self.add(NodeKind::Cond(*branch, s.id));
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                // Body entry: preds flow into the first stmt; we model the
                // body with a pass-through by connecting preds directly.
                let body_out = self.block(body, preds);
                self.connect_all(&body_out, c);
                let conts = self.continues.pop().expect("pushed above");
                self.connect_all(&conts, c);
                // True edge loops back: approximate by re-entering the body
                // is structurally awkward node-wise; the back edge goes to
                // the condition's own node (self-loop approximation).
                self.connect(c, c);
                let mut out = self.breaks.pop().expect("pushed above");
                out.push(c);
                out
            }
            StmtKind::For {
                branch,
                init,
                step,
                body,
                ..
            } => {
                let mut cur = preds;
                if let Some(i) = init {
                    cur = self.stmt(i, cur);
                }
                let c = match branch {
                    Some(b) => self.add(NodeKind::Cond(*b, s.id)),
                    None => self.add(NodeKind::Stmt(s.id)),
                };
                self.connect_all(&cur, c);
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                let body_out = self.block(body, vec![c]);
                let conts = self.continues.pop().expect("pushed above");
                let step_in: Vec<NodeId> = body_out.into_iter().chain(conts).collect();
                let back = if step.is_some() {
                    let sn = self.add(NodeKind::Stmt(s.id));
                    self.connect_all(&step_in, sn);
                    vec![sn]
                } else {
                    step_in
                };
                self.connect_all(&back, c);
                let mut out = self.breaks.pop().expect("pushed above");
                if branch.is_some() {
                    out.push(c);
                }
                out
            }
            StmtKind::Switch { cases, default, .. } => {
                self.breaks.push(Vec::new());
                let mut check_pred = preds;
                let mut fallthrough: Vec<NodeId> = Vec::new();
                let mut out = Vec::new();
                for c in cases {
                    let cn = self.add(NodeKind::Cond(c.branch, s.id));
                    self.connect_all(&check_pred, cn);
                    let mut body_in = vec![cn];
                    body_in.append(&mut fallthrough);
                    let mut cur = body_in;
                    for st in &c.body {
                        cur = self.stmt(st, cur);
                    }
                    fallthrough = cur;
                    check_pred = vec![cn];
                }
                match default {
                    Some(d) => {
                        let mut cur: Vec<NodeId> = check_pred;
                        cur.extend(fallthrough);
                        for st in d {
                            cur = self.stmt(st, cur);
                        }
                        out.extend(cur);
                    }
                    None => {
                        out.extend(check_pred);
                        out.extend(fallthrough);
                    }
                }
                out.extend(self.breaks.pop().expect("pushed above"));
                out
            }
            StmtKind::Return(_) => {
                let n = self.add(NodeKind::Stmt(s.id));
                self.connect_all(&preds, n);
                self.connect(n, self.exit);
                Vec::new()
            }
            StmtKind::Break => {
                let n = self.add(NodeKind::Stmt(s.id));
                self.connect_all(&preds, n);
                self.breaks
                    .last_mut()
                    .expect("checked break in scope")
                    .push(n);
                Vec::new()
            }
            StmtKind::Continue => {
                let n = self.add(NodeKind::Stmt(s.id));
                self.connect_all(&preds, n);
                self.continues
                    .last_mut()
                    .expect("checked continue in scope")
                    .push(n);
                Vec::new()
            }
            StmtKind::Block(b) => self.block(b, preds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let ast = parse(src).unwrap();
        build_cfg(&ast.funcs[0])
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let cfg = cfg_of("int main() { int a = 1; int b = 2; return a + b; }");
        assert!(cfg.reachable()[cfg.exit.0 as usize]);
        assert_eq!(cfg.reachable_branches().len(), 0);
    }

    #[test]
    fn if_has_two_paths() {
        let cfg = cfg_of("int main() { int x = 1; if (x) { x = 2; } return x; }");
        assert_eq!(cfg.reachable_branches().len(), 1);
        // The condition node must have two successors.
        let cond = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Cond(..)))
            .unwrap();
        assert_eq!(cond.succs.len(), 2);
    }

    #[test]
    fn while_has_back_edge() {
        let cfg = cfg_of("int main() { int i = 0; while (i < 3) { i++; } return i; }");
        let cond_id = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(..)))
            .unwrap();
        // Some node's successor list contains the condition (the back edge).
        let has_back = cfg
            .nodes
            .iter()
            .enumerate()
            .any(|(i, n)| i > cond_id && n.succs.contains(&NodeId(cond_id as u32)));
        assert!(has_back);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let cfg = cfg_of("int main() { return 1; int x = 2; x = 3; return x; }");
        let reach = cfg.reachable();
        let unreachable = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| !reach[*i] && matches!(n.kind, NodeKind::Stmt(_)))
            .count();
        assert!(unreachable >= 2);
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of("int main() { while (1) { break; } return 0; }");
        assert!(cfg.reachable()[cfg.exit.0 as usize]);
    }

    #[test]
    fn switch_cases_are_all_reachable() {
        let src = r#"
            int main() {
                int x = 2; int r = 0;
                switch (x) {
                    case 1: r = 1; break;
                    case 2: r = 2; break;
                    default: r = 9;
                }
                return r;
            }
        "#;
        let cfg = cfg_of(src);
        assert_eq!(cfg.reachable_branches().len(), 2);
    }

    #[test]
    fn for_loop_without_condition() {
        let cfg = cfg_of("int main() { for (;;) { break; } return 0; }");
        assert!(cfg.reachable()[cfg.exit.0 as usize]);
        assert!(cfg.reachable_branches().is_empty());
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let cfg = cfg_of("int main() { int x = 1; if (x) { x = 2; } return x; }");
        let dom = cfg.dominators();
        for (i, _) in cfg.nodes.iter().enumerate() {
            let n = NodeId(i as u32);
            if dom.is_reachable(n) {
                assert!(dom.dominates(cfg.entry, n), "entry must dominate {n:?}");
                assert!(dom.dominates(n, n), "dominance is reflexive at {n:?}");
            }
        }
        assert!(!dom.strictly_dominates(cfg.entry, cfg.entry));
    }

    #[test]
    fn sequential_conds_dominate_in_order() {
        // if (x) {} if (y) {}: the first condition dominates the second,
        // never the reverse, and neither then-body dominates the exit.
        let cfg = cfg_of(
            "int main() { int x = 1; int y = 2; if (x) { x = 3; } if (y) { y = 4; } return 0; }",
        );
        let conds: Vec<NodeId> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Cond(..)))
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        assert_eq!(conds.len(), 2);
        let dom = cfg.dominators();
        assert!(dom.strictly_dominates(conds[0], conds[1]));
        assert!(!dom.dominates(conds[1], conds[0]));
        // A branch body (the `x = 3` statement) must not dominate exit.
        let then_stmt = NodeId(conds[0].0 + 1);
        assert!(!dom.dominates(then_stmt, cfg.exit));
    }

    #[test]
    fn branch_body_does_not_dominate_join() {
        let cfg = cfg_of("int main() { int x = 1; if (x) { x = 2; } else { x = 3; } return x; }");
        let dom = cfg.dominators();
        let cond = cfg.cond_node(BranchId(0)).unwrap();
        // The condition dominates both arms and the exit; neither arm
        // dominates the exit (the other arm bypasses it).
        for s in &cfg.nodes[cond.0 as usize].succs.clone() {
            assert!(dom.strictly_dominates(cond, *s));
            assert!(!dom.dominates(*s, cfg.exit));
        }
        assert!(dom.dominates(cond, cfg.exit));
    }

    #[test]
    fn loop_condition_dominates_body_but_not_vice_versa() {
        let cfg = cfg_of("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
        let dom = cfg.dominators();
        let cond = cfg.cond_node(BranchId(0)).unwrap();
        let body: Vec<NodeId> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i > cond.0 as usize && matches!(n.kind, NodeKind::Stmt(_)) && *i != 1)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        assert!(!body.is_empty());
        for b in body {
            assert!(dom.strictly_dominates(cond, b));
            assert!(
                !dom.dominates(b, cond),
                "back edge must not invert dominance"
            );
        }
    }

    #[test]
    fn post_dominators_mirror_dominators() {
        let cfg = cfg_of("int main() { int x = 1; if (x) { x = 2; } return x; }");
        let pdom = cfg.post_dominators();
        // Exit post-dominates every node that can reach it.
        for (i, _) in cfg.nodes.iter().enumerate() {
            let n = NodeId(i as u32);
            if pdom.is_reachable(n) {
                assert!(pdom.dominates(cfg.exit, n));
            }
        }
        // The then-body does not post-dominate the condition (the
        // fall-through edge bypasses it).
        let cond = cfg.cond_node(BranchId(0)).unwrap();
        let then_stmt = cfg.nodes[cond.0 as usize].succs[0];
        assert!(!pdom.dominates(then_stmt, cond));
    }

    #[test]
    fn unreachable_nodes_are_not_dominated() {
        let cfg = cfg_of("int main() { return 1; int x = 2; return x; }");
        let dom = cfg.dominators();
        let reach = cfg.reachable();
        for (i, r) in reach.iter().enumerate() {
            let n = NodeId(i as u32);
            if !*r {
                assert!(!dom.is_reachable(n));
                assert!(!dom.dominates(cfg.entry, n));
            }
        }
    }
}
