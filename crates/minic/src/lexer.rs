//! Hand-written lexer for mini-C.
//!
//! The lexer supports the C subset used by the benchmark programs: decimal,
//! hexadecimal and octal integer literals, character constants, string
//! literals with the common escapes, `//` and `/* */` comments, and the full
//! operator set of [`crate::token::Tok`].

use crate::error::{Error, Result};
use crate::span::{Pos, Span, UnitId};
use crate::token::{SpannedTok, Tok};

/// Lexes one source unit into a token stream terminated by [`Tok::Eof`].
pub fn lex(unit: UnitId, src: &str) -> Result<Vec<SpannedTok>> {
    Lexer::new(unit, src).run()
}

struct Lexer<'s> {
    unit: UnitId,
    bytes: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Vec<SpannedTok>,
}

impl<'s> Lexer<'s> {
    fn new(unit: UnitId, src: &'s str) -> Self {
        Lexer {
            unit,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.i).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.i + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn error(&self, start: Pos, msg: impl Into<String>) -> Error {
        Error::lex(Span::new(self.unit, start, self.pos()), msg.into())
    }

    fn run(mut self) -> Result<Vec<SpannedTok>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos();
            if self.i >= self.bytes.len() {
                self.emit(start, Tok::Eof);
                return Ok(self.out);
            }
            let c = self.peek();
            match c {
                b'0'..=b'9' => self.number(start)?,
                b'\'' => self.char_const(start)?,
                b'"' => self.string(start)?,
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(start),
                _ => self.operator(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.i < self.bytes.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        if self.i >= self.bytes.len() {
                            return Err(self.error(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn emit(&mut self, start: Pos, tok: Tok) {
        let span = Span::new(self.unit, start, self.pos());
        self.out.push(SpannedTok { tok, span });
    }

    fn number(&mut self, start: Pos) -> Result<()> {
        let mut value: i64 = 0;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let mut any = false;
            while self.peek().is_ascii_hexdigit() {
                let d = self.bump();
                let d = match d {
                    b'0'..=b'9' => (d - b'0') as i64,
                    b'a'..=b'f' => (d - b'a' + 10) as i64,
                    _ => (d - b'A' + 10) as i64,
                };
                value = value.wrapping_mul(16).wrapping_add(d);
                any = true;
            }
            if !any {
                return Err(self.error(start, "hex literal needs at least one digit"));
            }
        } else if self.peek() == b'0' && self.peek2().is_ascii_digit() {
            // Octal, as in C.
            self.bump();
            while self.peek().is_ascii_digit() {
                let d = self.bump();
                if d > b'7' {
                    return Err(self.error(start, "invalid digit in octal literal"));
                }
                value = value.wrapping_mul(8).wrapping_add((d - b'0') as i64);
            }
        } else {
            while self.peek().is_ascii_digit() {
                let d = self.bump();
                value = value.wrapping_mul(10).wrapping_add((d - b'0') as i64);
            }
        }
        if self.peek().is_ascii_alphabetic() || self.peek() == b'_' {
            return Err(self.error(start, "identifier may not start with a digit"));
        }
        self.emit(start, Tok::Int(value));
        Ok(())
    }

    fn escape(&mut self, start: Pos) -> Result<u8> {
        // The leading backslash has been consumed.
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 0x07,
            b'b' => 0x08,
            b'f' => 0x0c,
            b'v' => 0x0b,
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while self.peek().is_ascii_hexdigit() {
                    let d = self.bump();
                    let d = match d {
                        b'0'..=b'9' => (d - b'0') as u32,
                        b'a'..=b'f' => (d - b'a' + 10) as u32,
                        _ => (d - b'A' + 10) as u32,
                    };
                    v = v * 16 + d;
                    any = true;
                }
                if !any {
                    return Err(self.error(start, "\\x escape needs hex digits"));
                }
                (v & 0xff) as u8
            }
            0 => return Err(self.error(start, "unterminated escape sequence")),
            other => {
                return Err(self.error(
                    start,
                    format!("unknown escape sequence `\\{}`", other as char),
                ))
            }
        })
    }

    fn char_const(&mut self, start: Pos) -> Result<()> {
        self.bump(); // opening quote
        let c = match self.peek() {
            b'\\' => {
                self.bump();
                self.escape(start)?
            }
            0 => return Err(self.error(start, "unterminated character constant")),
            b'\'' => return Err(self.error(start, "empty character constant")),
            _ => self.bump(),
        };
        if self.bump() != b'\'' {
            return Err(self.error(start, "unterminated character constant"));
        }
        self.emit(start, Tok::Int(c as i64));
        Ok(())
    }

    fn string(&mut self, start: Pos) -> Result<()> {
        self.bump(); // opening quote
        let mut buf = Vec::new();
        loop {
            match self.peek() {
                0 => return Err(self.error(start, "unterminated string literal")),
                b'"' => {
                    self.bump();
                    break;
                }
                b'\\' => {
                    self.bump();
                    buf.push(self.escape(start)?);
                }
                b'\n' => return Err(self.error(start, "newline in string literal")),
                _ => buf.push(self.bump()),
            }
        }
        self.emit(start, Tok::Str(buf));
        Ok(())
    }

    fn ident(&mut self, start: Pos) {
        let begin = self.i;
        while matches!(self.peek(), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.i])
            .expect("identifier bytes are ASCII")
            .to_string();
        let tok = Tok::keyword(&text).unwrap_or(Tok::Ident(text));
        self.emit(start, tok);
    }

    fn operator(&mut self, start: Pos) -> Result<()> {
        let c = self.bump();
        let n = self.peek();
        let tok = match (c, n) {
            (b'(', _) => Tok::LParen,
            (b')', _) => Tok::RParen,
            (b'{', _) => Tok::LBrace,
            (b'}', _) => Tok::RBrace,
            (b'[', _) => Tok::LBracket,
            (b']', _) => Tok::RBracket,
            (b';', _) => Tok::Semi,
            (b',', _) => Tok::Comma,
            (b':', _) => Tok::Colon,
            (b'?', _) => Tok::Question,
            (b'.', _) => Tok::Dot,
            (b'~', _) => Tok::Tilde,
            (b'+', b'+') => self.two(Tok::PlusPlus),
            (b'+', b'=') => self.two(Tok::PlusAssign),
            (b'+', _) => Tok::Plus,
            (b'-', b'-') => self.two(Tok::MinusMinus),
            (b'-', b'=') => self.two(Tok::MinusAssign),
            (b'-', b'>') => self.two(Tok::Arrow),
            (b'-', _) => Tok::Minus,
            (b'*', b'=') => self.two(Tok::StarAssign),
            (b'*', _) => Tok::Star,
            (b'/', b'=') => self.two(Tok::SlashAssign),
            (b'/', _) => Tok::Slash,
            (b'%', b'=') => self.two(Tok::PercentAssign),
            (b'%', _) => Tok::Percent,
            (b'&', b'&') => self.two(Tok::AndAnd),
            (b'&', b'=') => self.two(Tok::AmpAssign),
            (b'&', _) => Tok::Amp,
            (b'|', b'|') => self.two(Tok::OrOr),
            (b'|', b'=') => self.two(Tok::PipeAssign),
            (b'|', _) => Tok::Pipe,
            (b'^', b'=') => self.two(Tok::CaretAssign),
            (b'^', _) => Tok::Caret,
            (b'!', b'=') => self.two(Tok::Ne),
            (b'!', _) => Tok::Bang,
            (b'=', b'=') => self.two(Tok::Eq),
            (b'=', _) => Tok::Assign,
            (b'<', b'<') => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    Tok::ShlAssign
                } else {
                    Tok::Shl
                }
            }
            (b'<', b'=') => self.two(Tok::Le),
            (b'<', _) => Tok::Lt,
            (b'>', b'>') => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    Tok::ShrAssign
                } else {
                    Tok::Shr
                }
            }
            (b'>', b'=') => self.two(Tok::Ge),
            (b'>', _) => Tok::Gt,
            _ => {
                return Err(self.error(start, format!("unexpected character `{}`", c as char)));
            }
        };
        self.emit(start, tok);
        Ok(())
    }

    fn two(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(UnitId(0), src)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lexes_simple_program() {
        let toks = kinds("int main() { return 0; }");
        assert_eq!(
            toks,
            vec![
                Tok::KwInt,
                Tok::Ident("main".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::KwReturn,
                Tok::Int(0),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0x1F 017 42")[..3],
            [Tok::Int(31), Tok::Int(15), Tok::Int(42)]
        );
    }

    #[test]
    fn lexes_char_constants() {
        assert_eq!(
            kinds("'a' '\\n' '\\\\' '\\0'")[..4],
            [Tok::Int(97), Tok::Int(10), Tok::Int(92), Tok::Int(0)]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = kinds("\"hi\\n\"");
        assert_eq!(toks[0], Tok::Str(b"hi\n".to_vec()));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("<<= >>= -> ++ -- && || <= >= == !=")[..10],
            [
                Tok::ShlAssign,
                Tok::ShrAssign,
                Tok::Arrow,
                Tok::PlusPlus,
                Tok::MinusMinus,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Le,
                Tok::Ge,
                Tok::Eq,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("int /* block \n comment */ x; // line\nchar y;");
        assert_eq!(
            toks,
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::KwChar,
                Tok::Ident("y".into()),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex(UnitId(0), "int\nx\n;").unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[2].span.start.line, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex(UnitId(0), "\"abc").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex(UnitId(0), "/* abc").is_err());
    }

    #[test]
    fn rejects_unknown_escape() {
        assert!(lex(UnitId(0), "\"\\q\"").is_err());
    }

    #[test]
    fn hex_escape_in_string() {
        let toks = kinds("\"\\x41\\x42\"");
        assert_eq!(toks[0], Tok::Str(b"AB".to_vec()));
    }
}
