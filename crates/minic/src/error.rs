//! Error types shared by the mini-C front end.

use crate::span::Span;
use std::fmt;

/// Result alias for front-end operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A front-end error: lexing, parsing, or semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Source region the error refers to.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

/// The front-end phase an [`Error`] originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and type checking.
    Check,
    /// Bytecode compilation.
    Compile,
}

impl Error {
    /// Creates a lexer error.
    pub fn lex(span: Span, msg: impl Into<String>) -> Self {
        Error {
            phase: Phase::Lex,
            span,
            msg: msg.into(),
        }
    }

    /// Creates a parser error.
    pub fn parse(span: Span, msg: impl Into<String>) -> Self {
        Error {
            phase: Phase::Parse,
            span,
            msg: msg.into(),
        }
    }

    /// Creates a semantic-analysis error.
    pub fn check(span: Span, msg: impl Into<String>) -> Self {
        Error {
            phase: Phase::Check,
            span,
            msg: msg.into(),
        }
    }

    /// Creates a compilation error.
    pub fn compile(span: Span, msg: impl Into<String>) -> Self {
        Error {
            phase: Phase::Compile,
            span,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Compile => "compile",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, UnitId};

    #[test]
    fn display_mentions_phase_and_location() {
        let e = Error::parse(
            Span::point(UnitId(1), Pos::new(3, 7)),
            "expected expression",
        );
        let s = e.to_string();
        assert!(s.contains("parse error"));
        assert!(s.contains("3:7"));
        assert!(s.contains("expected expression"));
    }
}
