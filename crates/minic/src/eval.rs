//! Shared concrete evaluation of operators.
//!
//! Used by the constant evaluator in the checker and by the VM, so both
//! agree exactly on arithmetic semantics (wrapping 64-bit, C-like shifts,
//! comparisons producing 0/1).

use crate::ast::{BinOp, UnOp};

/// Evaluates a binary operation on concrete values.
///
/// Returns `Err` with a crash description for division or remainder by
/// zero; every other operation is total (wrapping).
pub fn binop(op: BinOp, a: i64, b: i64) -> Result<i64, &'static str> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err("division by zero");
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err("remainder by zero");
            }
            a.wrapping_rem(b)
        }
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
    })
}

/// Evaluates a unary operation on a concrete value.
pub fn unop(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::BitNot => !a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_produce_zero_or_one() {
        assert_eq!(binop(BinOp::Lt, 1, 2).unwrap(), 1);
        assert_eq!(binop(BinOp::Lt, 2, 1).unwrap(), 0);
        assert_eq!(binop(BinOp::Eq, 5, 5).unwrap(), 1);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(binop(BinOp::Div, 1, 0).is_err());
        assert!(binop(BinOp::Rem, 1, 0).is_err());
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(binop(BinOp::Add, i64::MAX, 1).unwrap(), i64::MIN);
        assert_eq!(binop(BinOp::Mul, i64::MAX, 2).unwrap(), -2);
    }

    #[test]
    fn shifts_mask_the_amount() {
        assert_eq!(binop(BinOp::Shl, 1, 64).unwrap(), 1);
        assert_eq!(binop(BinOp::Shl, 1, 3).unwrap(), 8);
    }

    #[test]
    fn unops() {
        assert_eq!(unop(UnOp::Neg, 5), -5);
        assert_eq!(unop(UnOp::Not, 0), 1);
        assert_eq!(unop(UnOp::Not, 7), 0);
        assert_eq!(unop(UnOp::BitNot, 0), -1);
    }
}
