//! Abstract syntax tree for mini-C.
//!
//! Branch locations are first-class: the parser assigns a stable
//! [`BranchId`] to every conditional construct (`if`, `while`, `for`,
//! `do`/`while`, `&&`, `||`, `?:`, and each `case` of a `switch`). A
//! `BranchId` is the paper's "branch location"; the instrumentation methods,
//! the analyses and the replay engine all speak in terms of these ids, which
//! is what makes a branch log recorded by one component consumable by
//! another.

use crate::span::{Span, UnitId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a branch *location* (a conditional in the source code).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BranchId(pub u32);

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of an expression node, used to index checker side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

/// Identifier of a statement node, used to index checker side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// The syntactic category a branch location came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// An `if` condition.
    If,
    /// A `while` condition.
    While,
    /// A `do`/`while` condition.
    DoWhile,
    /// A `for` condition.
    For,
    /// Short-circuit `&&`.
    LogicalAnd,
    /// Short-circuit `||`.
    LogicalOr,
    /// The condition of a ternary `?:`.
    Ternary,
    /// One `case` comparison of a `switch`.
    SwitchCase,
}

/// Static metadata about one branch location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// The branch location id.
    pub id: BranchId,
    /// What kind of conditional it is.
    pub kind: BranchKind,
    /// Source unit the branch lives in (application vs. library).
    pub unit: UnitId,
    /// Source line of the condition.
    pub line: u32,
    /// Source column of the condition.
    pub col: u32,
    /// Name of the enclosing function.
    pub func: String,
}

/// Syntactic base type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseTy {
    /// `int` (64-bit in this dialect).
    Int,
    /// `char` (one byte, stored widened).
    Char,
    /// `void` (function returns / opaque pointers).
    Void,
    /// `struct <name>`.
    Struct(String),
}

/// A syntactic type: base type, pointer depth, and array dimensions.
///
/// `int *x[10]` parses as base `Int`, `stars == 1`, `dims == [Some(10)]`,
/// i.e. an array of ten `int *` — matching C for the subset we accept.
/// A dimension of `None` (written `[]`) is inferred from the initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeExpr {
    /// Base type.
    pub base: BaseTy,
    /// Number of `*`s applied to the base.
    pub stars: u8,
    /// Array dimensions, outermost first; `None` means "infer".
    pub dims: Vec<Option<usize>>,
    /// Source region of the type.
    pub span: Span,
}

impl TypeExpr {
    /// A plain (non-pointer, non-array) type expression.
    pub fn plain(base: BaseTy, span: Span) -> Self {
        TypeExpr {
            base,
            stars: 0,
            dims: Vec::new(),
            span,
        }
    }
}

/// Binary operators that do not short-circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Bitwise not `~`.
    BitNot,
}

/// Short-circuit logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogOp {
    /// `&&`.
    And,
    /// `||`.
    Or,
}

/// Increment/decrement forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncDec {
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Stable id for side tables.
    pub id: ExprId,
    /// The expression variant.
    pub kind: ExprKind,
    /// Source region.
    pub span: Span,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer or character literal.
    IntLit(i64),
    /// String literal (becomes a pointer to read-only data).
    StrLit(Vec<u8>),
    /// Identifier (local, parameter, global, or function name).
    Ident(String),
    /// Unary `-`, `!`, `~`.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Non-short-circuit binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Short-circuit `&&` / `||`; a branch location.
    Logical {
        op: LogOp,
        branch: BranchId,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Ternary `cond ? a : b`; a branch location.
    Ternary {
        branch: BranchId,
        cond: Box<Expr>,
        then_e: Box<Expr>,
        else_e: Box<Expr>,
    },
    /// Assignment, plain (`op == None`) or compound (`op == Some(+)` etc.).
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `++`/`--` in prefix or postfix position.
    IncDec { op: IncDec, expr: Box<Expr> },
    /// Direct function call (user function or builtin).
    Call { callee: String, args: Vec<Expr> },
    /// Array/pointer indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Struct field access `base.field` or `base->field` (`arrow == true`).
    Field {
        base: Box<Expr>,
        field: String,
        arrow: bool,
    },
    /// `sizeof(type)`, in abstract cells.
    Sizeof(TypeExpr),
    /// C-style cast `(type)expr`.
    Cast { ty: TypeExpr, expr: Box<Expr> },
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
    /// Source region of the whole block.
    pub span: Span,
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable id for side tables (e.g. local slot assignment).
    pub id: StmtId,
    /// The statement variant.
    pub kind: StmtKind,
    /// Source region.
    pub span: Span,
}

/// One `case` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The (constant) case value.
    pub value: i64,
    /// Branch location of the implicit `scrutinee == value` comparison.
    pub branch: BranchId,
    /// Statements of the arm (may be empty: fallthrough).
    pub body: Vec<Stmt>,
    /// Source region of the `case` label.
    pub span: Span,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local variable declaration with optional scalar initializer.
    Decl {
        name: String,
        ty: TypeExpr,
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`; a branch location.
    If {
        branch: BranchId,
        cond: Expr,
        then_b: Block,
        else_b: Option<Block>,
    },
    /// `while` loop; a branch location.
    While {
        branch: BranchId,
        cond: Expr,
        body: Block,
    },
    /// `do { } while (cond);`; a branch location.
    DoWhile {
        branch: BranchId,
        body: Block,
        cond: Expr,
    },
    /// `for` loop; the condition (if present) is a branch location.
    For {
        branch: Option<BranchId>,
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
    },
    /// `switch` over an integer scrutinee.
    Switch {
        scrutinee: Expr,
        cases: Vec<SwitchCase>,
        default: Option<Vec<Stmt>>,
    },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Block),
}

/// A global-variable initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// A single constant expression (or string literal).
    Expr(Expr),
    /// `{ a, b, c }` aggregate initializer.
    List(Vec<Init>),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Source region.
    pub span: Span,
    /// Defining unit.
    pub unit: UnitId,
}

/// One field of a struct.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Source region.
    pub span: Span,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer (must be constant).
    pub init: Option<Init>,
    /// Source region.
    pub span: Span,
    /// Defining unit.
    pub unit: UnitId,
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (arrays decay to pointers).
    pub ty: TypeExpr,
    /// Source region.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
    /// Source region of the header.
    pub span: Span,
    /// Defining unit.
    pub unit: UnitId,
}

/// A parsed (but not yet checked) program: all units merged.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    /// Unit names in parse order; `UnitId(i)` names `units[i]`.
    pub units: Vec<String>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
    /// Table of every branch location, indexed by `BranchId`.
    pub branches: Vec<BranchInfo>,
    /// Total number of expression ids handed out.
    pub n_exprs: u32,
    /// Total number of statement ids handed out.
    pub n_stmts: u32,
}

impl Ast {
    /// Looks up a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Number of branch locations in the whole program.
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Branch locations belonging to a given unit.
    pub fn branches_in_unit(&self, unit: UnitId) -> impl Iterator<Item = &BranchInfo> {
        self.branches.iter().filter(move |b| b.unit == unit)
    }
}

/// Walks all expressions of a statement, calling `f` on each (pre-order).
pub fn walk_stmt_exprs<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        StmtKind::Expr(e) => walk_expr(e, f),
        StmtKind::If {
            cond,
            then_b,
            else_b,
            ..
        } => {
            walk_expr(cond, f);
            walk_block_exprs(then_b, f);
            if let Some(b) = else_b {
                walk_block_exprs(b, f);
            }
        }
        StmtKind::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block_exprs(body, f);
        }
        StmtKind::DoWhile { body, cond, .. } => {
            walk_block_exprs(body, f);
            walk_expr(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(s) = init {
                walk_stmt_exprs(s, f);
            }
            if let Some(e) = cond {
                walk_expr(e, f);
            }
            if let Some(e) = step {
                walk_expr(e, f);
            }
            walk_block_exprs(body, f);
        }
        StmtKind::Switch {
            scrutinee,
            cases,
            default,
        } => {
            walk_expr(scrutinee, f);
            for c in cases {
                for s in &c.body {
                    walk_stmt_exprs(s, f);
                }
            }
            if let Some(d) = default {
                for s in d {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => walk_block_exprs(b, f),
    }
}

/// Walks all expressions of a block (pre-order).
pub fn walk_block_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &block.stmts {
        walk_stmt_exprs(s, f);
    }
}

/// Walks an expression tree (pre-order), calling `f` on each node.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Ident(_) | ExprKind::Sizeof(_) => {}
        ExprKind::Unary { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::Cast { expr, .. } => walk_expr(expr, f),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Logical { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
            ..
        } => {
            walk_expr(cond, f);
            walk_expr(then_e, f);
            walk_expr(else_e, f);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Field { base, .. } => walk_expr(base, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    fn dummy_expr(id: u32, kind: ExprKind) -> Expr {
        Expr {
            id: ExprId(id),
            kind,
            span: Span::point(UnitId(0), Pos::new(1, 1)),
        }
    }

    #[test]
    fn walk_expr_visits_all_nodes() {
        let e = dummy_expr(
            2,
            ExprKind::Binary {
                op: BinOp::Add,
                lhs: Box::new(dummy_expr(0, ExprKind::IntLit(1))),
                rhs: Box::new(dummy_expr(1, ExprKind::IntLit(2))),
            },
        );
        let mut seen = Vec::new();
        walk_expr(&e, &mut |x| seen.push(x.id.0));
        assert_eq!(seen, vec![2, 0, 1]);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Shl.is_comparison());
    }
}
