//! The bytecode VM and its [`Host`] extension trait.
//!
//! A single VM executes every mode the paper needs:
//!
//! - concrete runs ([`NullHost`] or a kernel-backed host),
//! - instrumented deployment runs (a logging host adds 17-unit charges and
//!   collects the branch bitvector),
//! - concolic analysis runs (a symbolic host mirrors every operand with a
//!   shadow expression and labels branches),
//! - guided replay runs (a replay host compares branch directions against
//!   the recorded bitvector and aborts on divergence).
//!
//! The host sees every branch (with its condition shadow), every syscall,
//! and may stop the run at any point ([`HostStop`]).

use crate::ast::{BinOp, BranchId, UnOp};
use crate::bytecode::{CompiledProgram, Instr};
use crate::check::InitCell;
use crate::cost::{op_cost, Meter};
use crate::eval;
use crate::memory::{pack, MemFault, Memory, ObjId, ObjKind};
use crate::span::Loc;
use crate::types::{Builtin, FuncId, StrId, Sys};

/// Why a crash happened.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CrashKind {
    /// A memory fault (the simulated SIGSEGV).
    Mem(MemFault),
    /// Integer division or remainder by zero.
    DivByZero,
    /// `assert(0)`.
    AssertFail,
    /// `abort()`.
    ExplicitAbort,
    /// An externally injected signal (the paper's SEGFAULT injection).
    Signal(i32),
    /// Call stack exceeded the frame limit.
    StackOverflow,
}

impl std::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashKind::Mem(m) => write!(f, "{m}"),
            CrashKind::DivByZero => write!(f, "division by zero"),
            CrashKind::AssertFail => write!(f, "assertion failure"),
            CrashKind::ExplicitAbort => write!(f, "abort()"),
            CrashKind::Signal(s) => write!(f, "signal {s}"),
            CrashKind::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

/// Where and why a run crashed — the "crash site" a bug report records and
/// replay must reach again.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrashInfo {
    /// The crash reason.
    pub kind: CrashKind,
    /// Source location of the crashing operation.
    pub loc: Loc,
    /// Name of the function that crashed.
    pub func: String,
}

/// Result of one VM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// `main` returned or `exit()` was called.
    Exited(i64),
    /// The program crashed.
    Crashed(CrashInfo),
    /// The host aborted the run (e.g. replay divergence).
    Aborted(String),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl RunOutcome {
    /// The crash info if the run crashed.
    pub fn crash(&self) -> Option<&CrashInfo> {
        match self {
            RunOutcome::Crashed(c) => Some(c),
            _ => None,
        }
    }
}

/// A host-initiated stop of the current run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostStop {
    /// Abort the run with a reason (maps to [`RunOutcome::Aborted`]).
    Abort(String),
    /// Crash the program at the current location (e.g. signal delivery).
    Crash(CrashKind),
}

/// Bounds of the memory object a pointer-arithmetic base refers to,
/// passed to [`Host::shadow_ptr_add`] so concolic hosts can emit
/// in-bounds-of-region constraints instead of hard equality pins when
/// concretizing a symbolic address component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrRegion {
    /// Packed address of the object's first cell (`pack(obj, 0)`).
    pub base: i64,
    /// Number of cells in the object.
    pub cells: u32,
}

/// Extension point observing and steering a VM run.
///
/// `V` is the per-cell/per-operand *shadow* value: `()` for concrete runs,
/// a symbolic expression handle for concolic runs. All shadow methods have
/// trivial defaults so concrete hosts only implement `syscall`.
pub trait Host {
    /// Shadow value type attached to every stack slot and memory cell.
    type V: Clone + Default;

    /// Shadow of a literal constant.
    fn shadow_const(&mut self, _v: i64) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a string-literal address.
    fn shadow_str(&mut self, _s: StrId, _addr: i64) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a binary operation result.
    fn shadow_binop(
        &mut self,
        _op: BinOp,
        _a: (i64, &Self::V),
        _b: (i64, &Self::V),
        _out: i64,
    ) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a unary operation result.
    fn shadow_unop(&mut self, _op: UnOp, _a: (i64, &Self::V), _out: i64) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a byte-mask (`(char)` casts and char stores).
    fn shadow_mask_char(&mut self, _a: (i64, &Self::V), _out: i64) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a 0/1 normalization.
    fn shadow_bool(&mut self, _a: (i64, &Self::V), _out: i64) -> Self::V {
        Self::V::default()
    }

    /// Shadow of pointer arithmetic; hosts may concretize symbolic indices
    /// here, as concolic engines do — either with a pinning constraint or
    /// with a region-bounds constraint derived from `region` (the bounds
    /// of the object the base pointer refers to, when it is live).
    fn shadow_ptr_add(
        &mut self,
        _ptr: (i64, &Self::V),
        _idx: (i64, &Self::V),
        _stride: u32,
        _out: i64,
        _region: Option<PtrRegion>,
    ) -> Self::V {
        Self::V::default()
    }

    /// Shadow of a pointer difference.
    fn shadow_ptr_diff(
        &mut self,
        _a: (i64, &Self::V),
        _b: (i64, &Self::V),
        _stride: u32,
        _out: i64,
    ) -> Self::V {
        Self::V::default()
    }

    /// Called at every executed branch with its id, condition (concrete
    /// value + shadow) and taken direction. Returns extra cost units to
    /// charge as instrumentation (e.g. 17 for a logged branch).
    fn on_branch(
        &mut self,
        _bid: BranchId,
        _cond: (i64, &Self::V),
        _taken: bool,
        _loc: Loc,
    ) -> Result<u64, HostStop> {
        Ok(0)
    }

    /// Called when execution reaches the watched location (if set).
    fn on_watch_loc(&mut self, _loc: Loc) -> Result<(), HostStop> {
        Ok(())
    }

    /// Called on function entry.
    fn on_call(&mut self, _f: FuncId) -> Result<(), HostStop> {
        Ok(())
    }

    /// Performs a system call. The host owns all kernel state; it may read
    /// and write VM memory (buffers) through `mem` and account extra cost
    /// through `meter`.
    fn syscall(
        &mut self,
        sys: Sys,
        args: &[(i64, Self::V)],
        mem: &mut Memory<Self::V>,
        meter: &mut Meter,
    ) -> Result<(i64, Self::V), HostStop>;

    /// Receives program output (printf, sys_write to stdout).
    fn output(&mut self, _bytes: &[u8]) {}
}

/// A minimal concrete host: syscalls fail with -1, output is captured.
#[derive(Debug, Default)]
pub struct NullHost {
    /// Captured program output.
    pub stdout: Vec<u8>,
}

impl Host for NullHost {
    type V = ();

    fn syscall(
        &mut self,
        _sys: Sys,
        _args: &[(i64, ())],
        _mem: &mut Memory<()>,
        _meter: &mut Meter,
    ) -> Result<(i64, ()), HostStop> {
        Ok((-1, ()))
    }

    fn output(&mut self, bytes: &[u8]) {
        self.stdout.extend_from_slice(bytes);
    }
}

struct Frame {
    obj: ObjId,
    ret_func: FuncId,
    ret_pc: usize,
    stack_base: usize,
}

/// Default instruction budget: generous for benchmarks, finite for safety.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// Maximum call depth before a simulated stack overflow.
pub const MAX_FRAMES: usize = 512;

/// The virtual machine.
pub struct Vm<'p, H: Host> {
    /// The program being executed.
    pub cp: &'p CompiledProgram,
    /// Program memory.
    pub mem: Memory<H::V>,
    /// The host observing/steering this run.
    pub host: H,
    /// Execution counters.
    pub meter: Meter,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Optional watched source location (see [`Host::on_watch_loc`]).
    pub watch_loc: Option<Loc>,
    stack: Vec<(i64, H::V)>,
    frames: Vec<Frame>,
    global_objs: Vec<ObjId>,
    str_objs: Vec<ObjId>,
    argv_objs: Vec<ObjId>,
    cur_func: FuncId,
    pc: usize,
}

impl<'p, H: Host> Vm<'p, H> {
    /// Creates a VM for `cp` with the given host.
    pub fn new(cp: &'p CompiledProgram, host: H) -> Self {
        Vm {
            cp,
            mem: Memory::new(),
            host,
            meter: Meter::default(),
            fuel: DEFAULT_FUEL,
            watch_loc: None,
            stack: Vec::with_capacity(64),
            frames: Vec::with_capacity(16),
            global_objs: Vec::new(),
            str_objs: Vec::new(),
            argv_objs: Vec::new(),
            cur_func: FuncId(0),
            pc: 0,
        }
    }

    /// Memory objects holding the argv strings (for marking them symbolic).
    pub fn argv_objects(&self) -> &[ObjId] {
        &self.argv_objs
    }

    /// The memory object of a global variable.
    pub fn global_object(&self, g: crate::types::GlobalId) -> ObjId {
        self.global_objs[g.0 as usize]
    }

    /// Lays out globals, rodata and argv, then runs `main` to completion.
    pub fn run(&mut self, argv: &[Vec<u8>]) -> RunOutcome {
        self.prepare(argv);
        self.resume()
    }

    /// Lays out memory and the entry frame without executing anything.
    ///
    /// After `prepare`, callers may mark memory symbolic (argv bytes via
    /// [`Vm::argv_objects`]) before starting execution with
    /// [`Vm::resume`].
    pub fn prepare(&mut self, argv: &[Vec<u8>]) {
        self.setup(argv);
        let main = self.cp.prog.main;
        self.push_entry_frame(main, argv.len());
    }

    /// Executes from the current program point to completion.
    pub fn resume(&mut self) -> RunOutcome {
        self.dispatch()
    }

    fn setup(&mut self, argv: &[Vec<u8>]) {
        // Globals.
        for (i, g) in self.cp.prog.globals.iter().enumerate() {
            let obj = self
                .mem
                .alloc(ObjKind::Global(crate::types::GlobalId(i as u32)), g.size);
            self.global_objs.push(obj);
        }
        // Rodata strings.
        for (i, s) in self.cp.prog.strings.iter().enumerate() {
            let obj = self
                .mem
                .alloc(ObjKind::Rodata(StrId(i as u32)), s.len() + 1);
            self.str_objs.push(obj);
        }
        // Globals' initializers may reference rodata, so fill after interning.
        for (i, g) in self.cp.prog.globals.iter().enumerate() {
            let obj = self.global_objs[i];
            for (off, cell) in g.init.iter().enumerate() {
                let v = match cell {
                    InitCell::Int(v) => *v,
                    InitCell::Str(sid) => pack(self.str_objs[sid.0 as usize], 0),
                };
                self.poke(obj, off, v);
            }
        }
        for (i, s) in self.cp.prog.strings.clone().iter().enumerate() {
            let obj = self.str_objs[i];
            for (off, b) in s.iter().enumerate() {
                self.poke(obj, off, *b as i64);
            }
            // Trailing NUL is already zero.
        }
        // argv objects.
        for a in argv {
            let obj = self.mem.alloc(ObjKind::External, a.len() + 1);
            for (off, b) in a.iter().enumerate() {
                self.poke(obj, off, *b as i64);
            }
            self.argv_objs.push(obj);
        }
    }

    /// Writes a cell bypassing read-only protection (loader only).
    fn poke(&mut self, obj: ObjId, off: usize, v: i64) {
        // Rodata is written once here, before execution starts.
        let addr = pack(obj, off as u32);
        if self.mem.store(addr, v, H::V::default()).is_err() {
            self.mem
                .store_raw(obj, off, v)
                .expect("loader writes are in-bounds");
        }
    }

    fn push_entry_frame(&mut self, main: FuncId, argc: usize) {
        let f = &self.cp.funcs[main.0 as usize];
        let obj = self.mem.alloc(
            ObjKind::Frame {
                func: f.name.clone(),
            },
            f.frame_cells.max(1),
        );
        if f.n_params == 2 {
            // argv array object: argc pointers.
            let argv_arr = self.mem.alloc(ObjKind::External, argc.max(1));
            for (i, o) in self.argv_objs.clone().iter().enumerate() {
                let addr = pack(argv_arr, i as u32);
                self.mem
                    .store(addr, pack(*o, 0), H::V::default())
                    .expect("argv array write in bounds");
            }
            self.mem
                .store(pack(obj, 0), argc as i64, H::V::default())
                .expect("argc slot in bounds");
            self.mem
                .store(pack(obj, 1), pack(argv_arr, 0), H::V::default())
                .expect("argv slot in bounds");
        }
        self.frames.push(Frame {
            obj,
            ret_func: main,
            ret_pc: usize::MAX,
            stack_base: 0,
        });
        self.cur_func = main;
        self.pc = 0;
    }

    fn cur_loc(&self) -> Loc {
        let f = &self.cp.funcs[self.cur_func.0 as usize];
        f.locs
            .get(self.pc.min(f.locs.len().saturating_sub(1)))
            .copied()
            .unwrap_or_default()
    }

    fn crash(&self, kind: CrashKind) -> RunOutcome {
        RunOutcome::Crashed(CrashInfo {
            kind,
            loc: self.cur_loc(),
            func: self.cp.funcs[self.cur_func.0 as usize].name.clone(),
        })
    }

    fn stop(&self, stop: HostStop) -> RunOutcome {
        match stop {
            HostStop::Abort(reason) => RunOutcome::Aborted(reason),
            HostStop::Crash(kind) => self.crash(kind),
        }
    }

    fn dispatch(&mut self) -> RunOutcome {
        macro_rules! pop {
            () => {
                self.stack.pop().expect("compiler keeps the stack balanced")
            };
        }
        macro_rules! fault {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => return self.crash(CrashKind::Mem(f)),
                }
            };
        }
        loop {
            if self.fuel == 0 {
                return RunOutcome::OutOfFuel;
            }
            self.fuel -= 1;
            self.meter.instrs += 1;
            let func = &self.cp.funcs[self.cur_func.0 as usize];
            let instr = func.code[self.pc].clone();
            if let Some(w) = self.watch_loc {
                let loc = func.locs[self.pc];
                if loc == w {
                    if let Err(stop) = self.host.on_watch_loc(loc) {
                        return self.stop(stop);
                    }
                }
            }
            self.pc += 1;
            match instr {
                Instr::Const(v) => {
                    self.meter.charge(op_cost::FREE_OP);
                    let sh = self.host.shadow_const(v);
                    self.stack.push((v, sh));
                }
                Instr::Str(id) => {
                    self.meter.charge(op_cost::FREE_OP);
                    let addr = pack(self.str_objs[id.0 as usize], 0);
                    let sh = self.host.shadow_str(id, addr);
                    self.stack.push((addr, sh));
                }
                Instr::AddrLocal(off) => {
                    self.meter.charge(op_cost::FREE_OP);
                    let obj = self.frames.last().expect("running inside a frame").obj;
                    self.stack.push((pack(obj, off), H::V::default()));
                }
                Instr::AddrGlobal(gid) => {
                    self.meter.charge(op_cost::FREE_OP);
                    let obj = self.global_objs[gid.0 as usize];
                    self.stack.push((pack(obj, 0), H::V::default()));
                }
                Instr::Load => {
                    self.meter.charge(op_cost::MEM);
                    let (addr, _) = pop!();
                    let (v, sh) = fault!(self.mem.load(addr));
                    let sh = sh.clone();
                    self.stack.push((v, sh));
                }
                Instr::Store | Instr::StoreChar => {
                    self.meter.charge(op_cost::MEM);
                    let (mut v, mut sh) = pop!();
                    let (addr, _) = pop!();
                    if matches!(instr, Instr::StoreChar) {
                        let out = v & 0xff;
                        sh = self.host.shadow_mask_char((v, &sh), out);
                        v = out;
                    }
                    fault!(self.mem.store(addr, v, sh));
                }
                Instr::Dup => {
                    self.meter.charge(op_cost::FREE_OP);
                    let top = self.stack.last().expect("dup on nonempty stack").clone();
                    self.stack.push(top);
                }
                Instr::Pop => {
                    self.meter.charge(op_cost::FREE_OP);
                    pop!();
                }
                Instr::Swap => {
                    self.meter.charge(op_cost::FREE_OP);
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Instr::Rot3 => {
                    self.meter.charge(op_cost::FREE_OP);
                    let n = self.stack.len();
                    // [x y z] -> [y z x]
                    self.stack[n - 3..n].rotate_left(1);
                }
                Instr::Bin(op) => {
                    self.meter.charge(op_cost::ALU);
                    let (b, shb) = pop!();
                    let (a, sha) = pop!();
                    let out = match eval::binop(op, a, b) {
                        Ok(v) => v,
                        Err(_) => return self.crash(CrashKind::DivByZero),
                    };
                    let sh = self.host.shadow_binop(op, (a, &sha), (b, &shb), out);
                    self.stack.push((out, sh));
                }
                Instr::Un(op) => {
                    self.meter.charge(op_cost::ALU);
                    let (a, sha) = pop!();
                    let out = eval::unop(op, a);
                    let sh = self.host.shadow_unop(op, (a, &sha), out);
                    self.stack.push((out, sh));
                }
                Instr::MaskChar => {
                    self.meter.charge(op_cost::ALU);
                    let (a, sha) = pop!();
                    let out = a & 0xff;
                    let sh = self.host.shadow_mask_char((a, &sha), out);
                    self.stack.push((out, sh));
                }
                Instr::Bool => {
                    self.meter.charge(op_cost::ALU);
                    let (a, sha) = pop!();
                    let out = (a != 0) as i64;
                    let sh = self.host.shadow_bool((a, &sha), out);
                    self.stack.push((out, sh));
                }
                Instr::PtrAdd(stride) => {
                    self.meter.charge(op_cost::ALU);
                    let (idx, shi) = pop!();
                    let (ptr, shp) = pop!();
                    let out = ptr.wrapping_add(idx.wrapping_mul(stride as i64));
                    // Bounds of the base pointer's object, for hosts that
                    // emit region constraints on symbolic components.
                    let (obj, _) = crate::memory::unpack(ptr);
                    let region = self.mem.object_cells(obj).map(|cells| PtrRegion {
                        base: pack(obj, 0),
                        cells: cells.len() as u32,
                    });
                    let sh =
                        self.host
                            .shadow_ptr_add((ptr, &shp), (idx, &shi), stride, out, region);
                    self.stack.push((out, sh));
                }
                Instr::PtrDiff(stride) => {
                    self.meter.charge(op_cost::ALU);
                    let (b, shb) = pop!();
                    let (a, sha) = pop!();
                    let out = a.wrapping_sub(b) / stride.max(1) as i64;
                    let sh = self.host.shadow_ptr_diff((a, &sha), (b, &shb), stride, out);
                    self.stack.push((out, sh));
                }
                Instr::Offset(k) => {
                    self.meter.charge(op_cost::FREE_OP);
                    let (ptr, sh) = pop!();
                    self.stack.push((ptr.wrapping_add(k as i64), sh));
                }
                Instr::Jump(t) => {
                    self.meter.charge(op_cost::JUMP);
                    self.pc = t as usize;
                }
                Instr::Branch {
                    bid,
                    on_true,
                    on_false,
                } => {
                    self.meter.charge(op_cost::BRANCH);
                    self.meter.branches += 1;
                    let (cond, sh) = pop!();
                    let taken = cond != 0;
                    let loc = self.cp.funcs[self.cur_func.0 as usize].locs[self.pc - 1];
                    match self.host.on_branch(bid, (cond, &sh), taken, loc) {
                        Ok(extra) => {
                            if extra > 0 {
                                self.meter.charge_instrumentation(extra);
                            }
                        }
                        Err(stop) => return self.stop(stop),
                    }
                    self.pc = if taken {
                        on_true as usize
                    } else {
                        on_false as usize
                    };
                }
                Instr::Call(fid) => {
                    self.meter.charge(op_cost::CALL);
                    if let Err(stop) = self.host.on_call(fid) {
                        return self.stop(stop);
                    }
                    if self.frames.len() >= MAX_FRAMES {
                        return self.crash(CrashKind::StackOverflow);
                    }
                    let callee = &self.cp.funcs[fid.0 as usize];
                    let obj = self.mem.alloc(
                        ObjKind::Frame {
                            func: callee.name.clone(),
                        },
                        callee.frame_cells.max(1),
                    );
                    // Pop args (pushed left-to-right) into slots 0..n.
                    for i in (0..callee.n_params).rev() {
                        let (v, sh) = pop!();
                        self.mem
                            .store(pack(obj, i as u32), v, sh)
                            .expect("parameter slots are in bounds");
                    }
                    self.frames.push(Frame {
                        obj,
                        ret_func: self.cur_func,
                        ret_pc: self.pc,
                        stack_base: self.stack.len(),
                    });
                    self.cur_func = fid;
                    self.pc = 0;
                }
                Instr::CallBuiltin(b, argc) => {
                    self.meter.charge(op_cost::BUILTIN);
                    let n = argc as usize;
                    let mut args = Vec::with_capacity(n);
                    for _ in 0..n {
                        args.push(pop!());
                    }
                    args.reverse();
                    match self.builtin(b, &args) {
                        Ok(ret) => self.stack.push(ret),
                        Err(outcome) => return outcome,
                    }
                }
                Instr::Ret => {
                    self.meter.charge(op_cost::RET);
                    let (v, sh) = pop!();
                    let frame = self.frames.pop().expect("ret inside a frame");
                    self.mem.kill(frame.obj);
                    self.stack.truncate(frame.stack_base);
                    if self.frames.is_empty() {
                        return RunOutcome::Exited(v);
                    }
                    self.cur_func = frame.ret_func;
                    self.pc = frame.ret_pc;
                    self.stack.push((v, sh));
                }
            }
        }
    }

    fn builtin(&mut self, b: Builtin, args: &[(i64, H::V)]) -> Result<(i64, H::V), RunOutcome> {
        match b {
            Builtin::Printf => {
                let out = match self.format_printf(args) {
                    Ok(s) => s,
                    Err(f) => return Err(self.crash(CrashKind::Mem(f))),
                };
                self.meter.charge(op_cost::PRINTF_BYTE * out.len() as u64);
                self.host.output(&out);
                Ok((out.len() as i64, H::V::default()))
            }
            Builtin::Malloc => {
                self.meter.charge(op_cost::MALLOC);
                let n = args[0].0.clamp(0, 1 << 24) as usize;
                let obj = self.mem.alloc(ObjKind::Heap, n.max(1));
                Ok((pack(obj, 0), H::V::default()))
            }
            Builtin::Free => match self.mem.free(args[0].0) {
                Ok(()) => Ok((0, H::V::default())),
                Err(f) => Err(self.crash(CrashKind::Mem(f))),
            },
            Builtin::Exit => Err(RunOutcome::Exited(args[0].0)),
            Builtin::Abort => Err(self.crash(CrashKind::ExplicitAbort)),
            Builtin::Assert => {
                if args[0].0 == 0 {
                    Err(self.crash(CrashKind::AssertFail))
                } else {
                    Ok((0, H::V::default()))
                }
            }
            Builtin::Sys(sys) => {
                self.meter.charge(op_cost::SYSCALL);
                self.meter.syscalls += 1;
                match self.host.syscall(sys, args, &mut self.mem, &mut self.meter) {
                    Ok(ret) => Ok(ret),
                    Err(stop) => Err(self.stop_owned(stop)),
                }
            }
        }
    }

    fn stop_owned(&self, stop: HostStop) -> RunOutcome {
        self.stop(stop)
    }

    fn format_printf(&self, args: &[(i64, H::V)]) -> Result<Vec<u8>, MemFault> {
        let fmt = self.mem.read_cstr(args[0].0, 4096)?;
        let mut out = Vec::with_capacity(fmt.len());
        let mut ai = 1usize;
        let mut i = 0usize;
        while i < fmt.len() {
            let c = fmt[i];
            if c != b'%' {
                out.push(c);
                i += 1;
                continue;
            }
            i += 1;
            // Skip flags and width.
            while i < fmt.len() && (fmt[i].is_ascii_digit() || fmt[i] == b'-' || fmt[i] == b'.') {
                i += 1;
            }
            if i >= fmt.len() {
                out.push(b'%');
                break;
            }
            let conv = fmt[i];
            i += 1;
            let arg = |ai: usize| args.get(ai).map(|a| a.0).unwrap_or(0);
            match conv {
                b'%' => out.push(b'%'),
                b'd' | b'u' => {
                    out.extend_from_slice(arg(ai).to_string().as_bytes());
                    ai += 1;
                }
                b'x' => {
                    out.extend_from_slice(format!("{:x}", arg(ai)).as_bytes());
                    ai += 1;
                }
                b'c' => {
                    out.push((arg(ai) & 0xff) as u8);
                    ai += 1;
                }
                b's' => {
                    let s = self.mem.read_cstr(arg(ai), 1 << 20)?;
                    out.extend_from_slice(&s);
                    ai += 1;
                }
                other => {
                    out.push(b'%');
                    out.push(other);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn run_src(src: &str) -> (RunOutcome, NullHost) {
        let cp = build(&[("main", src)]).unwrap();
        let mut vm = Vm::new(&cp, NullHost::default());
        let out = vm.run(&[]);
        let meter = vm.meter.clone();
        assert!(meter.instrs > 0);
        let Vm { host, .. } = vm;
        (out, host)
    }

    fn exit_code(src: &str) -> i64 {
        match run_src(src).0 {
            RunOutcome::Exited(v) => v,
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn returns_value_from_main() {
        assert_eq!(exit_code("int main() { return 42; }"), 42);
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(
            exit_code("int main() { int a = 6; int b = 7; return a * b; }"),
            42
        );
    }

    #[test]
    fn if_else_and_comparisons() {
        let src = r#"
            int main() {
                int x = 5;
                if (x > 3) { return 1; } else { return 2; }
            }
        "#;
        assert_eq!(exit_code(src), 1);
    }

    #[test]
    fn while_loop_sums() {
        let src = r#"
            int main() {
                int i = 0; int sum = 0;
                while (i < 10) { sum += i; i++; }
                return sum;
            }
        "#;
        assert_eq!(exit_code(src), 45);
    }

    #[test]
    fn for_loop_and_break_continue() {
        let src = r#"
            int main() {
                int sum = 0;
                for (int i = 0; i < 100; i++) {
                    if (i % 2) { continue; }
                    if (i >= 10) { break; }
                    sum += i;
                }
                return sum;
            }
        "#;
        assert_eq!(exit_code(src), 20);
    }

    #[test]
    fn do_while_runs_once() {
        let src = "int main() { int n = 0; do { n++; } while (0); return n; }";
        assert_eq!(exit_code(src), 1);
    }

    #[test]
    fn recursion_fibonacci() {
        let src = r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(10); }
        "#;
        assert_eq!(exit_code(src), 55);
    }

    #[test]
    fn pointers_and_arrays() {
        let src = r#"
            int main() {
                int arr[5];
                int *p = arr;
                for (int i = 0; i < 5; i++) { arr[i] = i * i; }
                p = p + 2;
                return *p + arr[4];
            }
        "#;
        assert_eq!(exit_code(src), 20);
    }

    #[test]
    fn pointer_difference() {
        let src = r#"
            int main() {
                int arr[8];
                int *a = &arr[1];
                int *b = &arr[6];
                return b - a;
            }
        "#;
        assert_eq!(exit_code(src), 5);
    }

    #[test]
    fn structs_and_field_access() {
        let src = r#"
            struct point { int x; int y; };
            struct point make(int x, int y, struct point *out) {
                out->x = x; out->y = y; return 0;
            }
            int main() {
                struct point p;
                make(3, 4, &p);
                return p.x * p.x + p.y * p.y;
            }
        "#;
        // `make` returns struct? no — returns int 0 via struct ret? We declared
        // return type struct point which is invalid; fixed below.
        let _ = src;
        let src = r#"
            struct point { int x; int y; };
            int make(int x, int y, struct point *out) {
                out->x = x; out->y = y; return 0;
            }
            int main() {
                struct point p;
                make(3, 4, &p);
                return p.x * p.x + p.y * p.y;
            }
        "#;
        assert_eq!(exit_code(src), 25);
    }

    #[test]
    fn switch_with_fallthrough() {
        let src = r#"
            int classify(int x) {
                int r = 0;
                switch (x) {
                    case 1:
                    case 2: r = 10; break;
                    case 3: r = 20; break;
                    default: r = -1;
                }
                return r;
            }
            int main() { return classify(1) + classify(2) + classify(3) + classify(9); }
        "#;
        assert_eq!(exit_code(src), 39);
    }

    #[test]
    fn logical_short_circuit() {
        let src = r#"
            int count = 0;
            int bump() { count++; return 1; }
            int main() {
                int a = 0 && bump();
                int b = 1 || bump();
                return count * 10 + a + b;
            }
        "#;
        assert_eq!(exit_code(src), 1);
    }

    #[test]
    fn ternary_expression() {
        assert_eq!(
            exit_code("int main() { int x = 7; return x > 5 ? 100 : 200; }"),
            100
        );
    }

    #[test]
    fn char_semantics_mask_to_byte() {
        let src = r#"
            int main() {
                char c = 300;
                char d = (char)(256 + 65);
                return c * 1000 + d;
            }
        "#;
        assert_eq!(exit_code(src), 44 * 1000 + 65);
    }

    #[test]
    fn string_literals_and_indexing() {
        let src = r#"
            int main() {
                char *s = "ABC";
                return s[0] + s[2];
            }
        "#;
        assert_eq!(exit_code(src), 65 + 67);
    }

    #[test]
    fn global_initializers() {
        let src = r#"
            int table[4] = {10, 20, 30, 40};
            char *greeting = "hey";
            int main() { return table[1] + greeting[0]; }
        "#;
        assert_eq!(exit_code(src), 20 + 104);
    }

    #[test]
    fn malloc_free_roundtrip() {
        let src = r#"
            int main() {
                int *p = (int*)malloc(4);
                p[0] = 5; p[3] = 7;
                int v = p[0] + p[3];
                free(p);
                return v;
            }
        "#;
        assert_eq!(exit_code(src), 12);
    }

    #[test]
    fn out_of_bounds_crashes() {
        let src = "int main() { int arr[2]; return arr[5]; }";
        let (out, _) = run_src(src);
        assert!(matches!(
            out,
            RunOutcome::Crashed(CrashInfo {
                kind: CrashKind::Mem(MemFault::OutOfBounds { .. }),
                ..
            })
        ));
    }

    #[test]
    fn null_deref_crashes() {
        let src = "int main() { int *p = 0; return *p; }";
        let (out, _) = run_src(src);
        assert!(matches!(
            out.crash().map(|c| &c.kind),
            Some(CrashKind::Mem(MemFault::NullDeref))
        ));
    }

    #[test]
    fn use_after_free_crashes() {
        let src = r#"
            int main() {
                int *p = (int*)malloc(2);
                free(p);
                return p[0];
            }
        "#;
        let (out, _) = run_src(src);
        assert!(matches!(
            out.crash().map(|c| &c.kind),
            Some(CrashKind::Mem(MemFault::UseAfterFree))
        ));
    }

    #[test]
    fn division_by_zero_crashes() {
        let (out, _) = run_src("int main() { int z = 0; return 4 / z; }");
        assert!(matches!(
            out.crash().map(|c| &c.kind),
            Some(CrashKind::DivByZero)
        ));
    }

    #[test]
    fn assert_failure_crashes_with_location() {
        let src = "int main() {\n  assert(1);\n  assert(0);\n  return 0;\n}";
        let (out, _) = run_src(src);
        let crash = out.crash().expect("crashed");
        assert_eq!(crash.kind, CrashKind::AssertFail);
        assert_eq!(crash.loc.line, 3);
    }

    #[test]
    fn stack_overflow_detected() {
        let src = "int rec(int n) { return rec(n + 1); } int main() { return rec(0); }";
        let (out, _) = run_src(src);
        assert!(matches!(
            out.crash().map(|c| &c.kind),
            Some(CrashKind::StackOverflow)
        ));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let cp = build(&[("main", "int main() { while (1) { } return 0; }")]).unwrap();
        let mut vm = Vm::new(&cp, NullHost::default());
        vm.fuel = 10_000;
        assert_eq!(vm.run(&[]), RunOutcome::OutOfFuel);
    }

    #[test]
    fn printf_formats_output() {
        let src = r#"
            int main() {
                printf("x=%d s=%s c=%c h=%x%%\n", 42, "hi", 65, 255);
                return 0;
            }
        "#;
        let (_, host) = run_src(src);
        assert_eq!(host.stdout, b"x=42 s=hi c=A h=ff%\n");
    }

    #[test]
    fn argv_reaches_main() {
        let src = r#"
            int main(int argc, char **argv) {
                if (argc != 2) { return -1; }
                return argv[1][0];
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let mut vm = Vm::new(&cp, NullHost::default());
        let out = vm.run(&[b"prog".to_vec(), b"Zebra".to_vec()]);
        assert_eq!(out, RunOutcome::Exited(b'Z' as i64));
    }

    #[test]
    fn exit_builtin_stops_program() {
        let src = "int f() { exit(7); return 1; } int main() { f(); return 0; }";
        assert_eq!(exit_code(src), 7);
    }

    #[test]
    fn meter_counts_branches() {
        let src = r#"
            int main() {
                int n = 0;
                for (int i = 0; i < 10; i++) { n += i; }
                return n;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let mut vm = Vm::new(&cp, NullHost::default());
        vm.run(&[]);
        assert_eq!(vm.meter.branches, 11); // 10 taken + 1 exit evaluation
    }

    #[test]
    fn dangling_frame_pointer_faults() {
        let src = r#"
            int *leak() { int x = 5; return &x; }
            int main() { int *p = leak(); return *p; }
        "#;
        let (out, _) = run_src(src);
        assert!(matches!(
            out.crash().map(|c| &c.kind),
            Some(CrashKind::Mem(MemFault::UseAfterFree))
        ));
    }
}
