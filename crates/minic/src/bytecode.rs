//! Stack bytecode and the AST-to-bytecode compiler.
//!
//! One compiled program serves every execution mode: plain concrete runs,
//! instrumented (logging) runs, concolic analysis runs and guided replay
//! runs all execute the same bytecode under different
//! [`Host`](crate::vm::Host)s. Every source-level conditional compiles to
//! exactly one [`Instr::Branch`] carrying its [`BranchId`], which is what
//! makes branch logs comparable across runs.

use crate::ast::*;
use crate::check::{Callee, DeclSlot, Program, Res};
use crate::error::{Error, Result};
use crate::span::{Loc, Span};
use crate::types::*;

/// A bytecode instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    Const(i64),
    /// Push the address of an interned string's rodata object.
    Str(StrId),
    /// Push the address of a frame cell.
    AddrLocal(u32),
    /// Push the address of a global's first cell.
    AddrGlobal(GlobalId),
    /// Pop an address, push the cell value.
    Load,
    /// Pop value then address, store the cell.
    Store,
    /// Like [`Instr::Store`] but masks the value to one byte first.
    StoreChar,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the top two values.
    Swap,
    /// Rotate the third-from-top to the top: `[x y z]` becomes `[y z x]`.
    Rot3,
    /// Pop two values, push the binary operation result.
    Bin(BinOp),
    /// Pop one value, push the unary operation result.
    Un(UnOp),
    /// Mask the top of stack to one byte.
    MaskChar,
    /// Normalize the top of stack to 0/1.
    Bool,
    /// Pop index then pointer, push `ptr + index * stride`.
    PtrAdd(u32),
    /// Pop two pointers, push `(a - b) / stride`.
    PtrDiff(u32),
    /// Add a constant cell offset to the pointer on top (field access).
    Offset(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop the condition of branch location `bid`; jump to `on_true` if
    /// nonzero, else `on_false`. The single instrumentable instruction.
    Branch {
        bid: BranchId,
        on_true: u32,
        on_false: u32,
    },
    /// Call a user function (argument count from its signature).
    Call(FuncId),
    /// Call a builtin with an explicit argument count.
    CallBuiltin(Builtin, u8),
    /// Pop the return value, pop the frame, push the value for the caller.
    Ret,
}

/// A compiled function body.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// Function name.
    pub name: String,
    /// Bytecode.
    pub code: Vec<Instr>,
    /// Source location of each instruction (parallel to `code`).
    pub locs: Vec<Loc>,
    /// Number of parameters (stored in frame cells `0..n_params`).
    pub n_params: usize,
    /// Frame size in cells.
    pub frame_cells: usize,
}

/// A compiled program: checked program plus bytecode for every function.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The checked program (AST, types, branch table, globals, strings).
    pub prog: Program,
    /// Compiled bodies, indexed by `FuncId`.
    pub funcs: Vec<CompiledFunc>,
}

impl CompiledProgram {
    /// Total number of branch locations.
    pub fn n_branches(&self) -> usize {
        self.prog.ast.branches.len()
    }

    /// Branch metadata by id.
    pub fn branch(&self, id: BranchId) -> &BranchInfo {
        self.prog.branch(id)
    }
}

/// Compiles a checked program to bytecode.
pub fn compile(prog: Program) -> Result<CompiledProgram> {
    let mut funcs = Vec::with_capacity(prog.funcs.len());
    for info in &prog.funcs {
        let def = &prog.ast.funcs[info.ast_index];
        let mut c = FnCompiler::new(&prog);
        c.block(&def.body)?;
        // Implicit `return 0` (reachable only if the body falls through).
        c.emit(Instr::Const(0), def.span);
        c.emit(Instr::Ret, def.span);
        let (code, locs) = c.finish()?;
        funcs.push(CompiledFunc {
            name: info.name.clone(),
            code,
            locs,
            n_params: info.params.len(),
            frame_cells: info.frame_cells,
        });
    }
    Ok(CompiledProgram { prog, funcs })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum PatchSlot {
    Jump,
    BranchTrue,
    BranchFalse,
}

struct FnCompiler<'p> {
    prog: &'p Program,
    code: Vec<Instr>,
    locs: Vec<Loc>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, PatchSlot, Label)>,
    break_stack: Vec<Label>,
    continue_stack: Vec<Label>,
}

impl<'p> FnCompiler<'p> {
    fn new(prog: &'p Program) -> Self {
        FnCompiler {
            prog,
            code: Vec::new(),
            locs: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
        }
    }

    fn emit(&mut self, i: Instr, span: Span) {
        self.code.push(i);
        self.locs.push(Loc::from_span(span));
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len() as u32);
    }

    fn emit_jump(&mut self, target: Label, span: Span) {
        self.patches
            .push((self.code.len(), PatchSlot::Jump, target));
        self.emit(Instr::Jump(u32::MAX), span);
    }

    fn emit_branch(&mut self, bid: BranchId, on_true: Label, on_false: Label, span: Span) {
        let pc = self.code.len();
        self.patches.push((pc, PatchSlot::BranchTrue, on_true));
        self.patches.push((pc, PatchSlot::BranchFalse, on_false));
        self.emit(
            Instr::Branch {
                bid,
                on_true: u32::MAX,
                on_false: u32::MAX,
            },
            span,
        );
    }

    fn finish(mut self) -> Result<(Vec<Instr>, Vec<Loc>)> {
        for (pc, slot, label) in &self.patches {
            let target = self.labels[label.0].expect("unbound label");
            match (&mut self.code[*pc], slot) {
                (Instr::Jump(t), PatchSlot::Jump) => *t = target,
                (Instr::Branch { on_true, .. }, PatchSlot::BranchTrue) => *on_true = target,
                (Instr::Branch { on_false, .. }, PatchSlot::BranchFalse) => *on_false = target,
                _ => unreachable!("patch slot does not match instruction"),
            }
        }
        Ok((self.code, self.locs))
    }

    // ---- type helpers -------------------------------------------------------

    fn ty(&self, e: &Expr) -> &Type {
        &self.prog.expr_ty[e.id.0 as usize]
    }

    fn stride_of_pointee(&self, e: &Expr) -> u32 {
        match self.ty(e).decayed() {
            Type::Ptr(p) => p.size_cells(&self.prog.structs).max(1) as u32,
            _ => 1,
        }
    }

    fn size_of(&self, t: &Type) -> u32 {
        t.size_cells(&self.prog.structs) as u32
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self, b: &Block) -> Result<()> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    let DeclSlot { offset, ty } = self.prog.decl_slot[s.id.0 as usize]
                        .clone()
                        .expect("checked decl has a slot");
                    self.emit(Instr::AddrLocal(offset as u32), s.span);
                    self.value(e)?;
                    if ty == Type::Char {
                        self.emit(Instr::StoreChar, s.span);
                    } else {
                        self.emit(Instr::Store, s.span);
                    }
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.value(e)?;
                self.emit(Instr::Pop, s.span);
                Ok(())
            }
            StmtKind::If {
                branch,
                cond,
                then_b,
                else_b,
            } => {
                let lt = self.new_label();
                let lf = self.new_label();
                let lend = self.new_label();
                self.value(cond)?;
                self.emit_branch(*branch, lt, lf, cond.span);
                self.bind(lt);
                self.block(then_b)?;
                self.emit_jump(lend, s.span);
                self.bind(lf);
                if let Some(b) = else_b {
                    self.block(b)?;
                }
                self.bind(lend);
                Ok(())
            }
            StmtKind::While { branch, cond, body } => {
                let lcond = self.new_label();
                let lbody = self.new_label();
                let lend = self.new_label();
                self.bind(lcond);
                self.value(cond)?;
                self.emit_branch(*branch, lbody, lend, cond.span);
                self.bind(lbody);
                self.continue_stack.push(lcond);
                self.break_stack.push(lend);
                self.block(body)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.emit_jump(lcond, s.span);
                self.bind(lend);
                Ok(())
            }
            StmtKind::DoWhile { branch, body, cond } => {
                let lbody = self.new_label();
                let lcond = self.new_label();
                let lend = self.new_label();
                self.bind(lbody);
                self.continue_stack.push(lcond);
                self.break_stack.push(lend);
                self.block(body)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.bind(lcond);
                self.value(cond)?;
                self.emit_branch(*branch, lbody, lend, cond.span);
                self.bind(lend);
                Ok(())
            }
            StmtKind::For {
                branch,
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let lcond = self.new_label();
                let lbody = self.new_label();
                let lstep = self.new_label();
                let lend = self.new_label();
                self.bind(lcond);
                if let (Some(c), Some(b)) = (cond, branch) {
                    self.value(c)?;
                    self.emit_branch(*b, lbody, lend, c.span);
                }
                self.bind(lbody);
                self.continue_stack.push(lstep);
                self.break_stack.push(lend);
                self.block(body)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.bind(lstep);
                if let Some(st) = step {
                    self.value(st)?;
                    self.emit(Instr::Pop, st.span);
                }
                self.emit_jump(lcond, s.span);
                self.bind(lend);
                Ok(())
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => self.switch(s.span, scrutinee, cases, default.as_deref()),
            StmtKind::Return(value) => {
                match value {
                    Some(e) => self.value(e)?,
                    None => self.emit(Instr::Const(0), s.span),
                }
                self.emit(Instr::Ret, s.span);
                Ok(())
            }
            StmtKind::Break => {
                let target = *self.break_stack.last().expect("checked break in scope");
                self.emit_jump(target, s.span);
                Ok(())
            }
            StmtKind::Continue => {
                let target = *self
                    .continue_stack
                    .last()
                    .expect("checked continue in scope");
                self.emit_jump(target, s.span);
                Ok(())
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn switch(
        &mut self,
        span: Span,
        scrutinee: &Expr,
        cases: &[SwitchCase],
        default: Option<&[Stmt]>,
    ) -> Result<()> {
        let lend = self.new_label();
        let pre_labels: Vec<Label> = cases.iter().map(|_| self.new_label()).collect();
        let body_labels: Vec<Label> = cases.iter().map(|_| self.new_label()).collect();
        let ldefault_pre = self.new_label();
        let ldefault_body = self.new_label();

        self.value(scrutinee)?;
        for (c, pre) in cases.iter().zip(&pre_labels) {
            let lnext = self.new_label();
            self.emit(Instr::Dup, c.span);
            self.emit(Instr::Const(c.value), c.span);
            self.emit(Instr::Bin(BinOp::Eq), c.span);
            self.emit_branch(c.branch, *pre, lnext, c.span);
            self.bind(lnext);
        }
        // No case matched: discard the scrutinee, go to default (or end).
        self.emit(Instr::Pop, span);
        self.emit_jump(ldefault_pre, span);

        // Trampolines that discard the scrutinee copy before entering a body.
        for (pre, body) in pre_labels.iter().zip(&body_labels) {
            self.bind(*pre);
            self.emit(Instr::Pop, span);
            self.emit_jump(*body, span);
        }
        self.bind(ldefault_pre);
        self.emit_jump(ldefault_body, span);

        // Bodies laid out in order; fallthrough is sequential execution.
        self.break_stack.push(lend);
        for (c, body) in cases.iter().zip(&body_labels) {
            self.bind(*body);
            for st in &c.body {
                self.stmt(st)?;
            }
        }
        self.bind(ldefault_body);
        if let Some(d) = default {
            for st in d {
                self.stmt(st)?;
            }
        }
        self.break_stack.pop();
        self.bind(lend);
        Ok(())
    }

    // ---- expressions --------------------------------------------------------

    /// Compiles an expression for its value (arrays decay to addresses).
    fn value(&mut self, e: &Expr) -> Result<()> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(Instr::Const(*v), e.span);
                Ok(())
            }
            ExprKind::StrLit(_) => {
                let id = self.prog.str_id[e.id.0 as usize].expect("checked string is interned");
                self.emit(Instr::Str(id), e.span);
                Ok(())
            }
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Field { .. } => {
                self.place(e)?;
                if !matches!(self.ty(e), Type::Array(..)) {
                    self.emit(Instr::Load, e.span);
                }
                Ok(())
            }
            ExprKind::Deref(_) => {
                self.place(e)?;
                self.emit(Instr::Load, e.span);
                Ok(())
            }
            ExprKind::AddrOf(inner) => self.place(inner),
            ExprKind::Unary { op, expr } => {
                self.value(expr)?;
                self.emit(Instr::Un(*op), e.span);
                Ok(())
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(e, *op, lhs, rhs),
            ExprKind::Logical {
                op,
                branch,
                lhs,
                rhs,
            } => {
                let lt = self.new_label();
                let lf = self.new_label();
                let lend = self.new_label();
                self.value(lhs)?;
                self.emit_branch(*branch, lt, lf, lhs.span);
                match op {
                    LogOp::And => {
                        self.bind(lt);
                        self.value(rhs)?;
                        self.emit(Instr::Bool, rhs.span);
                        self.emit_jump(lend, e.span);
                        self.bind(lf);
                        self.emit(Instr::Const(0), e.span);
                    }
                    LogOp::Or => {
                        self.bind(lt);
                        self.emit(Instr::Const(1), e.span);
                        self.emit_jump(lend, e.span);
                        self.bind(lf);
                        self.value(rhs)?;
                        self.emit(Instr::Bool, rhs.span);
                    }
                }
                self.bind(lend);
                Ok(())
            }
            ExprKind::Ternary {
                branch,
                cond,
                then_e,
                else_e,
            } => {
                let lt = self.new_label();
                let lf = self.new_label();
                let lend = self.new_label();
                self.value(cond)?;
                self.emit_branch(*branch, lt, lf, cond.span);
                self.bind(lt);
                self.value(then_e)?;
                self.emit_jump(lend, e.span);
                self.bind(lf);
                self.value(else_e)?;
                self.bind(lend);
                Ok(())
            }
            ExprKind::Assign { op, lhs, rhs } => self.assign(e, *op, lhs, rhs),
            ExprKind::IncDec { op, expr } => self.incdec(e, *op, expr),
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.value(a)?;
                }
                match self.prog.callee[e.id.0 as usize].expect("checked call has a callee") {
                    Callee::Func(fid) => self.emit(Instr::Call(fid), e.span),
                    Callee::Builtin(b) => {
                        self.emit(Instr::CallBuiltin(b, args.len() as u8), e.span)
                    }
                }
                Ok(())
            }
            ExprKind::Sizeof(_) => {
                // The checker validated the type; recompute its size here.
                let size = match &e.kind {
                    ExprKind::Sizeof(te) => self.sizeof_type(te)?,
                    _ => unreachable!(),
                };
                self.emit(Instr::Const(size as i64), e.span);
                Ok(())
            }
            ExprKind::Cast { expr, .. } => {
                self.value(expr)?;
                if self.ty(e) == &Type::Char {
                    self.emit(Instr::MaskChar, e.span);
                }
                Ok(())
            }
        }
    }

    fn sizeof_type(&self, te: &TypeExpr) -> Result<usize> {
        // Mirror the checker's resolution (definitions cannot fail here).
        let mut ty = match &te.base {
            BaseTy::Int => Type::Int,
            BaseTy::Char => Type::Char,
            BaseTy::Void => Type::Void,
            BaseTy::Struct(name) => {
                let sid = self
                    .prog
                    .structs
                    .iter()
                    .position(|s| &s.name == name)
                    .ok_or_else(|| Error::compile(te.span, format!("unknown struct `{name}`")))?;
                Type::Struct(StructId(sid as u32))
            }
        };
        for _ in 0..te.stars {
            ty = Type::Ptr(Box::new(ty));
        }
        for dim in te.dims.iter().rev() {
            let n = dim.ok_or_else(|| Error::compile(te.span, "sizeof of unsized array"))?;
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty.size_cells(&self.prog.structs))
    }

    fn binary(&mut self, e: &Expr, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<()> {
        let lt = self.ty(lhs).decayed();
        let rt = self.ty(rhs).decayed();
        let l_ptr = matches!(lt, Type::Ptr(_));
        let r_ptr = matches!(rt, Type::Ptr(_));
        match op {
            BinOp::Add if l_ptr && !r_ptr => {
                let stride = self.stride_of_pointee(lhs);
                self.value(lhs)?;
                self.value(rhs)?;
                self.emit(Instr::PtrAdd(stride), e.span);
            }
            BinOp::Add if r_ptr && !l_ptr => {
                let stride = self.stride_of_pointee(rhs);
                self.value(lhs)?;
                self.value(rhs)?;
                self.emit(Instr::Swap, e.span);
                self.emit(Instr::PtrAdd(stride), e.span);
            }
            BinOp::Sub if l_ptr && !r_ptr => {
                let stride = self.stride_of_pointee(lhs);
                self.value(lhs)?;
                self.value(rhs)?;
                self.emit(Instr::Un(UnOp::Neg), e.span);
                self.emit(Instr::PtrAdd(stride), e.span);
            }
            BinOp::Sub if l_ptr && r_ptr => {
                let stride = self.stride_of_pointee(lhs);
                self.value(lhs)?;
                self.value(rhs)?;
                self.emit(Instr::PtrDiff(stride), e.span);
            }
            _ => {
                self.value(lhs)?;
                self.value(rhs)?;
                self.emit(Instr::Bin(op), e.span);
            }
        }
        Ok(())
    }

    /// Emits the `[addr, value] -> [value]` store epilogue shared by
    /// assignments and increments, leaving the stored value on the stack.
    fn store_keep(&mut self, char_lvalue: bool, span: Span) {
        if char_lvalue {
            self.emit(Instr::MaskChar, span);
        }
        self.emit(Instr::Dup, span); // [a, v, v]
        self.emit(Instr::Rot3, span); // [v, v, a]
        self.emit(Instr::Swap, span); // [v, a, v]
        if char_lvalue {
            self.emit(Instr::StoreChar, span);
        } else {
            self.emit(Instr::Store, span);
        }
    }

    fn assign(&mut self, e: &Expr, op: Option<BinOp>, lhs: &Expr, rhs: &Expr) -> Result<()> {
        let lty = self.ty(lhs).clone();
        let char_lvalue = lty == Type::Char;
        self.place(lhs)?;
        match op {
            None => {
                self.value(rhs)?;
            }
            Some(op) => {
                // Compound: load the old value, apply the operation.
                self.emit(Instr::Dup, e.span); // [a, a]
                self.emit(Instr::Load, e.span); // [a, old]
                let l_ptr = matches!(lty.decayed(), Type::Ptr(_));
                if l_ptr && matches!(op, BinOp::Add | BinOp::Sub) {
                    let stride = self.stride_of_pointee(lhs);
                    self.value(rhs)?;
                    if op == BinOp::Sub {
                        self.emit(Instr::Un(UnOp::Neg), e.span);
                    }
                    self.emit(Instr::PtrAdd(stride), e.span);
                } else {
                    self.value(rhs)?;
                    self.emit(Instr::Bin(op), e.span);
                }
            }
        }
        self.store_keep(char_lvalue, e.span);
        Ok(())
    }

    fn incdec(&mut self, e: &Expr, op: IncDec, target: &Expr) -> Result<()> {
        let tty = self.ty(target).clone();
        let char_lvalue = tty == Type::Char;
        let is_ptr = matches!(tty.decayed(), Type::Ptr(_));
        let delta: i64 = match op {
            IncDec::PreInc | IncDec::PostInc => 1,
            IncDec::PreDec | IncDec::PostDec => -1,
        };
        let post = matches!(op, IncDec::PostInc | IncDec::PostDec);
        self.place(target)?; // [a]
        self.emit(Instr::Dup, e.span); // [a, a]
        self.emit(Instr::Load, e.span); // [a, old]
        if post {
            // Keep the old value as the expression result.
            // [a, old] -> compute new -> [old, new, a] -> store.
            self.emit(Instr::Dup, e.span); // [a, old, old]
            self.bump_by(delta, is_ptr, target, e.span); // [a, old, new]
            if char_lvalue {
                self.emit(Instr::MaskChar, e.span);
            }
            self.emit(Instr::Rot3, e.span); // [old, new, a]
            self.emit(Instr::Swap, e.span); // [old, a, new]
            if char_lvalue {
                self.emit(Instr::StoreChar, e.span);
            } else {
                self.emit(Instr::Store, e.span);
            }
        } else {
            // [a, old] -> [a, new] -> store_keep leaves [new].
            self.bump_by(delta, is_ptr, target, e.span);
            self.store_keep(char_lvalue, e.span);
        }
        Ok(())
    }

    fn bump_by(&mut self, delta: i64, is_ptr: bool, target: &Expr, span: Span) {
        self.emit(Instr::Const(delta), span);
        if is_ptr {
            let stride = self.stride_of_pointee(target);
            self.emit(Instr::PtrAdd(stride), span);
        } else {
            self.emit(Instr::Bin(BinOp::Add), span);
        }
    }

    /// Compiles an expression for its address.
    fn place(&mut self, e: &Expr) -> Result<()> {
        match &e.kind {
            ExprKind::Ident(_) => {
                match self.prog.res[e.id.0 as usize].expect("checked ident is resolved") {
                    Res::Local { offset } => self.emit(Instr::AddrLocal(offset as u32), e.span),
                    Res::Global(gid) => self.emit(Instr::AddrGlobal(gid), e.span),
                }
                Ok(())
            }
            ExprKind::Deref(inner) => self.value(inner),
            ExprKind::Index { base, index } => {
                let elem = self.ty(e).clone();
                let stride = self.size_of(&elem).max(1);
                self.value(base)?;
                self.value(index)?;
                self.emit(Instr::PtrAdd(stride), e.span);
                Ok(())
            }
            ExprKind::Field { base, arrow, .. } => {
                if *arrow {
                    self.value(base)?;
                } else {
                    self.place(base)?;
                }
                let off =
                    self.prog.field_offset[e.id.0 as usize].expect("checked field has an offset");
                if off > 0 {
                    self.emit(Instr::Offset(off as u32), e.span);
                }
                Ok(())
            }
            _ => Err(Error::compile(e.span, "expression is not addressable")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(check(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn compiles_minimal_program() {
        let cp = compile_src("int main() { return 42; }");
        let main = &cp.funcs[0];
        assert!(main.code.contains(&Instr::Const(42)));
        assert!(main.code.contains(&Instr::Ret));
        assert_eq!(main.code.len(), main.locs.len());
    }

    #[test]
    fn every_branch_location_appears_exactly_once() {
        let src = r#"
            int main() {
                int x = 1;
                if (x) { x = 2; }
                while (x < 10) { x++; }
                for (x = 0; x < 5; x++) { }
                int y = x > 0 && x < 100;
                switch (x) { case 1: y = 1; break; default: y = 0; }
                return y ? 1 : 0;
            }
        "#;
        let cp = compile_src(src);
        let mut seen = std::collections::HashMap::new();
        for f in &cp.funcs {
            for i in &f.code {
                if let Instr::Branch { bid, .. } = i {
                    *seen.entry(*bid).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(seen.len(), cp.n_branches());
        assert!(seen.values().all(|&c| c == 1));
    }

    #[test]
    fn branch_targets_are_patched() {
        let cp = compile_src("int main() { int x = 0; if (x) { x = 1; } return x; }");
        for f in &cp.funcs {
            for i in &f.code {
                match i {
                    Instr::Jump(t) => assert!((*t as usize) <= f.code.len()),
                    Instr::Branch {
                        on_true, on_false, ..
                    } => {
                        assert!((*on_true as usize) < f.code.len());
                        assert!((*on_false as usize) < f.code.len());
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn pointer_indexing_uses_element_stride() {
        let src = r#"
            struct pair { int a; int b; };
            struct pair table[4];
            int main() { return table[2].b; }
        "#;
        let cp = compile_src(src);
        assert!(cp.funcs[0].code.contains(&Instr::PtrAdd(2)));
        assert!(cp.funcs[0].code.contains(&Instr::Offset(1)));
    }

    #[test]
    fn char_stores_are_masked() {
        let cp = compile_src("int main() { char c; c = 300; return c; }");
        assert!(cp.funcs[0].code.contains(&Instr::StoreChar));
    }
}
