//! Token definitions for the mini-C lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal (decimal, hex `0x`, octal `0`, or char constant).
    Int(i64),
    /// String literal, with escapes already processed.
    Str(Vec<u8>),
    /// Identifier.
    Ident(String),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    KwSizeof,
    KwStatic,
    KwConst,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,

    // Operators.
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl Tok {
    /// Returns the keyword token for `s`, if `s` is a keyword.
    pub fn keyword(s: &str) -> Option<Tok> {
        Some(match s {
            "int" => Tok::KwInt,
            "char" => Tok::KwChar,
            "void" => Tok::KwVoid,
            "struct" => Tok::KwStruct,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "switch" => Tok::KwSwitch,
            "case" => Tok::KwCase,
            "default" => Tok::KwDefault,
            "sizeof" => Tok::KwSizeof,
            "static" => Tok::KwStatic,
            "const" => Tok::KwConst,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal spelling of punctuation/keyword tokens.
    fn symbol(&self) -> &'static str {
        match self {
            Tok::KwInt => "int",
            Tok::KwChar => "char",
            Tok::KwVoid => "void",
            Tok::KwStruct => "struct",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwWhile => "while",
            Tok::KwFor => "for",
            Tok::KwDo => "do",
            Tok::KwReturn => "return",
            Tok::KwBreak => "break",
            Tok::KwContinue => "continue",
            Tok::KwSwitch => "switch",
            Tok::KwCase => "case",
            Tok::KwDefault => "default",
            Tok::KwSizeof => "sizeof",
            Tok::KwStatic => "static",
            Tok::KwConst => "const",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::AmpAssign => "&=",
            Tok::PipeAssign => "|=",
            Tok::CaretAssign => "^=",
            Tok::ShlAssign => "<<=",
            Tok::ShrAssign => ">>=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Bang => "!",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Eq => "==",
            Tok::Ne => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Int(_) | Tok::Str(_) | Tok::Ident(_) | Tok::Eof => unreachable!(),
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token kind.
    pub tok: Tok,
    /// Where the token appeared.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Tok::keyword("while"), Some(Tok::KwWhile));
        assert_eq!(Tok::keyword("sizeof"), Some(Tok::KwSizeof));
        assert_eq!(Tok::keyword("banana"), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(Tok::Arrow.describe(), "`->`");
        assert_eq!(Tok::Int(42).describe(), "integer `42`");
        assert_eq!(Tok::Eof.describe(), "end of input");
    }
}
