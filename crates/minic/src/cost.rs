//! The deterministic cost model.
//!
//! The paper reports instrumentation overhead as `perf`-measured CPU time,
//! normalized to the uninstrumented run. We reproduce the same quantity
//! with a deterministic cost model: every VM operation is charged a fixed
//! number of *cost units* chosen to approximate the machine-code footprint
//! of a compiled C program (addressing and stack shuffling are free, as a
//! register allocator would make them; memory traffic and control flow
//! dominate). Branch logging charges [`BRANCH_LOG_COST`] units per logged
//! execution — the paper's measured "17 instructions per instrumented
//! branch" — plus a flush cost every [`LOG_BUFFER_BYTES`] of log.

use serde::{Deserialize, Serialize};

/// Cost of logging one branch execution (paper: 17 instructions).
pub const BRANCH_LOG_COST: u64 = 17;

/// Extra cost per branch execution logged through a per-location bit
/// cursor (load the location's cursor, bump it, store it back — the
/// cursor-table indirection the flat format does not pay). Charged on
/// top of [`BRANCH_LOG_COST`] and accounted separately so the
/// instrumentation-spend columns stay honest about what the log-format
/// extension costs.
pub const CURSOR_STEP_COST: u64 = 6;

/// Branch-log buffer size in bytes (paper: 4 KiB buffer flushed to disk).
pub const LOG_BUFFER_BYTES: usize = 4096;

/// Cost of flushing one full log buffer to "disk".
pub const LOG_FLUSH_COST: u64 = 2000;

/// Cost of logging one syscall result record.
pub const SYSCALL_LOG_COST: u64 = 25;

/// Per-operation base costs.
pub mod op_cost {
    /// Loads and stores hit memory.
    pub const MEM: u64 = 2;
    /// Arithmetic and logic.
    pub const ALU: u64 = 1;
    /// A conditional branch (compare + jump, partially mispredicted).
    pub const BRANCH: u64 = 4;
    /// An unconditional jump.
    pub const JUMP: u64 = 1;
    /// Call sequence (spill, jump, prologue).
    pub const CALL: u64 = 10;
    /// Return sequence.
    pub const RET: u64 = 5;
    /// Builtin dispatch (printf formatting etc. add more per byte).
    pub const BUILTIN: u64 = 10;
    /// Kernel crossing for a system call.
    pub const SYSCALL: u64 = 100;
    /// Heap allocation.
    pub const MALLOC: u64 = 30;
    /// Per output byte formatted by printf.
    pub const PRINTF_BYTE: u64 = 1;
    /// Pure stack/addressing operations (register-allocated away).
    pub const FREE_OP: u64 = 0;
}

/// Execution counters accumulated by a VM run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Meter {
    /// Total cost units (the model's "CPU time").
    pub units: u64,
    /// VM instructions executed.
    pub instrs: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// System calls performed.
    pub syscalls: u64,
    /// Cost units attributable to instrumentation (logging + flushes).
    pub instrumentation_units: u64,
    /// Bits of branch log produced.
    pub log_bits: u64,
    /// Log buffer flushes performed.
    pub log_flushes: u64,
    /// Bytes of syscall-result log produced.
    pub syscall_log_bytes: u64,
}

impl Meter {
    /// Charges base execution cost.
    pub fn charge(&mut self, units: u64) {
        self.units += units;
    }

    /// Charges cost attributable to instrumentation (also counted in
    /// `units`, so normalized CPU time includes it).
    pub fn charge_instrumentation(&mut self, units: u64) {
        self.units += units;
        self.instrumentation_units += units;
    }

    /// CPU time of this run relative to a baseline run, in percent
    /// (100.0 = identical cost).
    pub fn relative_cpu_percent(&self, baseline: &Meter) -> f64 {
        if baseline.units == 0 {
            return 100.0;
        }
        self.units as f64 * 100.0 / baseline.units as f64
    }

    /// Total branch-log bytes (bits rounded up), the storage metric of
    /// Figure 4(b).
    pub fn log_bytes(&self) -> u64 {
        self.log_bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_cpu_is_percent() {
        let base = Meter {
            units: 1000,
            ..Meter::default()
        };
        let run = Meter {
            units: 2070,
            ..Meter::default()
        };
        let pct = run.relative_cpu_percent(&base);
        assert!((pct - 207.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_defaults_to_hundred() {
        let base = Meter::default();
        let run = Meter {
            units: 5,
            ..Meter::default()
        };
        assert_eq!(run.relative_cpu_percent(&base), 100.0);
    }

    #[test]
    fn instrumentation_units_also_count_in_total() {
        let mut m = Meter::default();
        m.charge(10);
        m.charge_instrumentation(17);
        assert_eq!(m.units, 27);
        assert_eq!(m.instrumentation_units, 17);
    }

    #[test]
    fn log_bytes_round_up() {
        let m = Meter {
            log_bits: 9,
            ..Meter::default()
        };
        assert_eq!(m.log_bytes(), 2);
    }
}
