//! Name resolution, type checking, layout, and constant evaluation.
//!
//! Produces a [`Program`]: the AST plus the side tables the compiler and
//! the analyses need (expression types, identifier resolutions, call
//! targets, struct field offsets, frame slots, interned strings, and
//! flattened constant initializers for globals).

use crate::ast::*;
use crate::error::{Error, Result};
use crate::span::{Span, UnitId};
use crate::types::*;
use std::collections::HashMap;

/// Resolution of an identifier expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Res {
    /// A local variable or parameter at a frame offset (in cells).
    Local { offset: usize },
    /// A global variable.
    Global(GlobalId),
}

/// Resolution of a call expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// A user-defined function.
    Func(FuncId),
    /// A VM builtin (including syscalls).
    Builtin(Builtin),
}

/// One cell of a flattened global initializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitCell {
    /// A constant integer value.
    Int(i64),
    /// A pointer to an interned string (resolved to an address at load time).
    Str(StrId),
}

/// A checked global variable.
#[derive(Debug, Clone)]
pub struct GlobalInfo {
    /// Variable name.
    pub name: String,
    /// Resolved type.
    pub ty: Type,
    /// Size in cells.
    pub size: usize,
    /// Flattened initializer; shorter than `size` means trailing zeros.
    pub init: Vec<InitCell>,
    /// Defining unit.
    pub unit: UnitId,
}

/// A checked function signature plus frame layout.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameter names and (decayed) types; one cell each.
    pub params: Vec<(String, Type)>,
    /// Total frame size in cells (parameters + locals).
    pub frame_cells: usize,
    /// Index of the definition in `ast.funcs`.
    pub ast_index: usize,
    /// Defining unit.
    pub unit: UnitId,
}

/// Frame slot assigned to a local declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclSlot {
    /// Frame offset in cells.
    pub offset: usize,
    /// Resolved type of the local.
    pub ty: Type,
}

/// A fully checked program: AST plus all semantic side tables.
#[derive(Debug, Clone)]
pub struct Program {
    /// The underlying syntax tree (owns the branch table).
    pub ast: Ast,
    /// Laid-out structs, indexed by `StructId`.
    pub structs: Vec<StructLayout>,
    /// Checked globals, indexed by `GlobalId`.
    pub globals: Vec<GlobalInfo>,
    /// Checked functions, indexed by `FuncId`.
    pub funcs: Vec<FuncInfo>,
    /// Interned string literals, indexed by `StrId`.
    pub strings: Vec<Vec<u8>>,
    /// The entry point.
    pub main: FuncId,
    /// Expression types, indexed by `ExprId`.
    pub expr_ty: Vec<Type>,
    /// Identifier resolutions, indexed by `ExprId`.
    pub res: Vec<Option<Res>>,
    /// Call targets, indexed by `ExprId`.
    pub callee: Vec<Option<Callee>>,
    /// Struct field offsets (in cells), indexed by `ExprId` of `Field` exprs.
    pub field_offset: Vec<Option<usize>>,
    /// Interned ids for string literal expressions, indexed by `ExprId`.
    pub str_id: Vec<Option<StrId>>,
    /// Frame slots for local declarations, indexed by `StmtId`.
    pub decl_slot: Vec<Option<DeclSlot>>,
}

impl Program {
    /// Looks up a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The type of an expression.
    pub fn ty(&self, e: &Expr) -> &Type {
        &self.expr_ty[e.id.0 as usize]
    }

    /// Branch metadata by id.
    pub fn branch(&self, id: BranchId) -> &BranchInfo {
        &self.ast.branches[id.0 as usize]
    }
}

/// Checks a parsed AST, producing a [`Program`].
pub fn check(ast: Ast) -> Result<Program> {
    Checker::new(ast)?.run()
}

struct Checker {
    ast: Ast,
    structs: Vec<StructLayout>,
    struct_ids: HashMap<String, StructId>,
    globals: Vec<GlobalInfo>,
    global_ids: HashMap<String, GlobalId>,
    funcs: Vec<FuncInfo>,
    func_ids: HashMap<String, FuncId>,
    strings: Vec<Vec<u8>>,
    string_ids: HashMap<Vec<u8>, StrId>,
    expr_ty: Vec<Type>,
    res: Vec<Option<Res>>,
    callee: Vec<Option<Callee>>,
    field_offset: Vec<Option<usize>>,
    str_id: Vec<Option<StrId>>,
    decl_slot: Vec<Option<DeclSlot>>,
    // Per-function state.
    scopes: Vec<HashMap<String, (usize, Type)>>,
    frame_next: usize,
    cur_ret: Type,
    loop_depth: u32,
    switch_depth: u32,
}

impl Checker {
    fn new(ast: Ast) -> Result<Self> {
        let n_exprs = ast.n_exprs as usize;
        let n_stmts = ast.n_stmts as usize;
        Ok(Checker {
            ast,
            structs: Vec::new(),
            struct_ids: HashMap::new(),
            globals: Vec::new(),
            global_ids: HashMap::new(),
            funcs: Vec::new(),
            func_ids: HashMap::new(),
            strings: Vec::new(),
            string_ids: HashMap::new(),
            expr_ty: vec![Type::Void; n_exprs],
            res: vec![None; n_exprs],
            callee: vec![None; n_exprs],
            field_offset: vec![None; n_exprs],
            str_id: vec![None; n_exprs],
            decl_slot: vec![None; n_stmts],
            scopes: Vec::new(),
            frame_next: 0,
            cur_ret: Type::Void,
            loop_depth: 0,
            switch_depth: 0,
        })
    }

    fn run(mut self) -> Result<Program> {
        self.collect_structs()?;
        self.collect_globals()?;
        self.collect_funcs()?;
        let bodies: Vec<usize> = (0..self.ast.funcs.len()).collect();
        for i in bodies {
            self.check_func(i)?;
        }
        let main = self
            .func_ids
            .get("main")
            .copied()
            .ok_or_else(|| Error::check(Span::default(), "program has no `main` function"))?;
        let m = &self.funcs[main.0 as usize];
        if m.ret != Type::Int {
            return Err(Error::check(
                self.ast.funcs[m.ast_index].span,
                "`main` must return int",
            ));
        }
        if !(m.params.is_empty()
            || (m.params.len() == 2
                && m.params[0].1 == Type::Int
                && m.params[1].1 == Type::char_ptr().ptr_to()))
        {
            return Err(Error::check(
                self.ast.funcs[m.ast_index].span,
                "`main` must take () or (int argc, char **argv)",
            ));
        }
        Ok(Program {
            ast: self.ast,
            structs: self.structs,
            globals: self.globals,
            funcs: self.funcs,
            strings: self.strings,
            main,
            expr_ty: self.expr_ty,
            res: self.res,
            callee: self.callee,
            field_offset: self.field_offset,
            str_id: self.str_id,
            decl_slot: self.decl_slot,
        })
    }

    // ---- collection passes -------------------------------------------------

    fn collect_structs(&mut self) -> Result<()> {
        for (i, s) in self.ast.structs.iter().enumerate() {
            if self
                .struct_ids
                .insert(s.name.clone(), StructId(i as u32))
                .is_some()
            {
                return Err(Error::check(
                    s.span,
                    format!("duplicate struct `{}`", s.name),
                ));
            }
        }
        let defs = self.ast.structs.clone();
        for (i, s) in defs.iter().enumerate() {
            let mut fields = Vec::new();
            let mut offset = 0usize;
            for f in &s.fields {
                let ty = self.resolve_type(&f.ty, false)?;
                if let Type::Struct(sid) = strip_arrays(&ty) {
                    if sid.0 as usize >= i {
                        return Err(Error::check(
                            f.span,
                            format!(
                                "field `{}` embeds struct `{}` before it is defined",
                                f.name, defs[sid.0 as usize].name
                            ),
                        ));
                    }
                }
                let size = ty.size_cells(&self.structs);
                fields.push(FieldLayout {
                    name: f.name.clone(),
                    ty,
                    offset,
                });
                offset += size;
            }
            self.structs.push(StructLayout {
                name: s.name.clone(),
                fields,
                size_cells: offset,
            });
        }
        Ok(())
    }

    fn collect_globals(&mut self) -> Result<()> {
        for gi in 0..self.ast.globals.len() {
            let g = self.ast.globals[gi].clone();
            let mut ty = self.resolve_type(&g.ty, true)?;
            // Infer `[]` dimensions from the initializer.
            if let (Type::Array(elem, 0), Some(init)) = (&ty, &g.init) {
                let n = match init {
                    Init::List(items) => items.len(),
                    Init::Expr(e) => match &e.kind {
                        ExprKind::StrLit(s) => s.len() + 1,
                        _ => {
                            return Err(Error::check(
                                g.span,
                                "cannot infer array size from a scalar initializer",
                            ))
                        }
                    },
                };
                ty = Type::Array(elem.clone(), n);
            }
            if matches!(ty, Type::Array(_, 0)) {
                return Err(Error::check(g.span, "array size required"));
            }
            let size = ty.size_cells(&self.structs);
            if size == 0 {
                return Err(Error::check(g.span, "global has zero size"));
            }
            let mut cells = Vec::new();
            if let Some(init) = &g.init {
                self.flatten_init(&ty, init, g.span, &mut cells)?;
            }
            let id = GlobalId(self.globals.len() as u32);
            if self.global_ids.insert(g.name.clone(), id).is_some() {
                return Err(Error::check(
                    g.span,
                    format!("duplicate global `{}`", g.name),
                ));
            }
            self.globals.push(GlobalInfo {
                name: g.name.clone(),
                ty,
                size,
                init: cells,
                unit: g.unit,
            });
        }
        Ok(())
    }

    fn collect_funcs(&mut self) -> Result<()> {
        for (i, f) in self.ast.funcs.clone().iter().enumerate() {
            if Builtin::from_name(&f.name).is_some() {
                return Err(Error::check(
                    f.span,
                    format!("`{}` is a builtin and cannot be redefined", f.name),
                ));
            }
            if self.global_ids.contains_key(&f.name) {
                return Err(Error::check(
                    f.span,
                    format!("`{}` already defined as a global", f.name),
                ));
            }
            let ret = self.resolve_type(&f.ret, false)?;
            if !matches!(ret, Type::Void | Type::Int | Type::Char | Type::Ptr(_)) {
                return Err(Error::check(
                    f.span,
                    "functions may only return scalars or void",
                ));
            }
            let mut params = Vec::new();
            for p in &f.params {
                let ty = self.resolve_type(&p.ty, true)?.decayed();
                if !ty.is_scalar() {
                    return Err(Error::check(
                        p.span,
                        "parameters must be scalars (pass structs by pointer)",
                    ));
                }
                params.push((p.name.clone(), ty));
            }
            let id = FuncId(i as u32);
            if self.func_ids.insert(f.name.clone(), id).is_some() {
                return Err(Error::check(
                    f.span,
                    format!("duplicate function `{}`", f.name),
                ));
            }
            self.funcs.push(FuncInfo {
                name: f.name.clone(),
                ret,
                params,
                frame_cells: 0,
                ast_index: i,
                unit: f.unit,
            });
        }
        Ok(())
    }

    // ---- helpers ------------------------------------------------------------

    fn resolve_type(&self, te: &TypeExpr, allow_infer: bool) -> Result<Type> {
        let mut ty = match &te.base {
            BaseTy::Int => Type::Int,
            BaseTy::Char => Type::Char,
            BaseTy::Void => Type::Void,
            BaseTy::Struct(name) => Type::Struct(
                *self
                    .struct_ids
                    .get(name)
                    .ok_or_else(|| Error::check(te.span, format!("unknown struct `{name}`")))?,
            ),
        };
        for _ in 0..te.stars {
            ty = Type::Ptr(Box::new(ty));
        }
        if ty == Type::Void && te.dims.is_empty() && te.stars == 0 {
            // Plain `void` is only valid as a return type; callers decide.
        }
        for dim in te.dims.iter().rev() {
            let n = match dim {
                Some(n) => *n,
                None if allow_infer => 0,
                None => return Err(Error::check(te.span, "array size required")),
            };
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn intern(&mut self, s: &[u8]) -> StrId {
        if let Some(id) = self.string_ids.get(s) {
            return *id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_vec());
        self.string_ids.insert(s.to_vec(), id);
        id
    }

    fn const_eval(&mut self, e: &Expr) -> Result<InitCell> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(InitCell::Int(*v)),
            ExprKind::StrLit(s) => {
                let id = self.intern(s);
                self.str_id[e.id.0 as usize] = Some(id);
                Ok(InitCell::Str(id))
            }
            ExprKind::Unary { op, expr } => {
                let v = match self.const_eval(expr)? {
                    InitCell::Int(v) => v,
                    InitCell::Str(_) => {
                        return Err(Error::check(e.span, "cannot apply operator to string"))
                    }
                };
                Ok(InitCell::Int(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                }))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, b) = match (self.const_eval(lhs)?, self.const_eval(rhs)?) {
                    (InitCell::Int(a), InitCell::Int(b)) => (a, b),
                    _ => return Err(Error::check(e.span, "string in constant arithmetic")),
                };
                crate::eval::binop(*op, a, b)
                    .map(InitCell::Int)
                    .map_err(|m| Error::check(e.span, m))
            }
            ExprKind::Sizeof(te) => {
                let ty = self.resolve_type(te, false)?;
                Ok(InitCell::Int(ty.size_cells(&self.structs) as i64))
            }
            _ => Err(Error::check(
                e.span,
                "global initializers must be constant expressions",
            )),
        }
    }

    fn flatten_init(
        &mut self,
        ty: &Type,
        init: &Init,
        span: Span,
        out: &mut Vec<InitCell>,
    ) -> Result<()> {
        match (ty, init) {
            // char array initialized from a string literal.
            (Type::Array(elem, n), Init::Expr(e))
                if **elem == Type::Char && matches!(e.kind, ExprKind::StrLit(_)) =>
            {
                let s = match &e.kind {
                    ExprKind::StrLit(s) => s.clone(),
                    _ => unreachable!(),
                };
                if s.len() + 1 > *n {
                    return Err(Error::check(span, "string initializer longer than array"));
                }
                for b in &s {
                    out.push(InitCell::Int(*b as i64));
                }
                out.push(InitCell::Int(0));
                for _ in s.len() + 1..*n {
                    out.push(InitCell::Int(0));
                }
                Ok(())
            }
            (t, Init::Expr(e)) if t.is_scalar() => {
                let cell = self.const_eval(e)?;
                if matches!(cell, InitCell::Str(_)) && t != &Type::char_ptr() {
                    return Err(Error::check(span, "string initializer needs char* type"));
                }
                out.push(cell);
                Ok(())
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() > *n {
                    return Err(Error::check(span, "too many initializers for array"));
                }
                let elem_size = elem.size_cells(&self.structs);
                for item in items {
                    self.flatten_init(elem, item, span, out)?;
                }
                for _ in items.len() * elem_size..*n * elem_size {
                    out.push(InitCell::Int(0));
                }
                Ok(())
            }
            (Type::Struct(sid), Init::List(items)) => {
                let layout = self.structs[sid.0 as usize].clone();
                if items.len() > layout.fields.len() {
                    return Err(Error::check(span, "too many initializers for struct"));
                }
                for (f, item) in layout.fields.iter().zip(items) {
                    self.flatten_init(&f.ty, item, span, out)?;
                }
                let filled: usize = layout
                    .fields
                    .iter()
                    .take(items.len())
                    .map(|f| f.ty.size_cells(&self.structs))
                    .sum();
                for _ in filled..layout.size_cells {
                    out.push(InitCell::Int(0));
                }
                Ok(())
            }
            _ => Err(Error::check(span, "initializer shape does not match type")),
        }
    }

    // ---- function body checking ---------------------------------------------

    fn check_func(&mut self, idx: usize) -> Result<()> {
        let def = self.ast.funcs[idx].clone();
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.frame_next = 0;
        self.cur_ret = self.funcs[idx].ret.clone();
        self.loop_depth = 0;
        self.switch_depth = 0;
        let params = self.funcs[idx].params.clone();
        for (name, ty) in &params {
            let off = self.frame_next;
            self.frame_next += 1;
            if self
                .scopes
                .last_mut()
                .expect("scope stack is never empty")
                .insert(name.clone(), (off, ty.clone()))
                .is_some()
            {
                return Err(Error::check(
                    def.span,
                    format!("duplicate parameter `{name}`"),
                ));
            }
        }
        self.check_block(&def.body)?;
        self.funcs[idx].frame_cells = self.frame_next;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<(usize, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn check_block(&mut self, b: &Block) -> Result<()> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<()> {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let ty = self.resolve_type(ty, false)?;
                if !ty.is_scalar() && !matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    return Err(Error::check(s.span, "local must have a sized type"));
                }
                let size = ty.size_cells(&self.structs);
                if size == 0 {
                    return Err(Error::check(s.span, "local has zero size"));
                }
                if let Some(e) = init {
                    if !ty.is_scalar() {
                        return Err(Error::check(
                            s.span,
                            "only scalar locals may have initializers",
                        ));
                    }
                    let rhs = self.check_expr(e)?;
                    self.check_assignable(&ty, &rhs, e.span)?;
                }
                let offset = self.frame_next;
                self.frame_next += size;
                self.decl_slot[s.id.0 as usize] = Some(DeclSlot {
                    offset,
                    ty: ty.clone(),
                });
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), (offset, ty));
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
                ..
            } => {
                let t = self.check_expr(cond)?;
                self.check_scalar(&t, cond.span)?;
                self.check_block(then_b)?;
                if let Some(b) = else_b {
                    self.check_block(b)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body, .. } => {
                let t = self.check_expr(cond)?;
                self.check_scalar(&t, cond.span)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                let t = self.check_expr(cond)?;
                self.check_scalar(&t, cond.span)?;
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                if let Some(c) = cond {
                    let t = self.check_expr(c)?;
                    self.check_scalar(&t, c.span)?;
                }
                if let Some(st) = step {
                    self.check_expr(st)?;
                }
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let t = self.check_expr(scrutinee)?;
                if !t.is_integral() {
                    return Err(Error::check(
                        scrutinee.span,
                        format!("switch scrutinee must be integral, got {t}"),
                    ));
                }
                let mut seen = std::collections::HashSet::new();
                self.switch_depth += 1;
                for c in cases {
                    if !seen.insert(c.value) {
                        return Err(Error::check(
                            c.span,
                            format!("duplicate case value {}", c.value),
                        ));
                    }
                    self.scopes.push(HashMap::new());
                    for st in &c.body {
                        self.check_stmt(st)?;
                    }
                    self.scopes.pop();
                }
                if let Some(d) = default {
                    self.scopes.push(HashMap::new());
                    for st in d {
                        self.check_stmt(st)?;
                    }
                    self.scopes.pop();
                }
                self.switch_depth -= 1;
                Ok(())
            }
            StmtKind::Return(value) => match (&self.cur_ret.clone(), value) {
                (Type::Void, None) => Ok(()),
                (Type::Void, Some(e)) => {
                    Err(Error::check(e.span, "void function returning a value"))
                }
                (t, Some(e)) => {
                    let vt = self.check_expr(e)?;
                    self.check_assignable(t, &vt, e.span)
                }
                (_, None) => Err(Error::check(
                    s.span,
                    "non-void function must return a value",
                )),
            },
            StmtKind::Break => {
                if self.loop_depth == 0 && self.switch_depth == 0 {
                    return Err(Error::check(s.span, "break outside loop or switch"));
                }
                Ok(())
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(Error::check(s.span, "continue outside loop"));
                }
                Ok(())
            }
            StmtKind::Block(b) => self.check_block(b),
        }
    }

    fn check_scalar(&self, t: &Type, span: Span) -> Result<()> {
        if t.decayed().is_scalar() {
            Ok(())
        } else {
            Err(Error::check(
                span,
                format!("expected a scalar value, got {t}"),
            ))
        }
    }

    /// Lenient C-style assignability: integrals interconvert, pointers
    /// interconvert, and integral<->pointer is allowed (NULL, fd tricks).
    fn check_assignable(&self, lhs: &Type, rhs: &Type, span: Span) -> Result<()> {
        let l = lhs.decayed();
        let r = rhs.decayed();
        if l.is_scalar() && r.is_scalar() {
            Ok(())
        } else {
            Err(Error::check(span, format!("cannot assign {r} to {l}")))
        }
    }

    fn is_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(_) => self.res[e.id.0 as usize].is_some(),
            ExprKind::Deref(_) | ExprKind::Index { .. } | ExprKind::Field { .. } => true,
            _ => false,
        }
    }

    fn set_ty(&mut self, e: &Expr, t: Type) -> Type {
        self.expr_ty[e.id.0 as usize] = t.clone();
        t
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type> {
        let t = self.infer_expr(e)?;
        Ok(self.set_ty(e, t))
    }

    fn infer_expr(&mut self, e: &Expr) -> Result<Type> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::StrLit(s) => {
                let id = self.intern(s);
                self.str_id[e.id.0 as usize] = Some(id);
                Ok(Type::char_ptr())
            }
            ExprKind::Ident(name) => {
                if let Some((offset, ty)) = self.lookup(name) {
                    self.res[e.id.0 as usize] = Some(Res::Local { offset });
                    Ok(ty)
                } else if let Some(gid) = self.global_ids.get(name) {
                    self.res[e.id.0 as usize] = Some(Res::Global(*gid));
                    Ok(self.globals[gid.0 as usize].ty.clone())
                } else if self.func_ids.contains_key(name) {
                    Err(Error::check(
                        e.span,
                        format!("function `{name}` used as a value (function pointers are not supported)"),
                    ))
                } else {
                    Err(Error::check(e.span, format!("unknown identifier `{name}`")))
                }
            }
            ExprKind::Unary { op, expr } => {
                let t = self.check_expr(expr)?;
                match op {
                    UnOp::Not => {
                        self.check_scalar(&t, expr.span)?;
                        Ok(Type::Int)
                    }
                    UnOp::Neg | UnOp::BitNot => {
                        if !t.is_integral() {
                            return Err(Error::check(
                                expr.span,
                                format!("arithmetic on non-integral type {t}"),
                            ));
                        }
                        Ok(Type::Int)
                    }
                }
            }
            ExprKind::Deref(inner) => {
                let t = self.check_expr(inner)?.decayed();
                match t.pointee() {
                    Some(Type::Void) => {
                        Err(Error::check(e.span, "cannot dereference void pointer"))
                    }
                    Some(p) => Ok(p.clone()),
                    None => Err(Error::check(
                        inner.span,
                        format!("cannot dereference non-pointer type {t}"),
                    )),
                }
            }
            ExprKind::AddrOf(inner) => {
                let t = self.check_expr(inner)?;
                if !self.is_lvalue(inner) {
                    return Err(Error::check(inner.span, "cannot take address of rvalue"));
                }
                // `&arr` yields a pointer to the first element, like `&arr[0]`.
                match t {
                    Type::Array(elem, _) => Ok(Type::Ptr(elem)),
                    other => Ok(Type::Ptr(Box::new(other))),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?.decayed();
                let rt = self.check_expr(rhs)?.decayed();
                self.binary_type(*op, &lt, &rt, e.span)
            }
            ExprKind::Logical { lhs, rhs, .. } => {
                let lt = self.check_expr(lhs)?;
                self.check_scalar(&lt, lhs.span)?;
                let rt = self.check_expr(rhs)?;
                self.check_scalar(&rt, rhs.span)?;
                Ok(Type::Int)
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                let ct = self.check_expr(cond)?;
                self.check_scalar(&ct, cond.span)?;
                let tt = self.check_expr(then_e)?.decayed();
                let et = self.check_expr(else_e)?.decayed();
                if tt == et {
                    Ok(tt)
                } else if tt.is_integral() && et.is_integral() {
                    Ok(Type::Int)
                } else if matches!(tt, Type::Ptr(_)) && et.is_integral() {
                    Ok(tt)
                } else if matches!(et, Type::Ptr(_)) && tt.is_integral() {
                    Ok(et)
                } else if matches!(tt, Type::Ptr(_)) && matches!(et, Type::Ptr(_)) {
                    Ok(tt)
                } else {
                    Err(Error::check(
                        e.span,
                        format!("incompatible ternary arms: {tt} vs {et}"),
                    ))
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                if !self.is_lvalue(lhs) {
                    return Err(Error::check(lhs.span, "assignment target is not an lvalue"));
                }
                if matches!(lt, Type::Array(..) | Type::Struct(_)) {
                    return Err(Error::check(
                        lhs.span,
                        "aggregate assignment is not supported (copy fields or use memcpy)",
                    ));
                }
                let rt = self.check_expr(rhs)?;
                if let Some(op) = op {
                    let folded = self.binary_type(*op, &lt.decayed(), &rt.decayed(), e.span)?;
                    self.check_assignable(&lt, &folded, e.span)?;
                } else {
                    self.check_assignable(&lt, &rt, e.span)?;
                }
                Ok(lt)
            }
            ExprKind::IncDec { expr, .. } => {
                let t = self.check_expr(expr)?;
                if !self.is_lvalue(expr) {
                    return Err(Error::check(expr.span, "++/-- target is not an lvalue"));
                }
                if !(t.is_integral() || matches!(t, Type::Ptr(_))) {
                    return Err(Error::check(
                        expr.span,
                        format!("cannot increment value of type {t}"),
                    ));
                }
                Ok(t)
            }
            ExprKind::Call { callee, args } => self.check_call(e, callee, args),
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(index)?;
                if !it.is_integral() {
                    return Err(Error::check(index.span, "array index must be integral"));
                }
                match bt {
                    Type::Array(elem, _) => Ok(*elem),
                    Type::Ptr(p) if *p != Type::Void => Ok(*p),
                    other => Err(Error::check(
                        base.span,
                        format!("cannot index value of type {other}"),
                    )),
                }
            }
            ExprKind::Field { base, field, arrow } => {
                let bt = self.check_expr(base)?;
                let sid = match (&bt, arrow) {
                    (Type::Struct(sid), false) => *sid,
                    (Type::Ptr(inner), true) => match inner.as_ref() {
                        Type::Struct(sid) => *sid,
                        other => {
                            return Err(Error::check(
                                base.span,
                                format!("`->` on pointer to non-struct {other}"),
                            ))
                        }
                    },
                    (other, false) => {
                        return Err(Error::check(
                            base.span,
                            format!("`.` on non-struct type {other}"),
                        ))
                    }
                    (other, true) => {
                        return Err(Error::check(
                            base.span,
                            format!("`->` on non-pointer type {other}"),
                        ))
                    }
                };
                let layout = &self.structs[sid.0 as usize];
                let f = layout.field(field).ok_or_else(|| {
                    Error::check(
                        e.span,
                        format!("struct `{}` has no field `{field}`", layout.name),
                    )
                })?;
                self.field_offset[e.id.0 as usize] = Some(f.offset);
                Ok(f.ty.clone())
            }
            ExprKind::Sizeof(te) => {
                let _ = self.resolve_type(te, false)?;
                Ok(Type::Int)
            }
            ExprKind::Cast { ty, expr } => {
                let _ = self.check_expr(expr)?;
                let to = self.resolve_type(ty, false)?;
                if !to.is_scalar() {
                    return Err(Error::check(e.span, "casts may only target scalar types"));
                }
                Ok(to)
            }
        }
    }

    fn binary_type(&self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> Result<Type> {
        use BinOp::*;
        match op {
            Add => match (lt, rt) {
                (Type::Ptr(p), r) if r.is_integral() => Ok(Type::Ptr(p.clone())),
                (l, Type::Ptr(p)) if l.is_integral() => Ok(Type::Ptr(p.clone())),
                (l, r) if l.is_integral() && r.is_integral() => Ok(Type::Int),
                _ => Err(Error::check(span, format!("cannot add {lt} and {rt}"))),
            },
            Sub => match (lt, rt) {
                (Type::Ptr(p), r) if r.is_integral() => Ok(Type::Ptr(p.clone())),
                (Type::Ptr(a), Type::Ptr(b)) if a == b => Ok(Type::Int),
                (l, r) if l.is_integral() && r.is_integral() => Ok(Type::Int),
                _ => Err(Error::check(
                    span,
                    format!("cannot subtract {rt} from {lt}"),
                )),
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                if lt.is_scalar() && rt.is_scalar() {
                    Ok(Type::Int)
                } else {
                    Err(Error::check(span, format!("cannot compare {lt} and {rt}")))
                }
            }
            Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                if lt.is_integral() && rt.is_integral() {
                    Ok(Type::Int)
                } else {
                    Err(Error::check(
                        span,
                        format!("integer operation on {lt} and {rt}"),
                    ))
                }
            }
        }
    }

    fn check_call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> Result<Type> {
        let mut arg_tys = Vec::new();
        for a in args {
            let t = self.check_expr(a)?.decayed();
            if !t.is_scalar() {
                return Err(Error::check(
                    a.span,
                    format!("argument must be a scalar, got {t}"),
                ));
            }
            arg_tys.push(t);
        }
        if let Some(fid) = self.func_ids.get(callee).copied() {
            let f = &self.funcs[fid.0 as usize];
            if f.params.len() != args.len() {
                return Err(Error::check(
                    e.span,
                    format!(
                        "`{callee}` expects {} arguments, got {}",
                        f.params.len(),
                        args.len()
                    ),
                ));
            }
            self.callee[e.id.0 as usize] = Some(Callee::Func(fid));
            return Ok(f.ret.clone());
        }
        if let Some(b) = Builtin::from_name(callee) {
            match b.arity() {
                Some(n) if n != args.len() => {
                    return Err(Error::check(
                        e.span,
                        format!("`{callee}` expects {n} arguments, got {}", args.len()),
                    ));
                }
                None if args.is_empty() => {
                    return Err(Error::check(e.span, "printf needs a format string"));
                }
                _ => {}
            }
            self.callee[e.id.0 as usize] = Some(Callee::Builtin(b));
            let ret = match b {
                Builtin::Malloc => Type::Ptr(Box::new(Type::Void)),
                Builtin::Free | Builtin::Exit | Builtin::Abort | Builtin::Assert => Type::Void,
                Builtin::Printf | Builtin::Sys(_) => Type::Int,
            };
            return Ok(ret);
        }
        Err(Error::check(e.span, format!("unknown function `{callee}`")))
    }
}

fn strip_arrays(t: &Type) -> Type {
    match t {
        Type::Array(inner, _) => strip_arrays(inner),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Program> {
        check(parse(src)?)
    }

    #[test]
    fn checks_minimal_program() {
        let p = check_src("int main() { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.main, FuncId(0));
    }

    #[test]
    fn rejects_missing_main() {
        assert!(check_src("int f() { return 0; }").is_err());
    }

    #[test]
    fn rejects_bad_main_signature() {
        assert!(check_src("void main() { }").is_err());
        assert!(check_src("int main(int x) { return x; }").is_err());
    }

    #[test]
    fn accepts_argc_argv_main() {
        let p = check_src("int main(int argc, char **argv) { return argc; }").unwrap();
        assert_eq!(p.funcs[0].params.len(), 2);
    }

    #[test]
    fn resolves_locals_and_globals() {
        let src = r#"
            int counter = 7;
            int main() { int x = counter; return x; }
        "#;
        let p = check_src(src).unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].init, vec![InitCell::Int(7)]);
    }

    #[test]
    fn frame_layout_assigns_distinct_offsets() {
        let src = r#"
            int main() {
                int a = 1;
                char buf[4];
                int b = 2;
                return a + b + buf[0];
            }
        "#;
        let p = check_src(src).unwrap();
        let slots: Vec<_> = p.decl_slot.iter().flatten().collect();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].offset, 0);
        assert_eq!(slots[1].offset, 1); // buf occupies 4 cells
        assert_eq!(slots[2].offset, 5);
        assert_eq!(p.funcs[0].frame_cells, 6);
    }

    #[test]
    fn struct_layout_offsets() {
        let src = r#"
            struct conn { int fd; char buf[8]; int used; };
            int main() { struct conn c; c.used = 1; return c.used; }
        "#;
        let p = check_src(src).unwrap();
        let s = &p.structs[0];
        assert_eq!(s.size_cells, 10);
        assert_eq!(s.field("used").unwrap().offset, 9);
    }

    #[test]
    fn string_literals_are_interned_once() {
        let src = r#"
            int main() {
                char *a = "hi";
                char *b = "hi";
                char *c = "other";
                return a == b;
            }
        "#;
        let p = check_src(src).unwrap();
        assert_eq!(p.strings.len(), 2);
    }

    #[test]
    fn global_array_inference_from_string() {
        let p = check_src("char msg[] = \"abc\";\nint main() { return msg[0]; }").unwrap();
        assert_eq!(p.globals[0].size, 4);
        assert_eq!(p.globals[0].init.len(), 4);
    }

    #[test]
    fn rejects_unknown_identifier() {
        assert!(check_src("int main() { return nope; }").is_err());
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(check_src("int main() { return nope(); }").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(check_src("int f(int a) { return a; } int main() { return f(); }").is_err());
        assert!(check_src("int main() { return sys_close(1, 2); }").is_err());
    }

    #[test]
    fn rejects_redefining_builtin() {
        assert!(check_src("int printf(char *f) { return 0; } int main() { return 0; }").is_err());
    }

    #[test]
    fn rejects_struct_assignment() {
        let src = r#"
            struct p { int x; };
            int main() { struct p a; struct p b; a = b; return 0; }
        "#;
        assert!(check_src(src).is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(check_src("int main() { break; return 0; }").is_err());
    }

    #[test]
    fn rejects_deref_of_int() {
        assert!(check_src("int main() { int x; return *x; }").is_err());
    }

    #[test]
    fn rejects_void_pointer_deref() {
        assert!(check_src("int main() { void *p; return *p; }").is_err());
    }

    #[test]
    fn pointer_arithmetic_types() {
        let src = r#"
            int main() {
                char buf[8];
                char *p = buf;
                p = p + 3;
                int d = p - buf;
                return d;
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn rejects_address_of_rvalue() {
        assert!(check_src("int main() { int *p = &(1 + 2); return 0; }").is_err());
    }

    #[test]
    fn rejects_duplicate_case() {
        let src = r#"
            int main() {
                switch (1) { case 1: return 1; case 1: return 2; }
                return 0;
            }
        "#;
        assert!(check_src(src).is_err());
    }

    #[test]
    fn const_eval_arithmetic() {
        let p = check_src("int x = 3 * 4 + 1;\nint main() { return x; }").unwrap();
        assert_eq!(p.globals[0].init, vec![InitCell::Int(13)]);
    }

    #[test]
    fn array_initializer_padding() {
        let p = check_src("int t[4] = {1, 2};\nint main() { return t[3]; }").unwrap();
        assert_eq!(
            p.globals[0].init,
            vec![
                InitCell::Int(1),
                InitCell::Int(2),
                InitCell::Int(0),
                InitCell::Int(0)
            ]
        );
    }

    #[test]
    fn rejects_forward_embedded_struct() {
        let src = r#"
            struct a { struct b inner; };
            struct b { int x; };
            int main() { return 0; }
        "#;
        assert!(check_src(src).is_err());
    }

    #[test]
    fn allows_struct_pointer_fields() {
        let src = r#"
            struct node { int v; struct node *next; };
            int main() { struct node n; n.next = 0; return n.v; }
        "#;
        assert!(check_src(src).is_ok());
    }
}
