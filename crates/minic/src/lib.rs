//! `minic` — a mini-C language substrate with an instrumentable VM.
//!
//! This crate is the reproduction's replacement for *CIL + compiled C*:
//! a C-like language whose programs carry stable, source-level **branch
//! locations** ([`ast::BranchId`]) through parsing, compilation and
//! execution. One bytecode VM executes four different ways depending on
//! the [`vm::Host`] plugged in:
//!
//! - plain concrete execution (baseline timing),
//! - instrumented execution (branch-bit logging, the paper's §2.3),
//! - concolic execution (dynamic analysis, §2.1),
//! - guided replay (§3).
//!
//! # Example
//!
//! ```
//! use minic::{build, vm::{NullHost, RunOutcome, Vm}};
//!
//! let cp = build(&[("main", "int main() { return 40 + 2; }")]).unwrap();
//! let mut vm = Vm::new(&cp, NullHost::default());
//! assert_eq!(vm.run(&[]), RunOutcome::Exited(42));
//! ```

pub mod ast;
pub mod bytecode;
pub mod cfg;
pub mod check;
pub mod cost;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod memory;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod types;
pub mod vm;

pub use ast::{Ast, BranchId, BranchInfo, BranchKind};
pub use bytecode::{CompiledProgram, Instr};
pub use check::{check, Program};
pub use error::{Error, Result};
pub use parser::{parse, parse_units};
pub use span::{Loc, Span, UnitId};
pub use types::{Builtin, FuncId, GlobalId, StrId, Sys, Type};
pub use vm::{CrashInfo, CrashKind, Host, HostStop, NullHost, RunOutcome, Vm};

/// Parses, checks and compiles a multi-unit program in one step.
///
/// Units are `(name, source)` pairs; ids are assigned across units in
/// order, deterministically.
pub fn build(units: &[(&str, &str)]) -> Result<CompiledProgram> {
    bytecode::compile(check::check(parser::parse_units(units)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_pipeline_works() {
        let cp = build(&[("main", "int main() { if (1) { return 1; } return 0; }")]).unwrap();
        assert_eq!(cp.n_branches(), 1);
    }

    #[test]
    fn build_reports_errors_from_every_phase() {
        assert!(build(&[("main", "int main() { return @; }")]).is_err()); // lex
        assert!(build(&[("main", "int main() { if }")]).is_err()); // parse
        assert!(build(&[("main", "int main() { return nope; }")]).is_err()); // check
    }
}
