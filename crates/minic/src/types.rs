//! Resolved types, struct layouts, and the builtin-function table.
//!
//! The abstract machine is cell-based: every scalar (int, char, pointer)
//! occupies one 64-bit cell; arrays and structs are contiguous cell runs.
//! `sizeof` is measured in cells. Pointers are packed `(object, offset)`
//! pairs stored in a cell (see [`crate::memory`]).

use std::fmt;

/// Identifier of a struct definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructId(pub u32);

/// Identifier of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifier of a user-defined function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifier of an interned string literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrId(pub u32);

/// A fully resolved type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a return type or behind a pointer.
    Void,
    /// 64-bit signed integer.
    Int,
    /// One byte, widened to `i64` on load, masked on store.
    Char,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A named struct.
    Struct(StructId),
}

impl Type {
    /// Pointer-to-char, the type of string literals.
    pub fn char_ptr() -> Type {
        Type::Ptr(Box::new(Type::Char))
    }

    /// Pointer to this type.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// True for types that fit in one cell and can be computed with.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// True for integer-like scalars.
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// The element type of an array.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay; other types unchanged.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            other => other.clone(),
        }
    }

    /// Size in cells, given the struct layout table.
    pub fn size_cells(&self, structs: &[StructLayout]) -> usize {
        match self {
            Type::Void => 0,
            Type::Int | Type::Char | Type::Ptr(_) => 1,
            Type::Array(t, n) => t.size_cells(structs) * n,
            Type::Struct(id) => structs[id.0 as usize].size_cells,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(id) => write!(f, "struct#{}", id.0),
        }
    }
}

/// A laid-out struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Offset from the start of the struct, in cells.
    pub offset: usize,
}

/// A laid-out struct.
#[derive(Debug, Clone, PartialEq)]
pub struct StructLayout {
    /// Struct tag name.
    pub name: String,
    /// Fields in declaration order with computed offsets.
    pub fields: Vec<FieldLayout>,
    /// Total size in cells.
    pub size_cells: usize,
}

impl StructLayout {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// System calls exposed to mini-C programs.
///
/// These mirror the slice of POSIX the paper's benchmarks exercise. All of
/// them are dispatched through the VM's host, so the kernel simulation, the
/// logging layer and the replay models each see every call.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Sys {
    /// `int sys_open(char *path, int flags)` — flags: 0 read, 1 write/create.
    Open,
    /// `int sys_close(int fd)`.
    Close,
    /// `int sys_read(int fd, char *buf, int n)` — returns bytes read, 0 EOF, -1 error.
    Read,
    /// `int sys_write(int fd, char *buf, int n)`.
    Write,
    /// `int sys_socket()` — creates a passive socket.
    Socket,
    /// `int sys_bind(int fd, int port)`.
    Bind,
    /// `int sys_listen(int fd, int backlog)`.
    Listen,
    /// `int sys_accept(int fd)` — returns a connection fd or -1.
    Accept,
    /// `int sys_select(int *fds, int n, int *ready)` — fills `ready[i]` with
    /// 0/1 readiness flags, returns the count of ready descriptors.
    Select,
    /// `int sys_mkdir(char *path, int mode)`.
    Mkdir,
    /// `int sys_mknod(char *path, int mode, int dev)`.
    Mknod,
    /// `int sys_mkfifo(char *path, int mode)`.
    Mkfifo,
    /// `int sys_stat(char *path)` — 0 if the path exists, -1 otherwise.
    Stat,
    /// `int sys_unlink(char *path)`.
    Unlink,
    /// `int sys_getuid()`.
    Getuid,
    /// `int sys_time()` — a non-deterministic clock.
    Time,
    /// `int sys_rand()` — a non-deterministic random value.
    Rand,
}

impl Sys {
    /// All syscalls, for iteration in tables and tests.
    pub const ALL: [Sys; 17] = [
        Sys::Open,
        Sys::Close,
        Sys::Read,
        Sys::Write,
        Sys::Socket,
        Sys::Bind,
        Sys::Listen,
        Sys::Accept,
        Sys::Select,
        Sys::Mkdir,
        Sys::Mknod,
        Sys::Mkfifo,
        Sys::Stat,
        Sys::Unlink,
        Sys::Getuid,
        Sys::Time,
        Sys::Rand,
    ];

    /// The mini-C identifier of the syscall builtin.
    pub fn name(self) -> &'static str {
        match self {
            Sys::Open => "sys_open",
            Sys::Close => "sys_close",
            Sys::Read => "sys_read",
            Sys::Write => "sys_write",
            Sys::Socket => "sys_socket",
            Sys::Bind => "sys_bind",
            Sys::Listen => "sys_listen",
            Sys::Accept => "sys_accept",
            Sys::Select => "sys_select",
            Sys::Mkdir => "sys_mkdir",
            Sys::Mknod => "sys_mknod",
            Sys::Mkfifo => "sys_mkfifo",
            Sys::Stat => "sys_stat",
            Sys::Unlink => "sys_unlink",
            Sys::Getuid => "sys_getuid",
            Sys::Time => "sys_time",
            Sys::Rand => "sys_rand",
        }
    }

    /// Number of arguments the syscall takes.
    pub fn arity(self) -> usize {
        match self {
            Sys::Socket | Sys::Getuid | Sys::Time | Sys::Rand => 0,
            Sys::Close | Sys::Accept | Sys::Stat | Sys::Unlink => 1,
            Sys::Open | Sys::Bind | Sys::Listen | Sys::Mkdir | Sys::Mkfifo => 2,
            Sys::Read | Sys::Write | Sys::Select | Sys::Mknod => 3,
        }
    }

    /// True if the call returns user input or non-determinism, i.e. its
    /// results must be treated as symbolic by the analyses (the paper's
    /// "functions that return input").
    pub fn returns_input(self) -> bool {
        matches!(
            self,
            Sys::Read | Sys::Select | Sys::Accept | Sys::Time | Sys::Rand
        )
    }

    /// Resolves a mini-C identifier to a syscall.
    pub fn from_name(name: &str) -> Option<Sys> {
        Sys::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Non-syscall builtins interpreted directly by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `int printf(char *fmt, ...)` — returns chars written.
    Printf,
    /// `void *malloc(int cells)`.
    Malloc,
    /// `void free(void *p)`.
    Free,
    /// `void exit(int code)`.
    Exit,
    /// `void abort()` — crashes the program.
    Abort,
    /// `void assert(int cond)` — crashes when `cond == 0`.
    Assert,
    /// A system call.
    Sys(Sys),
}

impl Builtin {
    /// Resolves a mini-C identifier to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "printf" => Builtin::Printf,
            "malloc" => Builtin::Malloc,
            "free" => Builtin::Free,
            "exit" => Builtin::Exit,
            "abort" => Builtin::Abort,
            "assert" => Builtin::Assert,
            _ => Builtin::Sys(Sys::from_name(name)?),
        })
    }

    /// Expected argument count; `None` means variadic.
    pub fn arity(self) -> Option<usize> {
        Some(match self {
            Builtin::Printf => return None,
            Builtin::Malloc => 1,
            Builtin::Free => 1,
            Builtin::Exit => 1,
            Builtin::Abort => 0,
            Builtin::Assert => 1,
            Builtin::Sys(s) => s.arity(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_in_cells() {
        let structs = vec![StructLayout {
            name: "pair".into(),
            fields: vec![
                FieldLayout {
                    name: "a".into(),
                    ty: Type::Int,
                    offset: 0,
                },
                FieldLayout {
                    name: "b".into(),
                    ty: Type::Array(Box::new(Type::Char), 8),
                    offset: 1,
                },
            ],
            size_cells: 9,
        }];
        assert_eq!(Type::Int.size_cells(&structs), 1);
        assert_eq!(Type::char_ptr().size_cells(&structs), 1);
        assert_eq!(
            Type::Array(Box::new(Type::Struct(StructId(0))), 3).size_cells(&structs),
            27
        );
    }

    #[test]
    fn decay_turns_arrays_into_pointers() {
        let a = Type::Array(Box::new(Type::Char), 16);
        assert_eq!(a.decayed(), Type::char_ptr());
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn builtin_resolution() {
        assert_eq!(Builtin::from_name("printf"), Some(Builtin::Printf));
        assert_eq!(
            Builtin::from_name("sys_read"),
            Some(Builtin::Sys(Sys::Read))
        );
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn every_syscall_roundtrips_by_name() {
        for s in Sys::ALL {
            assert_eq!(Sys::from_name(s.name()), Some(s));
            assert!(s.arity() <= 3);
        }
    }

    #[test]
    fn input_returning_syscalls() {
        assert!(Sys::Read.returns_input());
        assert!(!Sys::Write.returns_input());
        assert!(Sys::Rand.returns_input());
    }
}
