//! Source positions and spans for diagnostics, branch locations and crash sites.

use std::fmt;

/// A position in a source unit: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a new position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Identifier of a source unit (e.g. the application file vs. the library file).
///
/// Units let the profiler attribute branches to "application" vs. "library"
/// code, reproducing the split of Figure 3 in the paper.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct UnitId(pub u16);

/// A half-open region of a single source unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Which source unit this span belongs to.
    pub unit: UnitId,
    /// Start position (inclusive).
    pub start: Pos,
    /// End position (exclusive).
    pub end: Pos,
}

impl Span {
    /// Creates a span inside `unit` covering `start..end`.
    pub fn new(unit: UnitId, start: Pos, end: Pos) -> Self {
        Span { unit, start, end }
    }

    /// A span covering a single position.
    pub fn point(unit: UnitId, pos: Pos) -> Self {
        Span {
            unit,
            start: pos,
            end: pos,
        }
    }

    /// Merges two spans into the smallest span covering both.
    ///
    /// Both spans must belong to the same unit; the unit of `self` wins
    /// otherwise (merging across units only happens on malformed input).
    pub fn to(self, other: Span) -> Span {
        Span {
            unit: self.unit,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}:{}", self.unit.0, self.start)
    }
}

/// A program location used in crash reports and branch tables.
///
/// Locations are comparable across instrumented and uninstrumented runs of
/// the same program, which is what lets replay verify that it reached the
/// same crash site as the recorded execution.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Loc {
    /// Source unit of the location.
    pub unit: UnitId,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Loc {
    /// Creates a location from a span's start position.
    pub fn from_span(span: Span) -> Self {
        Loc {
            unit: span.unit,
            line: span.start.line,
            col: span.start.col,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}:{}:{}", self.unit.0, self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let u = UnitId(0);
        let a = Span::new(u, Pos::new(1, 1), Pos::new(1, 5));
        let b = Span::new(u, Pos::new(2, 3), Pos::new(2, 9));
        let m = a.to(b);
        assert_eq!(m.start, Pos::new(1, 1));
        assert_eq!(m.end, Pos::new(2, 9));
    }

    #[test]
    fn loc_orders_by_unit_then_line() {
        let a = Loc {
            unit: UnitId(0),
            line: 10,
            col: 1,
        };
        let b = Loc {
            unit: UnitId(1),
            line: 1,
            col: 1,
        };
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        let l = Loc {
            unit: UnitId(2),
            line: 3,
            col: 4,
        };
        assert_eq!(l.to_string(), "u2:3:4");
    }
}
