//! Pretty-printer for mini-C ASTs.
//!
//! Primarily a testing tool: property tests check that printing a parsed
//! program and re-parsing it yields the same structure (and, crucially,
//! the same branch-location count in the same order — branch ids must be
//! stable under round-tripping for logs to stay meaningful).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole AST back to (single-unit) mini-C source.
pub fn print_ast(ast: &Ast) -> String {
    let mut p = Printer::default();
    for s in &ast.structs {
        p.struct_def(s);
    }
    for g in &ast.globals {
        p.global(g);
    }
    for f in &ast.funcs {
        p.func(f);
    }
    p.out
}

/// Renders a single expression (diagnostics, debugging).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(e);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn ty(&self, t: &TypeExpr) -> String {
        let mut s = match &t.base {
            BaseTy::Int => "int".to_string(),
            BaseTy::Char => "char".to_string(),
            BaseTy::Void => "void".to_string(),
            BaseTy::Struct(n) => format!("struct {n}"),
        };
        for _ in 0..t.stars {
            s.push('*');
        }
        s
    }

    fn dims(&self, t: &TypeExpr) -> String {
        let mut s = String::new();
        for d in &t.dims {
            match d {
                Some(n) => {
                    let _ = write!(s, "[{n}]");
                }
                None => s.push_str("[]"),
            }
        }
        s
    }

    fn struct_def(&mut self, s: &StructDef) {
        self.line(&format!("struct {} {{", s.name));
        self.indent += 1;
        for f in &s.fields {
            let decl = format!("{} {}{};", self.ty(&f.ty), f.name, self.dims(&f.ty));
            self.line(&decl);
        }
        self.indent -= 1;
        self.line("};");
    }

    fn global(&mut self, g: &GlobalDef) {
        let mut s = format!("{} {}{}", self.ty(&g.ty), g.name, self.dims(&g.ty));
        if let Some(init) = &g.init {
            s.push_str(" = ");
            s.push_str(&self.init(init));
        }
        s.push(';');
        self.line(&s);
    }

    fn init(&self, i: &Init) -> String {
        match i {
            Init::Expr(e) => {
                let mut p = Printer::default();
                p.expr(e);
                p.out
            }
            Init::List(items) => {
                let inner: Vec<String> = items.iter().map(|x| self.init(x)).collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }

    fn func(&mut self, f: &FuncDef) {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("{} {}{}", self.ty(&p.ty), p.name, self.dims(&p.ty)))
            .collect();
        self.line(&format!(
            "{} {}({}) {{",
            self.ty(&f.ret),
            f.name,
            params.join(", ")
        ));
        self.indent += 1;
        for s in &f.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block_body(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let mut line = format!("{} {}{}", self.ty(ty), name, self.dims(ty));
                if let Some(e) = init {
                    let mut p = Printer::default();
                    p.expr(e);
                    let _ = write!(line, " = {}", p.out);
                }
                line.push(';');
                self.line(&line);
            }
            StmtKind::Expr(e) => {
                let mut p = Printer::default();
                p.expr(e);
                self.line(&format!("{};", p.out));
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
                ..
            } => {
                let mut p = Printer::default();
                p.expr(cond);
                self.line(&format!("if ({}) {{", p.out));
                self.block_body(then_b);
                if let Some(e) = else_b {
                    self.line("} else {");
                    self.block_body(e);
                }
                self.line("}");
            }
            StmtKind::While { cond, body, .. } => {
                let mut p = Printer::default();
                p.expr(cond);
                self.line(&format!("while ({}) {{", p.out));
                self.block_body(body);
                self.line("}");
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.line("do {");
                self.block_body(body);
                let mut p = Printer::default();
                p.expr(cond);
                self.line(&format!("}} while ({});", p.out));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let init_s = match init {
                    Some(s) => {
                        let mut p = Printer::default();
                        p.stmt(s);
                        p.out.trim_end().trim_end_matches(';').to_string()
                    }
                    None => String::new(),
                };
                let cond_s = match cond {
                    Some(e) => {
                        let mut p = Printer::default();
                        p.expr(e);
                        p.out
                    }
                    None => String::new(),
                };
                let step_s = match step {
                    Some(e) => {
                        let mut p = Printer::default();
                        p.expr(e);
                        p.out
                    }
                    None => String::new(),
                };
                self.line(&format!("for ({init_s}; {cond_s}; {step_s}) {{"));
                self.block_body(body);
                self.line("}");
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let mut p = Printer::default();
                p.expr(scrutinee);
                self.line(&format!("switch ({}) {{", p.out));
                self.indent += 1;
                for c in cases {
                    self.line(&format!("case {}:", c.value));
                    self.indent += 1;
                    for st in &c.body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                if let Some(d) = default {
                    self.line("default:");
                    self.indent += 1;
                    for st in d {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Return(v) => match v {
                Some(e) => {
                    let mut p = Printer::default();
                    p.expr(e);
                    self.line(&format!("return {};", p.out));
                }
                None => self.line("return;"),
            },
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for b in s {
                    match b {
                        b'\n' => self.out.push_str("\\n"),
                        b'\t' => self.out.push_str("\\t"),
                        b'\r' => self.out.push_str("\\r"),
                        b'\\' => self.out.push_str("\\\\"),
                        b'"' => self.out.push_str("\\\""),
                        0 => self.out.push_str("\\0"),
                        b if b.is_ascii_graphic() || *b == b' ' => self.out.push(*b as char),
                        b => {
                            let _ = write!(self.out, "\\x{b:02x}");
                        }
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(n) => self.out.push_str(n),
            ExprKind::Unary { op, expr } => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                self.out.push_str(sym);
                self.out.push('(');
                self.expr(expr);
                self.out.push(')');
            }
            ExprKind::Deref(inner) => {
                self.out.push_str("*(");
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::AddrOf(inner) => {
                self.out.push_str("&(");
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.out.push('(');
                self.expr(lhs);
                let _ = write!(self.out, " {} ", bin_sym(*op));
                self.expr(rhs);
                self.out.push(')');
            }
            ExprKind::Logical { op, lhs, rhs, .. } => {
                self.out.push('(');
                self.expr(lhs);
                let _ = write!(
                    self.out,
                    " {} ",
                    match op {
                        LogOp::And => "&&",
                        LogOp::Or => "||",
                    }
                );
                self.expr(rhs);
                self.out.push(')');
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                self.out.push('(');
                self.expr(cond);
                self.out.push_str(" ? ");
                self.expr(then_e);
                self.out.push_str(" : ");
                self.expr(else_e);
                self.out.push(')');
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(lhs);
                match op {
                    Some(op) => {
                        let _ = write!(self.out, " {}= ", bin_sym(*op));
                    }
                    None => self.out.push_str(" = "),
                }
                self.expr(rhs);
            }
            ExprKind::IncDec { op, expr } => match op {
                IncDec::PreInc => {
                    self.out.push_str("++");
                    self.expr(expr);
                }
                IncDec::PreDec => {
                    self.out.push_str("--");
                    self.expr(expr);
                }
                IncDec::PostInc => {
                    self.expr(expr);
                    self.out.push_str("++");
                }
                IncDec::PostDec => {
                    self.expr(expr);
                    self.out.push_str("--");
                }
            },
            ExprKind::Call { callee, args } => {
                self.out.push_str(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Field { base, field, arrow } => {
                self.expr(base);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            ExprKind::Sizeof(t) => {
                let _ = write!(self.out, "sizeof({}{})", self.ty(t), self.dims(t));
            }
            ExprKind::Cast { ty, expr } => {
                let _ = write!(self.out, "({})", self.ty(ty));
                self.out.push('(');
                self.expr(expr);
                self.out.push(')');
            }
        }
    }
}

fn bin_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_preserves_branch_count_and_kinds() {
        let src = r#"
            struct s { int a; char buf[4]; };
            int g = 3;
            char msg[] = "hi\n";
            int helper(int x) {
                if (x > 0 && x < 10) { return x; }
                for (int i = 0; i < x; i++) { x--; }
                while (x) { x = x / 2; }
                switch (x) { case 0: return 1; default: return 2; }
            }
            int main() { return helper(g) ? 1 : 0; }
        "#;
        let a1 = parse(src).unwrap();
        let printed = print_ast(&a1);
        let a2 = parse(&printed).unwrap();
        assert_eq!(a1.n_branches(), a2.n_branches());
        for (b1, b2) in a1.branches.iter().zip(a2.branches.iter()) {
            assert_eq!(b1.kind, b2.kind);
            assert_eq!(b1.func, b2.func);
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let src = "int main() { int x = 1; x += 2; x++; return -x; }";
        let a1 = parse(src).unwrap();
        let printed = print_ast(&a1);
        let a2 = parse(&printed).unwrap();
        assert_eq!(a1.funcs[0].body.stmts.len(), a2.funcs[0].body.stmts.len());
    }

    #[test]
    fn prints_escapes_safely() {
        let src = "char *s = \"a\\n\\t\\\"b\\\\\\x01\";\nint main() { return 0; }";
        let a1 = parse(src).unwrap();
        let printed = print_ast(&a1);
        let a2 = parse(&printed).unwrap();
        let (g1, g2) = (&a1.globals[0], &a2.globals[0]);
        assert_eq!(g1.init, g2.init);
    }
}
