//! The VM memory model.
//!
//! Memory is a set of *objects*, each a flat run of 64-bit cells. A pointer
//! is a packed `(object, offset)` pair stored in a single cell, so all
//! values — integers and pointers — are `i64` and every cell can carry an
//! optional *shadow* value of type `V` (unit for concrete runs, a symbolic
//! expression for concolic runs).
//!
//! Out-of-bounds accesses, null dereferences and use-after-free are
//! detected on every access and surface as crashes ("SEGV" in the paper's
//! terms) rather than undefined behaviour.

use crate::types::{GlobalId, StrId};
use std::fmt;

/// Identifier of a memory object. `0` is reserved for the null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The null object (never valid to access).
    pub const NULL: ObjId = ObjId(0);
}

/// Packs an object id and cell offset into a pointer cell value.
pub fn pack(obj: ObjId, off: u32) -> i64 {
    ((obj.0 as i64) << 32) | off as i64
}

/// Unpacks a pointer cell value into object id and cell offset.
pub fn unpack(addr: i64) -> (ObjId, u32) {
    (ObjId((addr >> 32) as u32), addr as u32)
}

/// What a memory object represents (for diagnostics and analyses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjKind {
    /// Storage of a global variable.
    Global(GlobalId),
    /// Read-only string literal data.
    Rodata(StrId),
    /// A function stack frame.
    Frame { func: String },
    /// A heap allocation from `malloc`.
    Heap,
    /// Environment-provided data (argv strings, workload buffers).
    External,
}

/// A memory access fault; becomes a crash in the VM.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MemFault {
    /// Dereference of the null pointer.
    NullDeref,
    /// Access past the end of an object.
    OutOfBounds {
        /// The object accessed.
        obj: u32,
        /// The offending offset.
        off: u32,
        /// The object's size in cells.
        size: usize,
    },
    /// Access to a freed heap object.
    UseAfterFree,
    /// Access through a pointer to a nonexistent object.
    BadObject,
    /// `free` of something that is not a live heap object.
    BadFree,
    /// Store into read-only data.
    ReadOnly,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::NullDeref => write!(f, "null pointer dereference"),
            MemFault::OutOfBounds { obj, off, size } => {
                write!(
                    f,
                    "out-of-bounds access: object {obj} offset {off} size {size}"
                )
            }
            MemFault::UseAfterFree => write!(f, "use after free"),
            MemFault::BadObject => write!(f, "wild pointer dereference"),
            MemFault::BadFree => write!(f, "invalid free"),
            MemFault::ReadOnly => write!(f, "store to read-only memory"),
        }
    }
}

/// One memory object: concrete cells plus parallel shadow cells.
#[derive(Debug, Clone)]
pub struct Object<V> {
    /// What the object represents.
    pub kind: ObjKind,
    /// Concrete cell values.
    pub cells: Vec<i64>,
    /// Shadow values, parallel to `cells`.
    pub shadow: Vec<V>,
    /// False once freed.
    pub alive: bool,
    /// True for rodata (stores fault).
    pub read_only: bool,
}

/// The whole address space of one program execution.
#[derive(Debug, Clone)]
pub struct Memory<V> {
    objects: Vec<Object<V>>,
    /// Total cells currently allocated (live objects).
    live_cells: usize,
    /// High-water mark of allocated cells.
    peak_cells: usize,
}

impl<V: Clone + Default> Memory<V> {
    /// Creates an empty memory (object 0 is the unusable null object).
    pub fn new() -> Self {
        Memory {
            objects: vec![Object {
                kind: ObjKind::External,
                cells: Vec::new(),
                shadow: Vec::new(),
                alive: false,
                read_only: true,
            }],
            live_cells: 0,
            peak_cells: 0,
        }
    }

    /// Allocates a zeroed object of `size` cells.
    pub fn alloc(&mut self, kind: ObjKind, size: usize) -> ObjId {
        let read_only = matches!(kind, ObjKind::Rodata(_));
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            kind,
            cells: vec![0; size],
            shadow: vec![V::default(); size],
            alive: true,
            read_only,
        });
        self.live_cells += size;
        self.peak_cells = self.peak_cells.max(self.live_cells);
        id
    }

    /// Frees a heap object. Only pointers to offset 0 of live heap objects
    /// are valid, as in C.
    pub fn free(&mut self, addr: i64) -> Result<(), MemFault> {
        let (obj, off) = unpack(addr);
        if obj == ObjId::NULL {
            return Ok(()); // free(NULL) is a no-op.
        }
        let o = self
            .objects
            .get_mut(obj.0 as usize)
            .ok_or(MemFault::BadFree)?;
        if off != 0 || !o.alive || !matches!(o.kind, ObjKind::Heap) {
            return Err(MemFault::BadFree);
        }
        o.alive = false;
        self.live_cells -= o.cells.len();
        Ok(())
    }

    fn object(&self, obj: ObjId) -> Result<&Object<V>, MemFault> {
        if obj == ObjId::NULL {
            return Err(MemFault::NullDeref);
        }
        let o = self
            .objects
            .get(obj.0 as usize)
            .ok_or(MemFault::BadObject)?;
        if !o.alive {
            return Err(MemFault::UseAfterFree);
        }
        Ok(o)
    }

    fn object_mut(&mut self, obj: ObjId) -> Result<&mut Object<V>, MemFault> {
        if obj == ObjId::NULL {
            return Err(MemFault::NullDeref);
        }
        let o = self
            .objects
            .get_mut(obj.0 as usize)
            .ok_or(MemFault::BadObject)?;
        if !o.alive {
            return Err(MemFault::UseAfterFree);
        }
        Ok(o)
    }

    /// Loads the cell at a packed address.
    pub fn load(&self, addr: i64) -> Result<(i64, &V), MemFault> {
        let (obj, off) = unpack(addr);
        let o = self.object(obj)?;
        let i = off as usize;
        if i >= o.cells.len() {
            return Err(MemFault::OutOfBounds {
                obj: obj.0,
                off,
                size: o.cells.len(),
            });
        }
        Ok((o.cells[i], &o.shadow[i]))
    }

    /// Stores a value and shadow at a packed address.
    pub fn store(&mut self, addr: i64, val: i64, shadow: V) -> Result<(), MemFault> {
        let (obj, off) = unpack(addr);
        let o = self.object_mut(obj)?;
        if o.read_only {
            return Err(MemFault::ReadOnly);
        }
        let i = off as usize;
        if i >= o.cells.len() {
            return Err(MemFault::OutOfBounds {
                obj: obj.0,
                off,
                size: o.cells.len(),
            });
        }
        o.cells[i] = val;
        o.shadow[i] = shadow;
        Ok(())
    }

    /// Reads `n` byte-cells starting at `addr` (used for syscall buffers).
    pub fn read_bytes(&self, addr: i64, n: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (v, _) = self.load(addr.wrapping_add(i as i64))?;
            out.push((v & 0xff) as u8);
        }
        Ok(out)
    }

    /// Writes bytes into byte-cells starting at `addr` with default shadows.
    pub fn write_bytes(&mut self, addr: i64, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, b) in bytes.iter().enumerate() {
            self.store(addr.wrapping_add(i as i64), *b as i64, V::default())?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated byte string, up to `max` bytes.
    pub fn read_cstr(&self, addr: i64, max: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let (v, _) = self.load(addr.wrapping_add(i as i64))?;
            let b = (v & 0xff) as u8;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Sets the shadow of one cell without touching the concrete value.
    pub fn set_shadow(&mut self, addr: i64, shadow: V) -> Result<(), MemFault> {
        let (obj, off) = unpack(addr);
        let o = self.object_mut(obj)?;
        let i = off as usize;
        if i >= o.shadow.len() {
            return Err(MemFault::OutOfBounds {
                obj: obj.0,
                off,
                size: o.cells.len(),
            });
        }
        o.shadow[i] = shadow;
        Ok(())
    }

    /// Loader-only store that bypasses read-only protection (used to fill
    /// rodata objects before execution starts).
    pub fn store_raw(&mut self, obj: ObjId, off: usize, v: i64) -> Result<(), MemFault> {
        let o = self.object_mut(obj)?;
        if off >= o.cells.len() {
            return Err(MemFault::OutOfBounds {
                obj: obj.0,
                off: off as u32,
                size: o.cells.len(),
            });
        }
        o.cells[off] = v;
        Ok(())
    }

    /// Marks an object dead without the heap-object checks of [`free`],
    /// used for popped stack frames so dangling pointers fault.
    ///
    /// [`free`]: Memory::free
    pub fn kill(&mut self, obj: ObjId) {
        if let Some(o) = self.objects.get_mut(obj.0 as usize) {
            if o.alive {
                o.alive = false;
                self.live_cells -= o.cells.len();
            }
        }
    }

    /// Number of live objects (excluding the null object).
    pub fn live_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.alive).count()
    }

    /// High-water mark of allocated cells.
    pub fn peak_cells(&self) -> usize {
        self.peak_cells
    }

    /// Direct read of an object's cells (analysis/test support).
    pub fn object_cells(&self, obj: ObjId) -> Option<&[i64]> {
        self.objects.get(obj.0 as usize).map(|o| &o.cells[..])
    }

    /// The kind of an object, if it exists.
    pub fn object_kind(&self, obj: ObjId) -> Option<&ObjKind> {
        self.objects.get(obj.0 as usize).map(|o| &o.kind)
    }
}

impl<V: Clone + Default> Default for Memory<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let addr = pack(ObjId(7), 42);
        assert_eq!(unpack(addr), (ObjId(7), 42));
        assert_eq!(
            unpack(pack(ObjId(u32::MAX), u32::MAX)),
            (ObjId(u32::MAX), u32::MAX)
        );
    }

    #[test]
    fn pointer_arithmetic_on_packed_addresses() {
        let addr = pack(ObjId(3), 10);
        assert_eq!(unpack(addr + 5), (ObjId(3), 15));
        assert_eq!(unpack(addr - 10), (ObjId(3), 0));
    }

    #[test]
    fn null_is_object_zero() {
        assert_eq!(unpack(0), (ObjId::NULL, 0));
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        m.store(pack(o, 2), 99, ()).unwrap();
        assert_eq!(m.load(pack(o, 2)).unwrap().0, 99);
        assert_eq!(m.load(pack(o, 0)).unwrap().0, 0); // zero-initialized
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        assert!(matches!(
            m.load(pack(o, 4)),
            Err(MemFault::OutOfBounds { .. })
        ));
        assert!(m.store(pack(o, 100), 1, ()).is_err());
    }

    #[test]
    fn null_deref_faults() {
        let m: Memory<()> = Memory::new();
        assert_eq!(m.load(0), Err(MemFault::NullDeref));
    }

    #[test]
    fn use_after_free_faults() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        m.free(pack(o, 0)).unwrap();
        assert_eq!(m.load(pack(o, 0)), Err(MemFault::UseAfterFree));
    }

    #[test]
    fn double_free_faults() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        m.free(pack(o, 0)).unwrap();
        assert_eq!(m.free(pack(o, 0)), Err(MemFault::BadFree));
    }

    #[test]
    fn free_null_is_noop() {
        let mut m: Memory<()> = Memory::new();
        assert!(m.free(0).is_ok());
    }

    #[test]
    fn interior_free_faults() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        assert_eq!(m.free(pack(o, 1)), Err(MemFault::BadFree));
    }

    #[test]
    fn rodata_is_read_only() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::Rodata(StrId(0)), 4);
        assert_eq!(m.store(pack(o, 0), 1, ()), Err(MemFault::ReadOnly));
    }

    #[test]
    fn cstr_reading() {
        let mut m: Memory<()> = Memory::new();
        let o = m.alloc(ObjKind::External, 8);
        m.write_bytes(pack(o, 0), b"hi\0junk").unwrap();
        assert_eq!(m.read_cstr(pack(o, 0), 8).unwrap(), b"hi");
    }

    #[test]
    fn peak_cells_tracks_high_water() {
        let mut m: Memory<()> = Memory::new();
        let a = m.alloc(ObjKind::Heap, 10);
        m.alloc(ObjKind::Heap, 5);
        m.free(pack(a, 0)).unwrap();
        m.alloc(ObjKind::Heap, 2);
        assert_eq!(m.peak_cells(), 15);
    }
}
