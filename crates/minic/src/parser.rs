//! Recursive-descent parser for mini-C.
//!
//! The parser is the authority on branch-location identity: every
//! conditional construct receives a [`BranchId`] in source order, shared
//! across all source units of a program. Analyses, instrumentation and
//! replay all key on these ids.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::span::{Span, UnitId};
use crate::token::{SpannedTok, Tok};

/// Parses a multi-unit program (e.g. `[("libc", LIBC_SRC), ("app", APP_SRC)]`).
///
/// Units share one namespace; ids (`ExprId`, `StmtId`, `BranchId`) are
/// assigned sequentially across units in the given order, so the same
/// sources always produce the same ids.
pub fn parse_units(units: &[(&str, &str)]) -> Result<Ast> {
    let mut ast = Ast::default();
    let mut ids = IdGen::default();
    for (i, (name, src)) in units.iter().enumerate() {
        let unit = UnitId(i as u16);
        ast.units.push(name.to_string());
        let toks = lex(unit, src)?;
        let mut p = Parser {
            toks,
            i: 0,
            unit,
            ids: &mut ids,
            cur_func: String::new(),
            branches: Vec::new(),
        };
        p.unit_decls(&mut ast)?;
        ast.branches.append(&mut p.branches);
    }
    ast.n_exprs = ids.expr;
    ast.n_stmts = ids.stmt;
    Ok(ast)
}

/// Parses a single anonymous unit (convenience for tests and examples).
pub fn parse(src: &str) -> Result<Ast> {
    parse_units(&[("main", src)])
}

#[derive(Default)]
struct IdGen {
    expr: u32,
    stmt: u32,
    branch: u32,
}

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    i: usize,
    unit: UnitId,
    ids: &'a mut IdGen,
    cur_func: String,
    branches: Vec<BranchInfo>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        let j = (self.i + 1).min(self.toks.len() - 1);
        &self.toks[j].tok
    }

    fn span(&self) -> Span {
        self.toks[self.i].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.i.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span> {
        if self.peek() == &tok {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(Error::parse(
                self.span(),
                format!("expected {}, found {}", tok.describe(), self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(Error::parse(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn new_expr(&mut self, kind: ExprKind, span: Span) -> Expr {
        let id = ExprId(self.ids.expr);
        self.ids.expr += 1;
        Expr { id, kind, span }
    }

    fn new_stmt(&mut self, kind: StmtKind, span: Span) -> Stmt {
        let id = StmtId(self.ids.stmt);
        self.ids.stmt += 1;
        Stmt { id, kind, span }
    }

    fn new_branch(&mut self, kind: BranchKind, span: Span) -> BranchId {
        let id = BranchId(self.ids.branch);
        self.ids.branch += 1;
        self.branches.push(BranchInfo {
            id,
            kind,
            unit: self.unit,
            line: span.start.line,
            col: span.start.col,
            func: self.cur_func.clone(),
        });
        id
    }

    // ---- declarations -----------------------------------------------------

    fn unit_decls(&mut self, ast: &mut Ast) -> Result<()> {
        while self.peek() != &Tok::Eof {
            if self.peek() == &Tok::KwStruct && self.is_struct_def() {
                ast.structs.push(self.struct_def()?);
                continue;
            }
            // `static` / `const` are accepted and ignored.
            while matches!(self.peek(), Tok::KwStatic | Tok::KwConst) {
                self.bump();
            }
            let ty = self.type_expr()?;
            let name = self.ident()?;
            if self.peek() == &Tok::LParen {
                ast.funcs.push(self.func_def(ty, name)?);
            } else {
                ast.globals.push(self.global_def(ty, name)?);
            }
        }
        Ok(())
    }

    /// Distinguishes `struct S { ... };` from `struct S x;` / `struct S *f()`.
    fn is_struct_def(&self) -> bool {
        // struct IDENT {  -> definition.
        matches!(self.peek2(), Tok::Ident(_))
            && self.toks.get(self.i + 2).map(|t| &t.tok) == Some(&Tok::LBrace)
    }

    fn struct_def(&mut self) -> Result<StructDef> {
        let start = self.span();
        self.expect(Tok::KwStruct)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            let fstart = self.span();
            let base = self.type_expr()?;
            let fname = self.ident()?;
            let ty = self.with_dims(base)?;
            fields.push(FieldDef {
                name: fname,
                ty,
                span: fstart.to(self.prev_span()),
            });
            self.expect(Tok::Semi)?;
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
            unit: self.unit,
        })
    }

    fn type_expr(&mut self) -> Result<TypeExpr> {
        let start = self.span();
        let base = match self.bump() {
            Tok::KwInt => BaseTy::Int,
            Tok::KwChar => BaseTy::Char,
            Tok::KwVoid => BaseTy::Void,
            Tok::KwStruct => BaseTy::Struct(self.ident()?),
            other => return Err(Error::parse(start, format!("expected type, found {other}"))),
        };
        let mut stars = 0u8;
        while self.eat(&Tok::Star) {
            stars += 1;
        }
        Ok(TypeExpr {
            base,
            stars,
            dims: Vec::new(),
            span: start.to(self.prev_span()),
        })
    }

    /// Parses trailing `[N]` dimensions after a declarator name.
    fn with_dims(&mut self, mut ty: TypeExpr) -> Result<TypeExpr> {
        while self.eat(&Tok::LBracket) {
            if self.eat(&Tok::RBracket) {
                ty.dims.push(None);
            } else {
                let sz = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as usize,
                    other => {
                        return Err(Error::parse(
                            self.prev_span(),
                            format!("expected array size, found {other}"),
                        ))
                    }
                };
                self.expect(Tok::RBracket)?;
                ty.dims.push(Some(sz));
            }
        }
        Ok(ty)
    }

    fn global_def(&mut self, base: TypeExpr, name: String) -> Result<GlobalDef> {
        let start = base.span;
        let ty = self.with_dims(base)?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            span: start.to(self.prev_span()),
            unit: self.unit,
        })
    }

    fn initializer(&mut self) -> Result<Init> {
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            if self.peek() != &Tok::RBrace {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    if self.peek() == &Tok::RBrace {
                        break; // trailing comma
                    }
                }
            }
            self.expect(Tok::RBrace)?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assignment()?))
        }
    }

    fn func_def(&mut self, ret: TypeExpr, name: String) -> Result<FuncDef> {
        let start = ret.span;
        self.cur_func = name.clone();
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            // `void` alone means "no parameters".
            if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
                self.bump();
            } else {
                loop {
                    let pstart = self.span();
                    let base = self.type_expr()?;
                    let pname = self.ident()?;
                    let ty = self.with_dims(base)?;
                    params.push(Param {
                        name: pname,
                        ty,
                        span: pstart.to(self.prev_span()),
                    });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        self.cur_func.clear();
        Ok(FuncDef {
            name,
            ret,
            params,
            body,
            span: start.to(self.prev_span()),
            unit: self.unit,
        })
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> Result<Block> {
        let start = self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(Tok::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    /// Parses a statement; single statements after `if`/loops become blocks.
    fn stmt_as_block(&mut self) -> Result<Block> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct | Tok::KwStatic | Tok::KwConst
        )
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                let b = self.block()?;
                let span = b.span;
                Ok(self.new_stmt(StmtKind::Block(b), span))
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwWhile => self.while_stmt(),
            Tok::KwDo => self.do_while_stmt(),
            Tok::KwFor => self.for_stmt(),
            Tok::KwSwitch => self.switch_stmt(),
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(Tok::Semi)?;
                Ok(self.new_stmt(StmtKind::Return(value), start.to(self.prev_span())))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(self.new_stmt(StmtKind::Break, start))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(self.new_stmt(StmtKind::Continue, start))
            }
            _ if self.is_type_start() => {
                let s = self.decl_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            _ => {
                let e = self.expression()?;
                self.expect(Tok::Semi)?;
                let span = start.to(self.prev_span());
                Ok(self.new_stmt(StmtKind::Expr(e), span))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        while matches!(self.peek(), Tok::KwStatic | Tok::KwConst) {
            self.bump();
        }
        let base = self.type_expr()?;
        let name = self.ident()?;
        let ty = self.with_dims(base)?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.assignment()?)
        } else {
            None
        };
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(StmtKind::Decl { name, ty, init }, span))
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond_span = self.span();
        let cond = self.expression()?;
        self.expect(Tok::RParen)?;
        let branch = self.new_branch(BranchKind::If, cond_span);
        let then_b = self.stmt_as_block()?;
        let else_b = if self.eat(&Tok::KwElse) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(
            StmtKind::If {
                branch,
                cond,
                then_b,
                else_b,
            },
            span,
        ))
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(Tok::KwWhile)?;
        self.expect(Tok::LParen)?;
        let cond_span = self.span();
        let cond = self.expression()?;
        self.expect(Tok::RParen)?;
        let branch = self.new_branch(BranchKind::While, cond_span);
        let body = self.stmt_as_block()?;
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(StmtKind::While { branch, cond, body }, span))
    }

    fn do_while_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(Tok::KwDo)?;
        let body = self.stmt_as_block()?;
        self.expect(Tok::KwWhile)?;
        self.expect(Tok::LParen)?;
        let cond_span = self.span();
        let cond = self.expression()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        let branch = self.new_branch(BranchKind::DoWhile, cond_span);
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(StmtKind::DoWhile { branch, body, cond }, span))
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        let init = if self.peek() == &Tok::Semi {
            self.bump();
            None
        } else if self.is_type_start() {
            let s = self.decl_stmt()?;
            self.expect(Tok::Semi)?;
            Some(Box::new(s))
        } else {
            let e = self.expression()?;
            let span = e.span;
            self.expect(Tok::Semi)?;
            Some(Box::new(self.new_stmt(StmtKind::Expr(e), span)))
        };
        let (cond, branch) = if self.peek() == &Tok::Semi {
            (None, None)
        } else {
            let cond_span = self.span();
            let c = self.expression()?;
            (Some(c), Some(self.new_branch(BranchKind::For, cond_span)))
        };
        self.expect(Tok::Semi)?;
        let step = if self.peek() == &Tok::RParen {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(Tok::RParen)?;
        let body = self.stmt_as_block()?;
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(
            StmtKind::For {
                branch,
                init,
                cond,
                step,
                body,
            },
            span,
        ))
    }

    fn switch_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(Tok::KwSwitch)?;
        self.expect(Tok::LParen)?;
        let scrutinee = self.expression()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut default: Option<Vec<Stmt>> = None;
        while self.peek() != &Tok::RBrace {
            if self.eat(&Tok::KwCase) {
                let cspan = self.prev_span();
                let neg = self.eat(&Tok::Minus);
                let value = match self.bump() {
                    Tok::Int(v) => {
                        if neg {
                            -v
                        } else {
                            v
                        }
                    }
                    other => {
                        return Err(Error::parse(
                            self.prev_span(),
                            format!("expected constant case value, found {other}"),
                        ))
                    }
                };
                self.expect(Tok::Colon)?;
                let branch = self.new_branch(BranchKind::SwitchCase, cspan);
                let body = self.case_body()?;
                cases.push(SwitchCase {
                    value,
                    branch,
                    body,
                    span: cspan,
                });
            } else if self.eat(&Tok::KwDefault) {
                self.expect(Tok::Colon)?;
                if default.is_some() {
                    return Err(Error::parse(self.prev_span(), "duplicate default label"));
                }
                default = Some(self.case_body()?);
            } else {
                return Err(Error::parse(
                    self.span(),
                    format!("expected case or default, found {}", self.peek()),
                ));
            }
        }
        self.expect(Tok::RBrace)?;
        let span = start.to(self.prev_span());
        Ok(self.new_stmt(
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            },
            span,
        ))
    }

    fn case_body(&mut self) -> Result<Vec<Stmt>> {
        let mut body = Vec::new();
        while !matches!(self.peek(), Tok::KwCase | Tok::KwDefault | Tok::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    // ---- expressions ------------------------------------------------------

    fn expression(&mut self) -> Result<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::BitAnd),
            Tok::PipeAssign => Some(BinOp::BitOr),
            Tok::CaretAssign => Some(BinOp::BitXor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let span = lhs.span.to(rhs.span);
        Ok(self.new_expr(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.logical_or()?;
        if !self.eat(&Tok::Question) {
            return Ok(cond);
        }
        let branch = self.new_branch(BranchKind::Ternary, cond.span);
        let then_e = self.expression()?;
        self.expect(Tok::Colon)?;
        let else_e = self.ternary()?;
        let span = cond.span.to(else_e.span);
        Ok(self.new_expr(
            ExprKind::Ternary {
                branch,
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            },
            span,
        ))
    }

    fn logical_or(&mut self) -> Result<Expr> {
        let mut lhs = self.logical_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let branch = self.new_branch(BranchKind::LogicalOr, lhs.span);
            let rhs = self.logical_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.new_expr(
                ExprKind::Logical {
                    op: LogOp::Or,
                    branch,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_or()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let branch = self.new_branch(BranchKind::LogicalAnd, lhs.span);
            let rhs = self.bit_or()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.new_expr(
                ExprKind::Logical {
                    op: LogOp::And,
                    branch,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> Result<Expr>,
        table: &[(Tok, BinOp)],
    ) -> Result<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.to(rhs.span);
                    lhs = self.new_expr(
                        ExprKind::Binary {
                            op: *op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        span,
                    );
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bit_or(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_xor, &[(Tok::Pipe, BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_and, &[(Tok::Caret, BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr> {
        self.binary_level(Self::equality, &[(Tok::Amp, BinOp::BitAnd)])
    }

    fn equality(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::relational,
            &[(Tok::Eq, BinOp::Eq), (Tok::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::shift,
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::additive,
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::Unary {
                        op: UnOp::BitNot,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(ExprKind::Deref(Box::new(e)), span))
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(ExprKind::AddrOf(Box::new(e)), span))
            }
            Tok::PlusPlus => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::IncDec {
                        op: IncDec::PreInc,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            Tok::MinusMinus => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::IncDec {
                        op: IncDec::PreDec,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(Tok::LParen)?;
                let base = self.type_expr()?;
                let ty = self.with_dims(base)?;
                let end = self.expect(Tok::RParen)?;
                Ok(self.new_expr(ExprKind::Sizeof(ty), start.to(end)))
            }
            // Cast: `(type) expr`.
            Tok::LParen
                if matches!(
                    self.peek2(),
                    Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct
                ) =>
            {
                self.bump();
                let ty = self.type_expr()?;
                self.expect(Tok::RParen)?;
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(self.new_expr(
                    ExprKind::Cast {
                        ty,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::LParen => {
                    let callee = match &e.kind {
                        ExprKind::Ident(name) => name.clone(),
                        _ => {
                            return Err(Error::parse(
                                e.span,
                                "only direct calls to named functions are supported",
                            ))
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(Tok::RParen)?;
                    let span = e.span.to(end);
                    e = self.new_expr(ExprKind::Call { callee, args }, span);
                }
                Tok::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    let end = self.expect(Tok::RBracket)?;
                    let span = e.span.to(end);
                    e = self.new_expr(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    let span = e.span.to(self.prev_span());
                    e = self.new_expr(
                        ExprKind::Field {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                        span,
                    );
                }
                Tok::Arrow => {
                    self.bump();
                    let field = self.ident()?;
                    let span = e.span.to(self.prev_span());
                    e = self.new_expr(
                        ExprKind::Field {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                        span,
                    );
                }
                Tok::PlusPlus => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = self.new_expr(
                        ExprKind::IncDec {
                            op: IncDec::PostInc,
                            expr: Box::new(e),
                        },
                        span,
                    );
                }
                Tok::MinusMinus => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = self.new_expr(
                        ExprKind::IncDec {
                            op: IncDec::PostDec,
                            expr: Box::new(e),
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(self.new_expr(ExprKind::IntLit(v), start)),
            Tok::Str(s) => Ok(self.new_expr(ExprKind::StrLit(s), start)),
            Tok::Ident(name) => Ok(self.new_expr(ExprKind::Ident(name), start)),
            Tok::LParen => {
                let e = self.expression()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(Error::parse(
                start,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let ast = parse("int main() { return 0; }").unwrap();
        assert_eq!(ast.funcs.len(), 1);
        assert_eq!(ast.funcs[0].name, "main");
        assert_eq!(ast.n_branches(), 0);
    }

    #[test]
    fn assigns_branch_ids_in_source_order() {
        let src = r#"
            int f(int x) {
                if (x > 0) { return 1; }
                while (x < 10) { x = x + 1; }
                for (x = 0; x < 3; x = x + 1) { }
                return x > 1 && x < 9;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.n_branches(), 4);
        assert_eq!(ast.branches[0].kind, BranchKind::If);
        assert_eq!(ast.branches[1].kind, BranchKind::While);
        assert_eq!(ast.branches[2].kind, BranchKind::For);
        assert_eq!(ast.branches[3].kind, BranchKind::LogicalAnd);
        assert!(ast.branches.iter().all(|b| b.func == "f"));
    }

    #[test]
    fn parses_struct_and_globals() {
        let src = r#"
            struct point { int x; int y; };
            int table[4] = {1, 2, 3, 4};
            char *msg = "hello";
            int main() { struct point p; p.x = 1; return p.x; }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.structs.len(), 1);
        assert_eq!(ast.globals.len(), 2);
        assert_eq!(ast.structs[0].fields.len(), 2);
    }

    #[test]
    fn parses_switch_with_fallthrough() {
        let src = r#"
            int f(int x) {
                switch (x) {
                    case 1:
                    case 2: return 10;
                    case 3: break;
                    default: return -1;
                }
                return 0;
            }
        "#;
        let ast = parse(src).unwrap();
        // Three `case` labels = three branch locations.
        assert_eq!(ast.n_branches(), 3);
        assert!(ast
            .branches
            .iter()
            .all(|b| b.kind == BranchKind::SwitchCase));
    }

    #[test]
    fn parses_pointer_declarations_and_arrays() {
        let src = r#"
            int main(int argc, char **argv) {
                char buf[64];
                int *p;
                int m[2][3];
                p = &m[0][0];
                buf[0] = argv[0][0];
                return *p;
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_ternary_and_casts() {
        let src = "int f(int x) { return x > 0 ? (char)x : -x; }";
        let ast = parse(src).unwrap();
        assert_eq!(ast.branches[0].kind, BranchKind::Ternary);
    }

    #[test]
    fn parses_do_while() {
        let src = "int f(int x) { do { x--; } while (x > 0); return x; }";
        let ast = parse(src).unwrap();
        assert_eq!(ast.branches[0].kind, BranchKind::DoWhile);
    }

    #[test]
    fn branch_ids_are_shared_across_units() {
        let lib = "int lib_f(int x) { if (x) { return 1; } return 0; }";
        let app = "int main() { if (lib_f(2)) { return 1; } return 0; }";
        let ast = parse_units(&[("lib", lib), ("app", app)]).unwrap();
        assert_eq!(ast.n_branches(), 2);
        assert_eq!(ast.branches[0].unit.0, 0);
        assert_eq!(ast.branches[1].unit.0, 1);
    }

    #[test]
    fn rejects_call_through_expression() {
        assert!(parse("int main() { (1 + 2)(); return 0; }").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("int main() { return @; }").is_err());
        assert!(parse("int main() { if }").is_err());
    }

    #[test]
    fn for_without_condition_has_no_branch() {
        let ast = parse("int f() { for (;;) { break; } return 0; }").unwrap();
        assert_eq!(ast.n_branches(), 0);
    }

    #[test]
    fn compound_assignment_parses() {
        let ast = parse("int f(int x) { x += 2; x <<= 1; x %= 3; return x; }").unwrap();
        assert_eq!(ast.funcs[0].body.stmts.len(), 4);
    }
}
