//! Constraint sets: conjunctions of path-condition literals and
//! first-class range constraints.
//!
//! A concolic run produces one literal per symbolic branch executed: the
//! branch condition expression, asserted true or false according to the
//! direction taken. A *pending* constraint set (paper §3.1) is the prefix
//! of a run's constraints with the final literal negated — solving it
//! yields an input that drives execution down the other side of that
//! branch.
//!
//! Concretizing a symbolic address historically added an equality *pin*
//! (`expr == observed`) as a literal. Pins over-constrain: a forced replay
//! prefix that needs a *different* stream offset becomes unsatisfiable
//! even though any in-bounds offset would do. [`RangeConstraint`] is the
//! generalized form — `lo <= expr <= hi`, optionally with an alignment
//! requirement and always carrying the observed witness value so engines
//! can fall back to the hard pin when the bounded form defeats the
//! stochastic search.

use crate::arena::{ExprArena, ExprRef};
use crate::interval::{range, Interval};
use crate::op::Op;

/// One literal: an expression asserted truthy (`positive`) or falsy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// The condition expression.
    pub expr: ExprRef,
    /// `true` ⇒ assert `expr != 0`; `false` ⇒ assert `expr == 0`.
    pub positive: bool,
}

impl Lit {
    /// The same condition asserted the other way.
    pub fn negated(self) -> Lit {
        Lit {
            expr: self.expr,
            positive: !self.positive,
        }
    }

    /// Whether the literal holds under an assignment.
    pub fn holds(&self, arena: &ExprArena, assign: &[i64]) -> bool {
        (arena.eval(self.expr, assign) != 0) == self.positive
    }
}

/// A first-class interval constraint: `lo <= expr <= hi`, optionally with
/// an alignment requirement `(expr - phase) % align == 0`.
///
/// The constraint vocabulary, by constructor:
///
/// - [`RangeConstraint::pin`] — the classic equality pin (`expr == v`,
///   a point interval);
/// - [`RangeConstraint::range`] — a plain interval;
/// - [`RangeConstraint::aligned`] — an interval plus a stride/phase
///   alignment (element pointers into an array of stride > 1);
/// - [`RangeConstraint::in_region`] — in-bounds-of-region sugar:
///   `base <= expr <= base + len - 1`.
///
/// `observed` is the value the concretized expression actually took in
/// the producing run. It is both a search hint (the solver snaps toward
/// it) and the target of the pin fallback (see
/// [`ConstraintSet::pinned`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeConstraint {
    /// The constrained expression.
    pub expr: ExprRef,
    /// Smallest allowed value (inclusive).
    pub lo: i64,
    /// Largest allowed value (inclusive).
    pub hi: i64,
    /// Alignment step; `<= 1` means no alignment requirement.
    pub align: i64,
    /// Alignment phase: allowed values satisfy
    /// `(value - phase) % align == 0`.
    pub phase: i64,
    /// The witness value observed when the constraint was emitted.
    pub observed: i64,
}

impl RangeConstraint {
    /// A plain interval constraint `lo <= expr <= hi`.
    pub fn range(expr: ExprRef, lo: i64, hi: i64, observed: i64) -> Self {
        RangeConstraint {
            expr,
            lo,
            hi,
            align: 1,
            phase: 0,
            observed,
        }
    }

    /// An interval constraint with an alignment requirement.
    pub fn aligned(expr: ExprRef, lo: i64, hi: i64, align: i64, phase: i64, observed: i64) -> Self {
        RangeConstraint {
            expr,
            lo,
            hi,
            align: align.max(1),
            phase,
            observed,
        }
    }

    /// In-bounds-of-region sugar: `base <= expr < base + len`.
    pub fn in_region(expr: ExprRef, base: i64, len: i64, observed: i64) -> Self {
        Self::range(expr, base, base.saturating_add(len.max(1) - 1), observed)
    }

    /// The classic hard pin: a point interval at `v`.
    pub fn pin(expr: ExprRef, v: i64) -> Self {
        Self::range(expr, v, v, v)
    }

    /// True when the constraint admits exactly one value.
    pub fn is_pin(&self) -> bool {
        self.lo == self.hi
    }

    /// The constraint's interval (bounds only; alignment not encoded).
    pub fn interval(&self) -> Interval {
        Interval::new(self.lo, self.hi)
    }

    /// Whether a concrete value satisfies bounds and alignment.
    pub fn admits(&self, v: i64) -> bool {
        v >= self.lo
            && v <= self.hi
            && (self.align <= 1 || (v as i128 - self.phase as i128) % self.align as i128 == 0)
    }

    /// Whether the constraint holds under an assignment.
    pub fn holds(&self, arena: &ExprArena, assign: &[i64]) -> bool {
        self.admits(arena.eval(self.expr, assign))
    }

    /// The admissible value nearest to `v` (ties toward the lower one);
    /// `None` when the constraint admits nothing.
    pub fn snap(&self, v: i64) -> Option<i64> {
        // `align_to` leaves the bounds on aligned points, so after
        // clamping, rounding down always stays in range.
        let legal = self.interval().align_to(self.align, self.phase)?;
        let clamped = v.clamp(legal.lo, legal.hi);
        if self.align <= 1 {
            return Some(clamped);
        }
        let rem = (clamped as i128 - self.phase as i128).rem_euclid(self.align as i128) as i64;
        if rem == 0 {
            return Some(clamped);
        }
        let down = clamped - rem;
        let up = down.saturating_add(self.align);
        if up <= legal.hi && (up - v) < (v - down) {
            Some(up)
        } else {
            Some(down)
        }
    }
}

/// A conjunction of literals and range constraints describing (part of)
/// a program path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// The literals, in the order the branches were executed.
    pub lits: Vec<Lit>,
    /// First-class range constraints (concretization bounds).
    pub ranges: Vec<RangeConstraint>,
}

impl ConstraintSet {
    /// An empty (trivially satisfiable) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a literal.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Appends a range constraint.
    pub fn push_range(&mut self, rc: RangeConstraint) {
        self.ranges.push(rc);
    }

    /// Number of literals (the scheduling depth; range constraints are
    /// concretization side-conditions, not branch decisions, and are
    /// counted by [`n_constraints`](Self::n_constraints)).
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Total constraints: literals plus range constraints.
    pub fn n_constraints(&self) -> usize {
        self.lits.len() + self.ranges.len()
    }

    /// True when the set carries range constraints (and therefore has a
    /// pinned fallback variant).
    pub fn has_ranges(&self) -> bool {
        !self.ranges.is_empty()
    }

    /// True if there are no literals and no range constraints.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty() && self.ranges.is_empty()
    }

    /// The hard-pinned variant: every range constraint replaced by an
    /// equality literal on its observed witness value. This is the
    /// pre-generalization behavior, used as a fallback when the bounded
    /// form defeats the (incomplete) stochastic search. The pins go
    /// *before* the path literals: they are trivially invertible, and the
    /// solver's repair loop works items in order, so pins-first lets one
    /// inversion each re-establish the observed addresses before the
    /// search attacks the branch literals.
    pub fn pinned(&self, arena: &mut ExprArena) -> ConstraintSet {
        let mut lits = Vec::with_capacity(self.lits.len() + self.ranges.len());
        for rc in &self.ranges {
            let c = arena.constant(rc.observed);
            let eq = arena.bin(Op::Eq, rc.expr, c);
            lits.push(Lit {
                expr: eq,
                positive: true,
            });
        }
        lits.extend(self.lits.iter().copied());
        ConstraintSet {
            lits,
            ranges: Vec::new(),
        }
    }

    /// The set consisting of the first `n` literals plus the negation of
    /// literal `n` — the paper's pending-set construction. Range
    /// constraints are carried over unchanged (they are side-conditions
    /// of the whole prefix, not branch decisions).
    pub fn negate_at(&self, n: usize) -> ConstraintSet {
        let mut lits: Vec<Lit> = self.lits[..n].to_vec();
        lits.push(self.lits[n].negated());
        ConstraintSet {
            lits,
            ranges: self.ranges.clone(),
        }
    }

    /// Whether all literals and range constraints hold under an
    /// assignment.
    pub fn satisfied(&self, arena: &ExprArena, assign: &[i64]) -> bool {
        self.lits.iter().all(|l| l.holds(arena, assign))
            && self.ranges.iter().all(|r| r.holds(arena, assign))
    }

    /// Number of satisfied literals (search objective).
    pub fn n_satisfied(&self, arena: &ExprArena, assign: &[i64]) -> usize {
        self.lits.iter().filter(|l| l.holds(arena, assign)).count()
    }

    /// Index of the first unsatisfied literal, if any.
    pub fn first_unsat(&self, arena: &ExprArena, assign: &[i64]) -> Option<usize> {
        self.lits.iter().position(|l| !l.holds(arena, assign))
    }

    /// Cheap refutation by interval analysis: returns `true` only when
    /// some literal or range constraint can *never* hold given the
    /// variable domains.
    pub fn obviously_unsat(&self, arena: &ExprArena) -> bool {
        self.obviously_unsat_cached(arena, 0, None)
    }

    /// [`obviously_unsat`](Self::obviously_unsat) with prefix-cache
    /// support: the first `skip_lits` literals are a registered
    /// satisfied prefix — each held under some executed run's concrete
    /// assignment, so its per-literal check is provably false and is
    /// skipped outright. Remaining literals and every range constraint
    /// read their forward interval from the cache when banked (the
    /// interval is a pure function of immutable node content, so the
    /// memoized value is the computed one). Verdict-identical to the
    /// plain form by construction.
    pub fn obviously_unsat_cached(
        &self,
        arena: &ExprArena,
        skip_lits: usize,
        cache: Option<&crate::cache::PrefixCache>,
    ) -> bool {
        let range_of = |e: ExprRef| -> Interval {
            cache
                .and_then(|c| c.range_of(e))
                .unwrap_or_else(|| range(arena, e))
        };
        self.lits.iter().skip(skip_lits).any(|l| {
            let r = range_of(l.expr);
            if l.positive {
                r.is_zero()
            } else {
                !r.contains(0)
            }
        }) || self.ranges.iter().any(|rc| {
            let r = range_of(rc.expr);
            match r.intersect(&rc.interval()) {
                None => true,
                Some(meet) => meet.align_to(rc.align, rc.phase).is_none(),
            }
        })
    }

    /// Renders the conjunction for diagnostics.
    pub fn display(&self, arena: &ExprArena) -> String {
        let mut parts: Vec<String> = self
            .lits
            .iter()
            .map(|l| {
                if l.positive {
                    arena.display(l.expr)
                } else {
                    format!("!{}", arena.display(l.expr))
                }
            })
            .collect();
        for rc in &self.ranges {
            let e = arena.display(rc.expr);
            let mut s = format!("{} <= {e} <= {}", rc.lo, rc.hi);
            if rc.align > 1 {
                s.push_str(&format!(
                    " (mod {} = {})",
                    rc.align,
                    rc.phase.rem_euclid(rc.align)
                ));
            }
            parts.push(s);
        }
        parts.join(" && ")
    }
}

/// Range of a literal's expression (re-exported convenience).
pub fn lit_range(arena: &ExprArena, lit: &Lit) -> Interval {
    range(arena, lit.expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;
    use crate::op::Op;

    fn setup() -> (ExprArena, ExprRef, ExprRef) {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let (_, y) = a.fresh_var(VarInfo::byte());
        (a, x, y)
    }

    #[test]
    fn negate_at_builds_pending_set() {
        let (mut a, x, y) = setup();
        let c65 = a.constant(65);
        let c66 = a.constant(66);
        let l1 = Lit {
            expr: a.bin(Op::Eq, x, c65),
            positive: true,
        };
        let l2 = Lit {
            expr: a.bin(Op::Eq, y, c66),
            positive: true,
        };
        let mut cs = ConstraintSet::new();
        cs.push(l1);
        cs.push(l2);
        let pending = cs.negate_at(1);
        assert_eq!(pending.lits.len(), 2);
        assert_eq!(pending.lits[0], l1);
        assert_eq!(pending.lits[1], l2.negated());
    }

    #[test]
    fn satisfaction_counting() {
        let (mut a, x, y) = setup();
        let c1 = a.constant(10);
        let c2 = a.constant(20);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, x, c1),
            positive: true,
        });
        cs.push(Lit {
            expr: a.bin(Op::Eq, y, c2),
            positive: true,
        });
        assert!(cs.satisfied(&a, &[10, 20]));
        assert_eq!(cs.n_satisfied(&a, &[10, 99]), 1);
        assert_eq!(cs.first_unsat(&a, &[10, 99]), Some(1));
        assert_eq!(cs.first_unsat(&a, &[10, 20]), None);
    }

    #[test]
    fn obvious_unsat_detected() {
        let (mut a, x, _) = setup();
        let big = a.constant(10_000);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Gt, x, big), // byte > 10000
            positive: true,
        });
        assert!(cs.obviously_unsat(&a));
    }

    #[test]
    fn negative_literal_semantics() {
        let (mut a, x, _) = setup();
        let c = a.constant(65);
        let lit = Lit {
            expr: a.bin(Op::Eq, x, c),
            positive: false,
        };
        assert!(lit.holds(&a, &[66]));
        assert!(!lit.holds(&a, &[65]));
    }

    #[test]
    fn display_is_readable() {
        let (mut a, x, _) = setup();
        let c = a.constant(65);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, x, c),
            positive: false,
        });
        assert_eq!(cs.display(&a), "!(in0 == 65)");
    }
}
