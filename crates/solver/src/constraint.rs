//! Constraint sets: conjunctions of path-condition literals.
//!
//! A concolic run produces one literal per symbolic branch executed: the
//! branch condition expression, asserted true or false according to the
//! direction taken. A *pending* constraint set (paper §3.1) is the prefix
//! of a run's constraints with the final literal negated — solving it
//! yields an input that drives execution down the other side of that
//! branch.

use crate::arena::{ExprArena, ExprRef};
use crate::interval::{range, Interval};

/// One literal: an expression asserted truthy (`positive`) or falsy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// The condition expression.
    pub expr: ExprRef,
    /// `true` ⇒ assert `expr != 0`; `false` ⇒ assert `expr == 0`.
    pub positive: bool,
}

impl Lit {
    /// The same condition asserted the other way.
    pub fn negated(self) -> Lit {
        Lit {
            expr: self.expr,
            positive: !self.positive,
        }
    }

    /// Whether the literal holds under an assignment.
    pub fn holds(&self, arena: &ExprArena, assign: &[i64]) -> bool {
        (arena.eval(self.expr, assign) != 0) == self.positive
    }
}

/// A conjunction of literals describing (part of) a program path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// The literals, in the order the branches were executed.
    pub lits: Vec<Lit>,
}

impl ConstraintSet {
    /// An empty (trivially satisfiable) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a literal.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True if there are no literals.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The set consisting of the first `n` literals plus the negation of
    /// literal `n` — the paper's pending-set construction.
    pub fn negate_at(&self, n: usize) -> ConstraintSet {
        let mut lits: Vec<Lit> = self.lits[..n].to_vec();
        lits.push(self.lits[n].negated());
        ConstraintSet { lits }
    }

    /// Whether all literals hold under an assignment.
    pub fn satisfied(&self, arena: &ExprArena, assign: &[i64]) -> bool {
        self.lits.iter().all(|l| l.holds(arena, assign))
    }

    /// Number of satisfied literals (search objective).
    pub fn n_satisfied(&self, arena: &ExprArena, assign: &[i64]) -> usize {
        self.lits.iter().filter(|l| l.holds(arena, assign)).count()
    }

    /// Index of the first unsatisfied literal, if any.
    pub fn first_unsat(&self, arena: &ExprArena, assign: &[i64]) -> Option<usize> {
        self.lits.iter().position(|l| !l.holds(arena, assign))
    }

    /// Cheap refutation by interval analysis: returns `true` only when
    /// some literal can *never* hold given the variable domains.
    pub fn obviously_unsat(&self, arena: &ExprArena) -> bool {
        self.lits.iter().any(|l| {
            let r = range(arena, l.expr);
            if l.positive {
                r.is_zero()
            } else {
                !r.contains(0)
            }
        })
    }

    /// Renders the conjunction for diagnostics.
    pub fn display(&self, arena: &ExprArena) -> String {
        let parts: Vec<String> = self
            .lits
            .iter()
            .map(|l| {
                if l.positive {
                    arena.display(l.expr)
                } else {
                    format!("!{}", arena.display(l.expr))
                }
            })
            .collect();
        parts.join(" && ")
    }
}

/// Range of a literal's expression (re-exported convenience).
pub fn lit_range(arena: &ExprArena, lit: &Lit) -> Interval {
    range(arena, lit.expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;
    use crate::op::Op;

    fn setup() -> (ExprArena, ExprRef, ExprRef) {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let (_, y) = a.fresh_var(VarInfo::byte());
        (a, x, y)
    }

    #[test]
    fn negate_at_builds_pending_set() {
        let (mut a, x, y) = setup();
        let c65 = a.constant(65);
        let c66 = a.constant(66);
        let l1 = Lit {
            expr: a.bin(Op::Eq, x, c65),
            positive: true,
        };
        let l2 = Lit {
            expr: a.bin(Op::Eq, y, c66),
            positive: true,
        };
        let mut cs = ConstraintSet::new();
        cs.push(l1);
        cs.push(l2);
        let pending = cs.negate_at(1);
        assert_eq!(pending.lits.len(), 2);
        assert_eq!(pending.lits[0], l1);
        assert_eq!(pending.lits[1], l2.negated());
    }

    #[test]
    fn satisfaction_counting() {
        let (mut a, x, y) = setup();
        let c1 = a.constant(10);
        let c2 = a.constant(20);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, x, c1),
            positive: true,
        });
        cs.push(Lit {
            expr: a.bin(Op::Eq, y, c2),
            positive: true,
        });
        assert!(cs.satisfied(&a, &[10, 20]));
        assert_eq!(cs.n_satisfied(&a, &[10, 99]), 1);
        assert_eq!(cs.first_unsat(&a, &[10, 99]), Some(1));
        assert_eq!(cs.first_unsat(&a, &[10, 20]), None);
    }

    #[test]
    fn obvious_unsat_detected() {
        let (mut a, x, _) = setup();
        let big = a.constant(10_000);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Gt, x, big), // byte > 10000
            positive: true,
        });
        assert!(cs.obviously_unsat(&a));
    }

    #[test]
    fn negative_literal_semantics() {
        let (mut a, x, _) = setup();
        let c = a.constant(65);
        let lit = Lit {
            expr: a.bin(Op::Eq, x, c),
            positive: false,
        };
        assert!(lit.holds(&a, &[66]));
        assert!(!lit.holds(&a, &[65]));
    }

    #[test]
    fn display_is_readable() {
        let (mut a, x, _) = setup();
        let c = a.constant(65);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, x, c),
            positive: false,
        });
        assert_eq!(cs.display(&a), "!(in0 == 65)");
    }
}
