//! Operator set and total concrete evaluation.
//!
//! The solver's operators mirror the VM's (wrapping 64-bit arithmetic,
//! comparisons producing 0/1) with one deliberate difference: division and
//! remainder by zero evaluate to 0 instead of trapping. Constraints are
//! only ever collected from paths that executed without trapping, but the
//! *search* may try assignments that would divide by zero; total semantics
//! keep evaluation defined there (documented unsoundness that never
//! affects satisfying assignments found for trap-free paths).

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Op {
    /// True for the six comparison operators (result is 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(self, Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Op {
        match self {
            Op::Lt => Op::Gt,
            Op::Le => Op::Ge,
            Op::Gt => Op::Lt,
            Op::Ge => Op::Le,
            other => other,
        }
    }

    /// The negated comparison (`!(a < b)` ⇔ `a >= b`), if any.
    pub fn negated(self) -> Option<Op> {
        Some(match self {
            Op::Eq => Op::Ne,
            Op::Ne => Op::Eq,
            Op::Lt => Op::Ge,
            Op::Le => Op::Gt,
            Op::Gt => Op::Le,
            Op::Ge => Op::Lt,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 becomes 1, nonzero becomes 0).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Evaluates a binary operation with total semantics.
pub fn eval_op(op: Op, a: i64, b: i64) -> i64 {
    match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Op::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Shl => a.wrapping_shl((b & 63) as u32),
        Op::Shr => a.wrapping_shr((b & 63) as u32),
        Op::Eq => (a == b) as i64,
        Op::Ne => (a != b) as i64,
        Op::Lt => (a < b) as i64,
        Op::Le => (a <= b) as i64,
        Op::Gt => (a > b) as i64,
        Op::Ge => (a >= b) as i64,
    }
}

/// Evaluates a unary operation.
pub fn eval_unop(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::BitNot => !a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_division() {
        assert_eq!(eval_op(Op::Div, 7, 0), 0);
        assert_eq!(eval_op(Op::Rem, 7, 0), 0);
        assert_eq!(eval_op(Op::Div, 7, 2), 3);
    }

    #[test]
    fn negated_comparisons_are_involutions() {
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            let n = op.negated().unwrap();
            assert_eq!(n.negated(), Some(op));
            // Semantics: negation flips the truth value on samples.
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(eval_op(op, a, b) == 1, eval_op(n, a, b) == 0);
            }
        }
        assert_eq!(Op::Add.negated(), None);
    }

    #[test]
    fn swapped_comparisons_agree() {
        for (a, b) in [(1, 2), (2, 1), (5, 5)] {
            assert_eq!(eval_op(Op::Lt, a, b), eval_op(Op::Gt, b, a));
            assert_eq!(eval_op(Op::Le, a, b), eval_op(Op::Ge, b, a));
        }
    }
}
