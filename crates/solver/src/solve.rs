//! The constraint solver.
//!
//! A finite-domain solver tuned for the constraints concolic execution of
//! parsers and utilities produces: long conjunctions of (in)equalities
//! over input bytes, usually with a satisfying seed one literal away
//! (the concolic loop negates the last literal of a path that the current
//! input already satisfies).
//!
//! The pipeline per [`solve`] call:
//!
//! 1. **Interval refutation** — reject sets with a literal that can never
//!    hold under the variable domains.
//! 2. **Inversion repair** — walk the first unsatisfied literal's
//!    expression top-down, algebraically inverting `+`, `-`, `*`, `^`,
//!    masks and negations to compute the variable value that satisfies a
//!    comparison directly. This solves the common `input[i] == 'G'`,
//!    `len > 40`, `x*10+d == 123` shapes in O(depth).
//! 3. **Incremental stochastic search** — WalkSAT-style: maintain per-
//!    literal satisfaction flags and a variable→literal adjacency index;
//!    each move re-evaluates only the literals depending on the mutated
//!    variable (with a generation-stamped shared memo). Deterministic via
//!    an internal xorshift PRNG seeded by the caller.
//!
//! First-class [`RangeConstraint`]s ride the same pipeline: backward
//! interval propagation ([`propagate`]) narrows the variable domains
//! before the search (step 1.5 — an empty domain is a sound UNSAT proof),
//! range items participate in the satisfaction count, and their repair
//! move snaps the expression to the nearest admissible value. When the
//! bounded form defeats the (incomplete) search, [`solve_or_pin`] retries
//! with every range collapsed to its observed-value pin — the
//! pre-generalization behavior.

use crate::arena::{Evaluator, ExprArena, ExprRef, Node, VarId, VarInfo};
use crate::cache::PrefixCache;
use crate::constraint::{ConstraintSet, RangeConstraint};
use crate::interval::propagate;
use crate::op::Op;
use crate::op::UnOp;
use std::collections::HashMap;

/// The 64-bit golden-ratio constant (`2^64 / φ`), the standard
/// multiplicative seed-mixing step.
pub const GOLDEN_RATIO: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives a decorrelated seed from a base seed and a salt (run index,
/// solver-call counter, restart number …). One documented home for the
/// golden-ratio mixing that was previously copy-pasted per engine.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    seed ^ GOLDEN_RATIO.wrapping_mul(salt.wrapping_add(1))
}

/// Configuration for a [`solve`] call.
#[derive(Debug, Clone)]
pub struct SolveCfg {
    /// Maximum search iterations before giving up.
    pub max_iters: usize,
    /// PRNG seed (the solver is fully deterministic given this).
    pub seed: u64,
    /// Restart the search from a fresh random assignment every this many
    /// non-improving iterations.
    pub restart_after: usize,
}

impl Default for SolveCfg {
    fn default() -> Self {
        SolveCfg {
            max_iters: 20_000,
            seed: 0x5eed,
            restart_after: 400,
        }
    }
}

/// Outcome statistics of a solve call (for the evaluation harness).
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Iterations spent.
    pub iters: usize,
    /// Literals repaired by algebraic inversion.
    pub inversions: usize,
    /// Random restarts taken.
    pub restarts: usize,
    /// The set was *proved* unsatisfiable (interval refutation or empty
    /// propagated domain) rather than merely not solved within budget.
    pub refuted: bool,
    /// [`solve_or_pin`] had to fall back to the hard-pinned variant.
    pub pin_fallback: bool,
    /// The prefix cache matched a non-empty satisfied prefix.
    pub prefix_hit: bool,
    /// Literals whose per-literal refutation work the prefix cache
    /// skipped (the matched prefix length).
    pub prefix_lits_saved: u64,
}

/// Minimal deterministic PRNG (xorshift64*), dependency-free.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a PRNG from a nonzero-ified seed.
    pub fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform value in the inclusive range.
    pub fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        if lo >= hi {
            return lo;
        }
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }
}

/// Attempts to find an assignment satisfying `cs`.
///
/// `seed_assign`, when given, initializes the search (concolic callers
/// pass the previous run's concrete input). Returns the satisfying
/// assignment indexed by `VarId`.
pub fn solve(
    arena: &ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
) -> Option<Vec<i64>> {
    solve_with_stats(arena, cs, seed_assign, cfg).0
}

/// One search item: a path literal or a first-class range constraint.
/// Items `0..cs.len()` are literals; the rest are ranges, in order.
#[derive(Clone, Copy)]
enum Item {
    Lit(crate::constraint::Lit),
    Range(RangeConstraint),
}

impl Item {
    fn expr(&self) -> ExprRef {
        match self {
            Item::Lit(l) => l.expr,
            Item::Range(r) => r.expr,
        }
    }
}

struct Search<'a> {
    arena: &'a ExprArena,
    items: Vec<Item>,
    /// Narrowed per-variable domains (from interval propagation).
    domains: Vec<VarInfo>,
    ev: Evaluator,
    assign: Vec<i64>,
    sat: Vec<bool>,
    n_sat: usize,
    supports: Vec<Vec<VarId>>,
    var_lits: HashMap<VarId, Vec<usize>>,
}

impl<'a> Search<'a> {
    fn new(
        arena: &'a ExprArena,
        cs: &'a ConstraintSet,
        domains: Vec<VarInfo>,
        assign: Vec<i64>,
        cache: Option<&PrefixCache>,
    ) -> Self {
        let items: Vec<Item> = cs
            .lits
            .iter()
            .map(|l| Item::Lit(*l))
            .chain(cs.ranges.iter().map(|r| Item::Range(*r)))
            .collect();
        // Supports are pure functions of immutable node content: a
        // banked support (registered when the expression's run was
        // executed) is the value `arena.support` would compute. The
        // negated tail literal shares its expression with the registered
        // positive form, so divergent tails hit too.
        let supports: Vec<Vec<VarId>> = items
            .iter()
            .map(|l| match cache.and_then(|c| c.support_of(l.expr())) {
                Some(s) => s.to_vec(),
                None => arena.support(l.expr()),
            })
            .collect();
        let mut var_lits: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (i, sup) in supports.iter().enumerate() {
            for v in sup {
                var_lits.entry(*v).or_default().push(i);
            }
        }
        let n = items.len();
        let mut s = Search {
            arena,
            items,
            domains,
            ev: Evaluator::new(arena),
            assign,
            sat: vec![false; n],
            n_sat: 0,
            supports,
            var_lits,
        };
        s.recompute_all();
        s
    }

    fn lit_holds(&mut self, i: usize) -> bool {
        match self.items[i] {
            Item::Lit(lit) => {
                (self.ev.eval(self.arena, lit.expr, &self.assign) != 0) == lit.positive
            }
            Item::Range(rc) => rc.admits(self.ev.eval(self.arena, rc.expr, &self.assign)),
        }
    }

    fn recompute_all(&mut self) {
        self.ev.invalidate();
        self.n_sat = 0;
        for i in 0..self.items.len() {
            let h = self.lit_holds(i);
            self.sat[i] = h;
            if h {
                self.n_sat += 1;
            }
        }
    }

    /// Re-evaluates only the literals depending on `var`.
    fn update_var(&mut self, var: VarId) {
        self.ev.invalidate();
        let lits = match self.var_lits.get(&var) {
            Some(l) => l.clone(),
            None => return,
        };
        for i in lits {
            let h = self.lit_holds(i);
            if h != self.sat[i] {
                self.sat[i] = h;
                if h {
                    self.n_sat += 1;
                } else {
                    self.n_sat -= 1;
                }
            }
        }
    }

    /// Satisfaction delta of setting `var` to `value` (state restored).
    fn probe(&mut self, var: VarId, value: i64) -> i64 {
        let old = self.assign[var.0 as usize];
        if old == value {
            return 0;
        }
        self.assign[var.0 as usize] = value;
        self.ev.invalidate();
        let mut delta = 0i64;
        if let Some(lits) = self.var_lits.get(&var) {
            for i in lits.clone() {
                let h = self.lit_holds(i);
                if h != self.sat[i] {
                    delta += if h { 1 } else { -1 };
                }
            }
        }
        self.assign[var.0 as usize] = old;
        self.ev.invalidate();
        delta
    }

    fn set_var(&mut self, var: VarId, value: i64) {
        if self.assign[var.0 as usize] != value {
            self.assign[var.0 as usize] = value;
            self.update_var(var);
        }
    }

    fn first_unsat(&self) -> Option<usize> {
        self.sat.iter().position(|s| !*s)
    }
}

/// Like [`solve`], also returning search statistics.
pub fn solve_with_stats(
    arena: &ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
) -> (Option<Vec<i64>>, SolveStats) {
    solve_with_stats_cached(arena, cs, seed_assign, cfg, None)
}

/// [`solve_with_stats`] with a [`PrefixCache`]: per-literal refutation
/// work for the matched satisfied prefix is skipped, banked intervals /
/// supports / propagation states are reused, and the hit is reported in
/// the stats. Every shortcut is provably outcome-identical (see the
/// cache module docs), so the verdict, model and refutation flag are
/// bit-identical to the uncached call.
pub fn solve_with_stats_cached(
    arena: &ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
    cache: Option<&PrefixCache>,
) -> (Option<Vec<i64>>, SolveStats) {
    let mut stats = SolveStats::default();
    let skip = cache.map_or(0, |c| c.sat_prefix_len(&cs.lits));
    stats.prefix_hit = skip > 0;
    stats.prefix_lits_saved = skip as u64;
    if cs.obviously_unsat_cached(arena, skip, cache) {
        stats.refuted = true;
        return (None, stats);
    }
    // Backward interval propagation: narrow the variable domains under
    // the range constraints; an empty domain is a sound UNSAT proof.
    // A banked propagation state for this exact range vector replays
    // the narrowing instead of re-deriving it.
    let domains = match cache.and_then(|c| c.propagate_cached(arena, &cs.ranges)) {
        Some(d) => d,
        None => match propagate(arena, cs) {
            Some(d) => d,
            None => {
                stats.refuted = true;
                return (None, stats);
            }
        },
    };
    // Re-run the literal refutation under the narrowed domains — this is
    // where a branch literal contradicting a region bound is caught.
    if cs.has_ranges()
        && cs.lits.iter().any(|l| {
            let r = crate::interval::range_in(arena, l.expr, &domains);
            if l.positive {
                r.is_zero()
            } else {
                !r.contains(0)
            }
        })
    {
        stats.refuted = true;
        return (None, stats);
    }
    let n_vars = arena.n_vars();
    let init: Vec<i64> = (0..n_vars)
        .map(|i| {
            let info = domains.get(i).copied().unwrap_or(VarInfo::byte());
            match seed_assign.and_then(|s| s.get(i)) {
                Some(v) => info.clamp(*v),
                None => info.clamp(0),
            }
        })
        .collect();
    let n_items = cs.n_constraints();
    let mut search = Search::new(arena, cs, domains, init, cache);
    if search.n_sat == n_items {
        return (Some(search.assign), stats);
    }
    // A constant-false item (empty support) can never be repaired.
    for (i, sup) in search.supports.iter().enumerate() {
        if sup.is_empty() && !search.sat[i] {
            stats.refuted = true;
            return (None, stats);
        }
    }

    let mut rng = XorShift::new(cfg.seed);
    let mut best = search.assign.clone();
    let mut best_score = search.n_sat;
    let mut since_improvement = 0usize;

    for iter in 0..cfg.max_iters {
        stats.iters = iter + 1;
        let Some(unsat_idx) = search.first_unsat() else {
            return (Some(search.assign), stats);
        };
        let item = search.items[unsat_idx];

        // Phase 1: algebraic repair of the violated item — inversion of a
        // literal, or snapping a range's expression to the nearest
        // admissible value.
        // The placeholder is swapped back before any use: don't size it.
        let mut ev = std::mem::replace(&mut search.ev, Evaluator::empty());
        ev.invalidate();
        let changed = match item {
            Item::Lit(lit) => invert_lit(
                arena,
                lit.expr,
                lit.positive,
                &mut search.assign,
                &search.domains,
                &mut ev,
                &mut rng,
            ),
            Item::Range(rc) => {
                let cur = ev.eval(arena, rc.expr, &search.assign);
                // Mostly snap from the current value; sometimes aim at
                // the observed witness to escape local minima.
                let target = if rng.below(4) == 0 {
                    rc.snap(rc.observed)
                } else {
                    rc.snap(cur)
                };
                target.and_then(|t| {
                    invert_value(
                        arena,
                        rc.expr,
                        t,
                        &mut search.assign,
                        &search.domains,
                        &mut ev,
                    )
                })
            }
        };
        search.ev = ev;
        if let Some(var) = changed {
            stats.inversions += 1;
            search.update_var(var);
        }

        // Phase 2: if the item is still violated, do a WalkSAT move on
        // one of its support variables.
        if !search.sat[unsat_idx] {
            let support = &search.supports[unsat_idx];
            if support.is_empty() {
                return (None, stats);
            }
            let var = support[rng.below(support.len())];
            let info = search.domains[var.0 as usize];
            let candidates = candidate_values(arena, item.expr(), &mut rng, info.lo, info.hi);
            let mut best_v = None;
            let mut best_delta = i64::MIN;
            for cand in candidates {
                let d = search.probe(var, cand);
                if d > best_delta {
                    best_delta = d;
                    best_v = Some(cand);
                }
            }
            match best_v {
                Some(v) if best_delta > 0 || rng.below(4) != 0 => {
                    // Greedy or sideways/noise move.
                    search.set_var(var, v);
                }
                _ => {
                    // Pure exploration.
                    let v = rng.in_range(info.lo, info.hi);
                    search.set_var(var, v);
                }
            }
        }

        if search.n_sat == n_items {
            return (Some(search.assign), stats);
        }
        if search.n_sat > best_score {
            best_score = search.n_sat;
            best = search.assign.clone();
            since_improvement = 0;
        } else {
            since_improvement += 1;
            if since_improvement >= cfg.restart_after {
                stats.restarts += 1;
                since_improvement = 0;
                if rng.below(2) == 0 {
                    search.assign = best.clone();
                } else {
                    for i in 0..n_vars {
                        let info = search.domains[i];
                        search.assign[i] = rng.in_range(info.lo, info.hi);
                    }
                }
                search.recompute_all();
            }
        }
    }
    (None, stats)
}

/// [`solve`], with the pin fallback: when a set carrying range
/// constraints is not solved within budget (and was not *refuted* — a
/// refuted bounded form implies the stricter pinned form is unsatisfiable
/// too), retry with every range collapsed to its observed-value equality
/// pin. This restores the pre-generalization behavior exactly when
/// generality does not pay.
///
/// The iteration budget is *split* between the two attempts (bounded
/// first, pinned with whatever remains), so an unsatisfiable set costs no
/// more search than it did before ranges existed — the generalization
/// must not tax the UNSAT-heavy replay workloads twice.
pub fn solve_or_pin(
    arena: &mut ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
) -> (Option<Vec<i64>>, SolveStats) {
    solve_or_pin_cached(arena, cs, seed_assign, cfg, None)
}

/// [`solve_or_pin`] with a [`PrefixCache`]. The prefix-hit stats come
/// from the bounded attempt only: one outer call counts as one cache
/// hit or miss, and the pinned retry's prepended `Eq` pins shift every
/// literal position, so its prefix never matches a banked path anyway.
pub fn solve_or_pin_cached(
    arena: &mut ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
    cache: Option<&PrefixCache>,
) -> (Option<Vec<i64>>, SolveStats) {
    if !cs.has_ranges() {
        return solve_with_stats_cached(arena, cs, seed_assign, cfg, cache);
    }
    let bounded_cfg = SolveCfg {
        max_iters: (cfg.max_iters / 2).max(1),
        ..cfg.clone()
    };
    let (model, mut stats) = solve_with_stats_cached(arena, cs, seed_assign, &bounded_cfg, cache);
    if model.is_some() || stats.refuted {
        return (model, stats);
    }
    let pinned = cs.pinned(arena);
    let pin_cfg = SolveCfg {
        max_iters: cfg.max_iters.saturating_sub(stats.iters).max(1),
        ..cfg.clone()
    };
    let (model, pin_stats) = solve_with_stats_cached(arena, &pinned, seed_assign, &pin_cfg, cache);
    stats.iters += pin_stats.iters;
    stats.inversions += pin_stats.inversions;
    stats.restarts += pin_stats.restarts;
    stats.pin_fallback = true;
    (model, stats)
}

/// [`solve_or_pin`] against a *shared, read-only* arena — the form the
/// parallel solve phase needs, where several worker threads solve
/// speculatively popped sets against one central arena at once.
///
/// The rare pin fallback builds its `Eq` pins in a private clone of the
/// arena instead of interning them centrally, so the central arena's
/// node numbering never depends on how many sets were solved
/// speculatively (or on which solves stalled) — that independence is
/// what keeps worker-count-invariant sessions bit-identical. Verdicts
/// and models are the same as [`solve_or_pin`]'s: the pinned variant is
/// built from the same arena state, and solving is insensitive to
/// whether the pin nodes persist afterwards.
pub fn solve_or_pin_ro(
    arena: &ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
) -> (Option<Vec<i64>>, SolveStats) {
    solve_or_pin_ro_cached(arena, cs, seed_assign, cfg, None)
}

/// [`solve_or_pin_ro`] with a [`PrefixCache`] — the form the engines'
/// solve phases use, serial and parallel alike. Workers share the cache
/// by reference against the frozen central arena; the scratch clone the
/// pin fallback builds shares the frozen prefix by refcount, so banked
/// entries (keyed on prefix handles) stay valid inside it.
pub fn solve_or_pin_ro_cached(
    arena: &ExprArena,
    cs: &ConstraintSet,
    seed_assign: Option<&[i64]>,
    cfg: &SolveCfg,
    cache: Option<&PrefixCache>,
) -> (Option<Vec<i64>>, SolveStats) {
    if !cs.has_ranges() {
        return solve_with_stats_cached(arena, cs, seed_assign, cfg, cache);
    }
    let bounded_cfg = SolveCfg {
        max_iters: (cfg.max_iters / 2).max(1),
        ..cfg.clone()
    };
    let (model, mut stats) = solve_with_stats_cached(arena, cs, seed_assign, &bounded_cfg, cache);
    if model.is_some() || stats.refuted {
        return (model, stats);
    }
    let mut scratch = arena.clone();
    let pinned = cs.pinned(&mut scratch);
    let pin_cfg = SolveCfg {
        max_iters: cfg.max_iters.saturating_sub(stats.iters).max(1),
        ..cfg.clone()
    };
    let (model, pin_stats) =
        solve_with_stats_cached(&scratch, &pinned, seed_assign, &pin_cfg, cache);
    stats.iters += pin_stats.iters;
    stats.inversions += pin_stats.inversions;
    stats.restarts += pin_stats.restarts;
    stats.pin_fallback = true;
    (model, stats)
}

/// Tries to make `expr` truthy (`positive`) or falsy by direct inversion.
/// Returns the variable it assigned, if any.
fn invert_lit(
    arena: &ExprArena,
    expr: ExprRef,
    positive: bool,
    assign: &mut [i64],
    domains: &[VarInfo],
    ev: &mut Evaluator,
    rng: &mut XorShift,
) -> Option<VarId> {
    match arena.node(expr) {
        Node::Un(UnOp::Not, inner) => invert_lit(arena, inner, !positive, assign, domains, ev, rng),
        Node::Bin(op, lhs, rhs) if op.is_comparison() => {
            // Normalize to `sym REL const` when possible.
            let (sym, cst, rel) = if arena.support(rhs).is_empty() {
                (lhs, ev.eval(arena, rhs, assign), op)
            } else if arena.support(lhs).is_empty() {
                (rhs, ev.eval(arena, lhs, assign), op.swapped())
            } else {
                // Both sides symbolic: invert the left against the right's
                // current value (heuristic).
                (lhs, ev.eval(arena, rhs, assign), op)
            };
            let rel = if positive { rel } else { rel.negated()? };
            let target = match rel {
                Op::Eq => cst,
                Op::Ne => {
                    if rng.below(2) == 0 {
                        cst.wrapping_add(1)
                    } else {
                        cst.wrapping_sub(1)
                    }
                }
                Op::Lt => cst.wrapping_sub(1),
                Op::Le => cst,
                Op::Gt => cst.wrapping_add(1),
                Op::Ge => cst,
                _ => unreachable!("comparison ops only"),
            };
            invert_value(arena, sym, target, assign, domains, ev)
        }
        // Raw truthiness of a non-comparison: make it 1 or 0.
        _ => {
            let target = if positive { 1 } else { 0 };
            invert_value(arena, expr, target, assign, domains, ev)
        }
    }
}

/// Tries to drive `expr` to evaluate to exactly `target` by assigning one
/// variable along an invertible spine. Returns the assigned variable.
fn invert_value(
    arena: &ExprArena,
    expr: ExprRef,
    target: i64,
    assign: &mut [i64],
    domains: &[VarInfo],
    ev: &mut Evaluator,
) -> Option<VarId> {
    match arena.node(expr) {
        Node::Var(v) => {
            let info = domains
                .get(v.0 as usize)
                .copied()
                .unwrap_or_else(|| arena.var_info(v));
            if target < info.lo || target > info.hi {
                return None;
            }
            assign[v.0 as usize] = target;
            ev.invalidate();
            Some(v)
        }
        Node::Const(_) => None,
        Node::Un(UnOp::Neg, a) => {
            invert_value(arena, a, target.wrapping_neg(), assign, domains, ev)
        }
        Node::Un(UnOp::BitNot, a) => invert_value(arena, a, !target, assign, domains, ev),
        Node::Un(UnOp::Not, a) => match target {
            1 => invert_value(arena, a, 0, assign, domains, ev),
            0 => invert_value(arena, a, 1, assign, domains, ev),
            _ => None,
        },
        Node::Bin(op, a, b) => {
            let a_concrete = arena.support(a).is_empty();
            let b_concrete = arena.support(b).is_empty();
            let va = ev.eval(arena, a, assign);
            let vb = ev.eval(arena, b, assign);
            match op {
                Op::Add => {
                    if b_concrete || !a_concrete {
                        invert_value(arena, a, target.wrapping_sub(vb), assign, domains, ev)
                    } else {
                        invert_value(arena, b, target.wrapping_sub(va), assign, domains, ev)
                    }
                }
                Op::Sub => {
                    if b_concrete || !a_concrete {
                        invert_value(arena, a, target.wrapping_add(vb), assign, domains, ev)
                    } else {
                        invert_value(arena, b, va.wrapping_sub(target), assign, domains, ev)
                    }
                }
                Op::Mul => {
                    if b_concrete && vb != 0 && target % vb == 0 {
                        invert_value(arena, a, target / vb, assign, domains, ev)
                    } else if a_concrete && va != 0 && target % va == 0 {
                        invert_value(arena, b, target / va, assign, domains, ev)
                    } else {
                        None
                    }
                }
                Op::Xor => {
                    if b_concrete {
                        invert_value(arena, a, target ^ vb, assign, domains, ev)
                    } else if a_concrete {
                        invert_value(arena, b, target ^ va, assign, domains, ev)
                    } else {
                        None
                    }
                }
                Op::And => {
                    if b_concrete && (target & !vb) == 0 {
                        invert_value(arena, a, target, assign, domains, ev)
                    } else if a_concrete && (target & !va) == 0 {
                        invert_value(arena, b, target, assign, domains, ev)
                    } else {
                        None
                    }
                }
                Op::Div => {
                    if b_concrete && vb != 0 {
                        invert_value(arena, a, target.wrapping_mul(vb), assign, domains, ev)
                    } else {
                        None
                    }
                }
                Op::Shl => {
                    if b_concrete && (0..63).contains(&vb) {
                        let shifted = target >> vb;
                        if shifted << vb == target {
                            invert_value(arena, a, shifted, assign, domains, ev)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                Op::Shr => {
                    if b_concrete && (0..63).contains(&vb) {
                        invert_value(arena, a, target << vb, assign, domains, ev)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

/// Mines candidate values for a variable from the constants appearing in
/// a violated literal (plus neighbours and domain bounds).
fn candidate_values(
    arena: &ExprArena,
    expr: ExprRef,
    rng: &mut XorShift,
    lo: i64,
    hi: i64,
) -> Vec<i64> {
    let mut out = Vec::with_capacity(16);
    let mut stack = vec![expr];
    let mut seen = std::collections::HashSet::new();
    while let Some(r) = stack.pop() {
        if !seen.insert(r) || out.len() > 24 {
            continue;
        }
        match arena.node(r) {
            Node::Const(c) => {
                for v in [c, c + 1, c - 1] {
                    if v >= lo && v <= hi && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Node::Bin(_, a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Node::Un(_, a) => stack.push(a),
            Node::Var(_) => {}
        }
    }
    for v in [lo, hi, 0] {
        if v >= lo && v <= hi && !out.contains(&v) {
            out.push(v);
        }
    }
    out.push(rng.in_range(lo, hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;
    use crate::constraint::Lit;

    fn bytes(n: usize) -> (ExprArena, Vec<ExprRef>) {
        let mut a = ExprArena::new();
        let refs = (0..n).map(|_| a.fresh_var(VarInfo::byte()).1).collect();
        (a, refs)
    }

    fn assert_solves(arena: &ExprArena, cs: &ConstraintSet, seed: Option<&[i64]>) -> Vec<i64> {
        let sol = solve(arena, cs, seed, &SolveCfg::default()).expect("solvable");
        assert!(cs.satisfied(arena, &sol), "returned model must satisfy");
        sol
    }

    #[test]
    fn solves_byte_equalities() {
        let (mut a, v) = bytes(3);
        let mut cs = ConstraintSet::new();
        for (i, ch) in b"GET".iter().enumerate() {
            let c = a.constant(*ch as i64);
            cs.push(Lit {
                expr: a.bin(Op::Eq, v[i], c),
                positive: true,
            });
        }
        let sol = assert_solves(&a, &cs, None);
        assert_eq!(&sol, &[b'G' as i64, b'E' as i64, b'T' as i64]);
    }

    #[test]
    fn solves_negated_last_literal_from_seed() {
        // The concolic pattern: prefix satisfied by seed, last negated.
        let (mut a, v) = bytes(2);
        let c65 = a.constant(65);
        let c66 = a.constant(66);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, v[0], c65),
            positive: true,
        });
        cs.push(Lit {
            expr: a.bin(Op::Eq, v[1], c66),
            positive: false, // NOT (v1 == 66)
        });
        let sol = assert_solves(&a, &cs, Some(&[65, 66]));
        assert_eq!(sol[0], 65);
        assert_ne!(sol[1], 66);
    }

    #[test]
    fn solves_linear_combination() {
        // x*10 + y == 42 (the atoi shape).
        let (mut a, v) = bytes(2);
        let ten = a.constant(10);
        let t = a.bin(Op::Mul, v[0], ten);
        let e = a.bin(Op::Add, t, v[1]);
        let c = a.constant(42);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, e, c),
            positive: true,
        });
        let sol = assert_solves(&a, &cs, None);
        assert_eq!(sol[0] * 10 + sol[1], 42);
    }

    #[test]
    fn solves_inequalities() {
        let (mut a, v) = bytes(1);
        let lo = a.constant(b'a' as i64);
        let hi = a.constant(b'z' as i64);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Ge, v[0], lo),
            positive: true,
        });
        cs.push(Lit {
            expr: a.bin(Op::Le, v[0], hi),
            positive: true,
        });
        let sol = assert_solves(&a, &cs, None);
        assert!((b'a' as i64..=b'z' as i64).contains(&sol[0]));
    }

    #[test]
    fn detects_unsat_by_interval() {
        let (mut a, v) = bytes(1);
        let big = a.constant(1000);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Gt, v[0], big),
            positive: true,
        });
        assert!(solve(&a, &cs, None, &SolveCfg::default()).is_none());
    }

    #[test]
    fn detects_contradiction() {
        let (mut a, v) = bytes(1);
        let c = a.constant(65);
        let e = a.bin(Op::Eq, v[0], c);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: e,
            positive: true,
        });
        cs.push(Lit {
            expr: e,
            positive: false,
        });
        // Not interval-refutable, but the search must fail.
        let cfg = SolveCfg {
            max_iters: 3000,
            ..SolveCfg::default()
        };
        assert!(solve(&a, &cs, None, &cfg).is_none());
    }

    #[test]
    fn solves_through_masks_and_xor() {
        let (mut a, v) = bytes(1);
        let k = a.constant(0x5a);
        let x = a.bin(Op::Xor, v[0], k);
        let c = a.constant(0x3c);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, x, c),
            positive: true,
        });
        let sol = assert_solves(&a, &cs, None);
        assert_eq!(sol[0] ^ 0x5a, 0x3c);
    }

    #[test]
    fn solves_wider_domains() {
        let mut a = ExprArena::new();
        let (_, n) = a.fresh_var(VarInfo::range(-1, 4096));
        let c = a.constant(1024);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Gt, n, c),
            positive: true,
        });
        let sol = assert_solves(&a, &cs, None);
        assert!(sol[0] > 1024 && sol[0] <= 4096);
    }

    #[test]
    fn many_literals_converge() {
        // 32 byte equalities, worst case for pure random search.
        let (mut a, v) = bytes(32);
        let mut cs = ConstraintSet::new();
        for (i, vr) in v.iter().enumerate() {
            let c = a.constant((i as i64 * 7) % 256);
            cs.push(Lit {
                expr: a.bin(Op::Eq, *vr, c),
                positive: true,
            });
        }
        let sol = assert_solves(&a, &cs, None);
        for (i, val) in sol.iter().enumerate() {
            assert_eq!(*val, (i as i64 * 7) % 256);
        }
    }

    #[test]
    fn long_conjunction_with_seed_is_fast() {
        // The hot replay shape: a long satisfied prefix plus one negated
        // tail literal must be repaired in a handful of iterations.
        let (mut a, v) = bytes(512);
        let mut cs = ConstraintSet::new();
        let mut seed = Vec::new();
        for (i, vr) in v.iter().enumerate() {
            let byte = (i as i64 * 13) % 256;
            let c = a.constant(byte);
            cs.push(Lit {
                expr: a.bin(Op::Eq, *vr, c),
                positive: true,
            });
            seed.push(byte);
        }
        // Negate the final literal.
        let last = cs.lits.len() - 1;
        cs.lits[last] = cs.lits[last].negated();
        let (sol, stats) = solve_with_stats(&a, &cs, Some(&seed), &SolveCfg::default());
        let sol = sol.expect("solvable");
        assert!(cs.satisfied(&a, &sol));
        assert!(stats.iters <= 10, "took {} iters", stats.iters);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, v) = bytes(4);
        let c = a.constant(100);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Gt, v[2], c),
            positive: true,
        });
        let s1 = solve(&a, &cs, None, &SolveCfg::default());
        let s2 = solve(&a, &cs, None, &SolveCfg::default());
        assert_eq!(s1, s2);
    }

    #[test]
    fn xorshift_changes_and_ranges() {
        let mut r = XorShift::new(42);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        for _ in 0..100 {
            let v = r.in_range(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn mix_seed_decorrelates_and_is_deterministic() {
        assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
        assert_ne!(mix_seed(7, 3), mix_seed(7, 4));
        assert_ne!(mix_seed(7, 0), 7, "salt 0 still mixes");
    }

    #[test]
    fn range_constraint_solved_with_literals() {
        // The offset-generalization shape: a region bound on an address
        // expression plus a branch literal that contradicts the observed
        // pin but not the region.
        let (mut a, v) = bytes(1);
        let two = a.constant(2);
        let off = a.bin(Op::Add, v[0], two);
        let five = a.constant(5);
        let deep = a.bin(Op::Gt, v[0], five);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::in_region(off, 0, 10, 3)); // observed x = 1
        cs.push(Lit {
            expr: deep,
            positive: true,
        });
        // Seed is the observed witness (x = 1), as engines pass it.
        let sol = solve(&a, &cs, Some(&[1]), &SolveCfg::default()).expect("solvable");
        assert!(cs.satisfied(&a, &sol));
        assert!(sol[0] > 5 && sol[0] + 2 <= 9);
    }

    #[test]
    fn aligned_range_constraint_is_respected() {
        let mut a = ExprArena::new();
        let (_, p) = a.fresh_var(VarInfo::range(0, 1 << 20));
        let mut cs = ConstraintSet::new();
        // Element pointer: base 4096, 16 elements of stride 4.
        cs.push_range(RangeConstraint::aligned(
            p,
            4096,
            4096 + 15 * 4,
            4,
            4096,
            4104,
        ));
        let sol = solve(&a, &cs, None, &SolveCfg::default()).expect("solvable");
        assert!((4096..=4156).contains(&sol[0]));
        assert_eq!((sol[0] - 4096) % 4, 0, "alignment respected: {}", sol[0]);
    }

    #[test]
    fn refuted_range_set_reports_refuted() {
        let (a, v) = bytes(1);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(v[0], 300, 400, 300)); // byte can't
        let (m, stats) = solve_with_stats(&a, &cs, None, &SolveCfg::default());
        assert!(m.is_none());
        assert!(stats.refuted, "interval refutation is a proof");
        assert_eq!(stats.iters, 0, "no search was spent");
    }

    #[test]
    fn propagation_refutes_lit_against_region() {
        // The literal demands x > 200 while the region bound keeps
        // x + 2 <= 100: only visible once domains are narrowed.
        let (mut a, v) = bytes(1);
        let two = a.constant(2);
        let off = a.bin(Op::Add, v[0], two);
        let c200 = a.constant(200);
        let deep = a.bin(Op::Gt, v[0], c200);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(off, 0, 100, 50));
        cs.push(Lit {
            expr: deep,
            positive: true,
        });
        let (m, stats) = solve_with_stats(&a, &cs, None, &SolveCfg::default());
        assert!(m.is_none());
        assert!(stats.refuted, "propagation catches lit-vs-range conflicts");
        assert_eq!(stats.iters, 0);
    }

    #[test]
    fn solve_or_pin_falls_back_when_bounded_form_stalls() {
        // A two-sided symbolic product (169 = 13 × 13, both factors
        // symbolic) that neither inversion nor a short stochastic search
        // can crack from a cold seed — but whose pinned variant is solved
        // by two trivial pin inversions.
        let (mut a, v) = bytes(2);
        let prod = a.bin(Op::Mul, v[0], v[1]);
        let c169 = a.constant(169);
        let hit = a.bin(Op::Eq, prod, c169);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(v[0], 0, 255, 13));
        cs.push_range(RangeConstraint::range(v[1], 0, 255, 13));
        cs.push(Lit {
            expr: hit,
            positive: true,
        });
        let cfg = SolveCfg {
            max_iters: 64, // plenty for the pins, hopeless for x*y == 169
            ..SolveCfg::default()
        };
        let (m, stats) = solve_or_pin(&mut a, &cs, Some(&[0, 0]), &cfg);
        let m = m.expect("pin fallback must solve via the witness values");
        assert!(stats.pin_fallback, "fallback path must be taken");
        assert_eq!(m[0] * m[1], 169);
    }

    #[test]
    fn solve_or_pin_skips_fallback_when_refuted() {
        let (mut a, v) = bytes(1);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(v[0], 300, 400, 300));
        let (m, stats) = solve_or_pin(&mut a, &cs, None, &SolveCfg::default());
        assert!(m.is_none());
        assert!(stats.refuted);
        assert!(
            !stats.pin_fallback,
            "a refuted bounded form refutes the pin too"
        );
    }

    #[test]
    fn solve_or_pin_ro_matches_mutating_variant() {
        // The fallback shape from `solve_or_pin_falls_back_when_bounded_
        // form_stalls`, solved both ways: verdict, model, and stats must
        // agree, and the read-only variant must leave the arena's node
        // count untouched (no interned pins).
        let (mut a, v) = bytes(2);
        let prod = a.bin(Op::Mul, v[0], v[1]);
        let c169 = a.constant(169);
        let hit = a.bin(Op::Eq, prod, c169);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(v[0], 0, 255, 13));
        cs.push_range(RangeConstraint::range(v[1], 0, 255, 13));
        cs.push(Lit {
            expr: hit,
            positive: true,
        });
        let cfg = SolveCfg {
            max_iters: 64,
            ..SolveCfg::default()
        };
        let nodes_before = a.len();
        let (ro_model, ro_stats) = solve_or_pin_ro(&a, &cs, Some(&[0, 0]), &cfg);
        assert_eq!(a.len(), nodes_before, "read-only variant interns nothing");
        let (mut_model, mut_stats) = solve_or_pin(&mut a, &cs, Some(&[0, 0]), &cfg);
        assert_eq!(ro_model, mut_model);
        assert!(ro_stats.pin_fallback && mut_stats.pin_fallback);
        assert_eq!(ro_stats.iters, mut_stats.iters);
        assert_eq!(ro_stats.inversions, mut_stats.inversions);
    }

    #[test]
    fn solve_or_pin_ro_without_ranges_is_plain_solve() {
        let (mut a, v) = bytes(1);
        let c = a.constant(65);
        let mut cs = ConstraintSet::new();
        cs.push(Lit {
            expr: a.bin(Op::Eq, v[0], c),
            positive: true,
        });
        let (m, stats) = solve_or_pin_ro(&a, &cs, None, &SolveCfg::default());
        assert_eq!(m.expect("solvable")[0], 65);
        assert!(!stats.pin_fallback);
    }

    #[test]
    fn pinned_variant_matches_classic_behavior() {
        let (mut a, v) = bytes(1);
        let two = a.constant(2);
        let off = a.bin(Op::Add, v[0], two);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::in_region(off, 0, 10, 3));
        let pinned = cs.pinned(&mut a);
        assert!(pinned.ranges.is_empty());
        assert_eq!(pinned.lits.len(), 1);
        let sol = solve(&a, &pinned, None, &SolveCfg::default()).expect("solvable");
        assert_eq!(sol[0] + 2, 3, "pin forces the observed offset");
    }
}
