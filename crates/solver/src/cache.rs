//! Path-prefix solve cache.
//!
//! Sibling candidates on a frontier differ by one negated tail literal:
//! almost everything a solve call does for one candidate — per-literal
//! interval refutation, backward range propagation, support collection —
//! was already done, with the same outcome, for a neighbour sharing the
//! prefix. A [`PrefixCache`] banks that work once per *executed* run and
//! lets every later solve over a shared prefix skip it.
//!
//! The cache only ever caches facts that are **provably
//! outcome-identical**, so solving with the cache on is bit-identical to
//! solving with it off (the cache-invariance suite in `retrace-bench`
//! pins this end to end):
//!
//! - *Satisfied-prefix signatures*: each registered literal held under
//!   the producing run's concrete assignment, which lies within the
//!   declared variable domains. The forward interval of that literal's
//!   expression (a sound over-approximation over those domains) must
//!   therefore contain the witness value — so the per-literal
//!   `obviously_unsat` check is provably false for every literal of a
//!   registered prefix, and skipping it cannot change the verdict.
//! - *Per-expression intervals and supports*: pure functions of the
//!   expression's node content and the variable table, both append-only
//!   and immutable once created — a cached value is valid for the rest
//!   of the session (and in any clone sharing the frozen arena prefix).
//! - *Propagation states*: [`propagate`](crate::interval::propagate())
//!   reads only the range-constraint vector and the declared domains.
//!   Its narrowing is recorded as a delta against the defaults, keyed by
//!   a signature of the *entire* range vector, and replayed onto the
//!   current (possibly longer) variable table — variables added after
//!   registration keep their defaults, exactly as a fresh propagation
//!   over the same ranges would leave them.
//!
//! Writes happen at one place only: the engines' serial bank phase
//! (`register_path`), after a run executed. Solves — including the
//! parallel workers' speculative solves — take the cache by shared
//! reference. That single-writer discipline is what makes the cache
//! counters worker-count-invariant: within a solve streak the cache
//! content is frozen, so every worker observes the same hits a serial
//! engine would.

use crate::arena::{ExprArena, ExprRef, VarId, VarInfo};
use crate::constraint::{ConstraintSet, Lit, RangeConstraint};
use crate::interval::{propagate, range, Interval};
use std::collections::{HashMap, HashSet};

/// FNV-1a 128-bit offset basis. One home for the constants the search
/// crate's dedup signatures and this cache's prefix signatures share.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// FNV-1a 128-bit prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher over `u128` words.
///
/// The exact mixing `search::signature` has always used, factored out so
/// the prefix cache can hash literal prefixes *incrementally* (one mix
/// per literal, reusing the running hash) and so the two crates cannot
/// drift apart on the constants.
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

impl Fnv128 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    /// Mixes one word: XOR, then multiply by the FNV prime.
    pub fn mix(&mut self, v: u128) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV128_PRIME);
    }

    /// The current hash value.
    pub fn value(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Propagation states are registered for every prefix of a run's range
/// vector up to this length; longer vectors register only their first
/// `MAX_RANGE_PREFIXES` prefixes. Range constraints are rare on the
/// workloads that matter (the combined rows carry none), so the cap is
/// a memory bound, not a hit-rate concern.
const MAX_RANGE_PREFIXES: usize = 32;

/// The path-prefix solve cache. See the module docs for the exactness
/// argument behind each table.
#[derive(Debug, Default)]
pub struct PrefixCache {
    /// Signatures of every satisfied literal prefix ever registered.
    sat_prefixes: HashSet<u128>,
    /// Forward interval per literal/range expression (default domains).
    expr_ranges: HashMap<ExprRef, Interval>,
    /// Support (sorted, deduped) per literal expression.
    expr_supports: HashMap<ExprRef, Vec<VarId>>,
    /// Narrowing deltas vs the default domains, keyed by a signature of
    /// the full range-constraint vector.
    range_states: HashMap<u128, Vec<(u32, VarInfo)>>,
    /// Arena generation at the last registration (diagnostics; entries
    /// stay valid across generations because nodes are immutable).
    generation: u64,
    /// Executed paths registered so far.
    paths_registered: u64,
}

/// Mixes one literal into a running prefix signature (the literal part
/// of `search::signature`'s mixing, word for word).
fn mix_lit(h: &mut Fnv128, l: &Lit) {
    h.mix(l.expr.0 as u128);
    h.mix(l.positive as u128);
}

/// Mixes one range constraint into a running signature (matching
/// `search::signature`'s range mixing; `observed` is a hint, not an
/// identity, and propagation never reads it).
fn mix_range(h: &mut Fnv128, rc: &RangeConstraint) {
    h.mix(0x5eed_0000_0000_0000u128 ^ rc.expr.0 as u128);
    h.mix(rc.lo as u128);
    h.mix(rc.hi as u128);
    h.mix(rc.align as u128);
    h.mix(rc.phase as u128);
}

impl PrefixCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The arena generation recorded by the last [`register_path`]
    /// (0 before the first registration).
    ///
    /// [`register_path`]: PrefixCache::register_path
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of executed paths registered.
    pub fn paths_registered(&self) -> u64 {
        self.paths_registered
    }

    /// Number of distinct satisfied-prefix signatures banked.
    pub fn n_prefixes(&self) -> usize {
        self.sat_prefixes.len()
    }

    /// Number of propagation states banked.
    pub fn n_range_states(&self) -> usize {
        self.range_states.len()
    }

    /// Banks one executed run's path: `lits` are the path literals in
    /// execution order (each held under the run's concrete assignment),
    /// `ranges` the concretization constraints emitted along it (each
    /// admitted the run's observed value). Every literal prefix is
    /// registered as satisfied; every literal expression gets its
    /// interval and support memoized; every range-vector prefix gets its
    /// propagation state banked.
    pub fn register_path(&mut self, arena: &ExprArena, lits: &[Lit], ranges: &[RangeConstraint]) {
        self.generation = arena.generation();
        self.paths_registered += 1;
        let mut h = Fnv128::new();
        for l in lits {
            mix_lit(&mut h, l);
            self.sat_prefixes.insert(h.value());
            self.expr_ranges
                .entry(l.expr)
                .or_insert_with(|| range(arena, l.expr));
            self.expr_supports
                .entry(l.expr)
                .or_insert_with(|| arena.support(l.expr));
        }
        let defaults = arena.var_infos();
        let mut rh = Fnv128::new();
        let mut prefix = ConstraintSet::new();
        for rc in ranges.iter().take(MAX_RANGE_PREFIXES) {
            mix_range(&mut rh, rc);
            prefix.push_range(*rc);
            let sig = rh.value();
            if self.range_states.contains_key(&sig) {
                continue;
            }
            // The run's witness satisfied every prefix of its own range
            // vector, so propagation cannot refute it; if it somehow
            // does (it would be a soundness bug elsewhere), just skip —
            // a missing entry only costs a recomputation.
            let Some(dom) = propagate(arena, &prefix) else {
                continue;
            };
            let deltas: Vec<(u32, VarInfo)> = dom
                .iter()
                .enumerate()
                .filter(|(i, d)| defaults[*i] != **d)
                .map(|(i, d)| (i as u32, *d))
                .collect();
            self.range_states.insert(sig, deltas);
        }
    }

    /// Length of the longest registered satisfied prefix of `lits`.
    /// Every literal below the returned length held, verbatim, on some
    /// executed run — the per-literal refutation check is provably false
    /// for each of them.
    pub fn sat_prefix_len(&self, lits: &[Lit]) -> usize {
        let mut h = Fnv128::new();
        let mut best = 0;
        for (i, l) in lits.iter().enumerate() {
            mix_lit(&mut h, l);
            // Registered prefixes are closed under prefix (they are
            // inserted incrementally), so the first miss ends the walk.
            if !self.sat_prefixes.contains(&h.value()) {
                break;
            }
            best = i + 1;
        }
        best
    }

    /// The memoized forward interval of an expression, if banked.
    pub fn range_of(&self, e: ExprRef) -> Option<Interval> {
        self.expr_ranges.get(&e).copied()
    }

    /// The memoized support of an expression, if banked.
    pub fn support_of(&self, e: ExprRef) -> Option<&[VarId]> {
        self.expr_supports.get(&e).map(|v| v.as_slice())
    }

    /// Reconstructs the propagation result for `ranges` from a banked
    /// state: the current default domains with the registered narrowing
    /// deltas applied. `None` on a cache miss (the caller runs the real
    /// propagation). The reconstruction is exact — see the module docs.
    pub fn propagate_cached(
        &self,
        arena: &ExprArena,
        ranges: &[RangeConstraint],
    ) -> Option<Vec<VarInfo>> {
        if ranges.is_empty() || ranges.len() > MAX_RANGE_PREFIXES {
            return None;
        }
        let mut rh = Fnv128::new();
        for rc in ranges {
            mix_range(&mut rh, rc);
        }
        let deltas = self.range_states.get(&rh.value())?;
        let mut dom = arena.var_infos().to_vec();
        for (i, info) in deltas {
            dom[*i as usize] = *info;
        }
        Some(dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;
    use crate::op::Op;

    fn guard_chain(n: usize) -> (ExprArena, Vec<Lit>) {
        let mut a = ExprArena::new();
        let lits = (0..n)
            .map(|i| {
                let (_, v) = a.fresh_var(VarInfo::byte());
                let c = a.constant((i as i64 * 13) % 256);
                Lit {
                    expr: a.bin(Op::Eq, v, c),
                    positive: true,
                }
            })
            .collect();
        (a, lits)
    }

    #[test]
    fn sat_prefix_len_matches_shared_prefix() {
        let (a, lits) = guard_chain(6);
        let mut cache = PrefixCache::new();
        assert_eq!(cache.sat_prefix_len(&lits), 0, "empty cache never hits");
        cache.register_path(&a, &lits, &[]);
        assert_eq!(cache.paths_registered(), 1);
        // The whole path and every prefix are registered.
        assert_eq!(cache.sat_prefix_len(&lits), 6);
        assert_eq!(cache.sat_prefix_len(&lits[..3]), 3);
        // A sibling candidate (prefix + negated tail) hits the prefix.
        let mut sibling = lits[..4].to_vec();
        sibling.push(lits[4].negated());
        assert_eq!(cache.sat_prefix_len(&sibling), 4);
        // A candidate diverging at the first literal misses entirely.
        let mut stranger = vec![lits[0].negated()];
        stranger.extend_from_slice(&lits[1..]);
        assert_eq!(cache.sat_prefix_len(&stranger), 0);
    }

    #[test]
    fn prefix_signatures_distinguish_polarity_and_order() {
        let (a, lits) = guard_chain(2);
        let mut cache = PrefixCache::new();
        cache.register_path(&a, &lits, &[]);
        let swapped = vec![lits[1], lits[0]];
        assert_eq!(cache.sat_prefix_len(&swapped), 0, "order matters");
        let flipped = vec![lits[0].negated()];
        assert_eq!(cache.sat_prefix_len(&flipped), 0, "polarity matters");
    }

    #[test]
    fn expr_tables_memoize_interval_and_support() {
        let (a, lits) = guard_chain(3);
        let mut cache = PrefixCache::new();
        assert!(cache.range_of(lits[0].expr).is_none());
        cache.register_path(&a, &lits, &[]);
        for l in &lits {
            assert_eq!(cache.range_of(l.expr), Some(range(&a, l.expr)));
            assert_eq!(cache.support_of(l.expr), Some(&a.support(l.expr)[..]));
        }
    }

    #[test]
    fn propagate_cached_reconstructs_exactly() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let four = a.constant(4);
        let seven = a.constant(7);
        let scaled = a.bin(Op::Mul, x, four);
        let off = a.bin(Op::Add, scaled, seven);
        let ranges = vec![RangeConstraint::range(off, 27, 48, 31)];
        let mut cache = PrefixCache::new();
        assert!(cache.propagate_cached(&a, &ranges).is_none(), "cold miss");
        cache.register_path(&a, &[], &ranges);
        let mut cs = ConstraintSet::new();
        cs.push_range(ranges[0]);
        let fresh = propagate(&a, &cs).expect("satisfiable");
        assert_eq!(cache.propagate_cached(&a, &ranges), Some(fresh));
        // Exactness must survive later-added variables: the new var
        // keeps its default domain, exactly as a fresh propagation
        // over the same ranges would leave it.
        a.fresh_var(VarInfo::range(-1, 4096));
        let fresh2 = propagate(&a, &cs).expect("satisfiable");
        assert_eq!(cache.propagate_cached(&a, &ranges), Some(fresh2));
        // A different bound vector is a different key.
        let other = vec![RangeConstraint::range(off, 27, 49, 31)];
        assert!(cache.propagate_cached(&a, &other).is_none());
    }

    #[test]
    fn register_records_arena_generation() {
        let (mut a, lits) = guard_chain(2);
        let mut cache = PrefixCache::new();
        cache.register_path(&a, &lits[..1], &[]);
        assert_eq!(cache.generation(), 0, "unfrozen arena registers gen 0");
        let g = a.freeze();
        cache.register_path(&a, &lits, &[]);
        assert_eq!(cache.generation(), g);
    }

    #[test]
    fn fnv_matches_reference_mixing() {
        // Pin the factored-out hasher to the historical constants: the
        // frontier dedup signatures (and therefore every golden table)
        // depend on these exact values.
        let mut h = Fnv128::new();
        assert_eq!(h.value(), FNV128_OFFSET);
        h.mix(7);
        assert_eq!(h.value(), (FNV128_OFFSET ^ 7).wrapping_mul(FNV128_PRIME));
    }
}
