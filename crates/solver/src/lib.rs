//! `solver` — symbolic expressions and a finite-domain constraint solver.
//!
//! The reproduction's stand-in for the STP-class solver behind the paper's
//! concolic engine. Program inputs are bounded integer variables (bytes of
//! argv/socket data, modelled syscall returns); path conditions are
//! conjunctions over a hash-consed expression DAG ([`ExprArena`]).
//! [`solve()`](solve()) finds satisfying assignments using interval
//! refutation, backward interval propagation, algebraic inversion, and
//! guided stochastic search — exactly the workload shapes the benchmarks
//! generate (§5 of the paper).
//!
//! # The constraint vocabulary
//!
//! A [`ConstraintSet`] is a conjunction of two constraint forms:
//!
//! | form | meaning | produced by |
//! |------|---------|-------------|
//! | [`Lit`] | `expr != 0` (or `== 0` when negated) | every symbolic branch |
//! | [`RangeConstraint`] | `lo <= expr <= hi`, optional alignment | address concretization |
//!
//! `RangeConstraint` subsumes the four concretization shapes, from most
//! to least constraining: the **equality pin**
//! ([`RangeConstraint::pin`], the classic CUTE-style `expr == observed`),
//! a plain **interval** ([`RangeConstraint::range`]), an **aligned
//! interval** ([`RangeConstraint::aligned`], `(expr - phase) % align ==
//! 0` — element pointers into arrays of stride > 1), and
//! **in-bounds-of-region** sugar ([`RangeConstraint::in_region`]). Every
//! range carries the *observed* witness value from the producing run, so
//! [`solve_or_pin`] can fall back to the hard pin when the bounded form
//! defeats the stochastic search.
//!
//! # Branch literals
//!
//! ```
//! use solver::{ExprArena, VarInfo, ConstraintSet, Lit, Op, solve, SolveCfg};
//!
//! let mut arena = ExprArena::new();
//! let (_, x) = arena.fresh_var(VarInfo::byte());
//! let g = arena.constant(b'G' as i64);
//! let cond = arena.bin(Op::Eq, x, g);
//! let mut cs = ConstraintSet::new();
//! cs.push(Lit { expr: cond, positive: true });
//! let model = solve(&arena, &cs, None, &SolveCfg::default()).unwrap();
//! assert_eq!(model[0], b'G' as i64);
//! ```
//!
//! # Range constraints and interval propagation
//!
//! A region bound leaves the solver freedom an equality pin would
//! destroy: below, the offset `x + 2` must stay inside a 10-cell buffer
//! *and* the branch literal demands `x > 5` — satisfiable together,
//! while the pin `x + 2 == 3` (the observed offset) would be UNSAT.
//!
//! ```
//! use solver::{
//!     ExprArena, VarInfo, ConstraintSet, Lit, Op, RangeConstraint, solve, SolveCfg,
//! };
//!
//! let mut arena = ExprArena::new();
//! let (_, x) = arena.fresh_var(VarInfo::byte());
//! let two = arena.constant(2);
//! let off = arena.bin(Op::Add, x, two);      // the address offset
//! let five = arena.constant(5);
//! let deep = arena.bin(Op::Gt, x, five);     // a later forced branch
//!
//! let mut cs = ConstraintSet::new();
//! cs.push_range(RangeConstraint::in_region(off, 0, 10, 3)); // 0 <= x+2 <= 9
//! cs.push(Lit { expr: deep, positive: true });               // x > 5
//! let model = solve(&arena, &cs, None, &SolveCfg::default()).unwrap();
//! assert!(model[0] > 5 && model[0] + 2 <= 9);
//!
//! // The pinned variant of the same set is provably unsatisfiable.
//! let pinned = cs.pinned(&mut arena);        // x + 2 == 3  &&  x > 5
//! assert!(solve(&arena, &pinned, None, &SolveCfg::default()).is_none());
//! ```
//!
//! Backward propagation ([`propagate`]) narrows
//! variable domains under the range constraints before any search, and
//! proves emptiness (UNSAT) outright when bounds or alignment cannot be
//! met:
//!
//! ```
//! use solver::{ExprArena, VarInfo, ConstraintSet, RangeConstraint, interval::propagate};
//!
//! let mut arena = ExprArena::new();
//! let (_, x) = arena.fresh_var(VarInfo::byte());
//! let hundred = arena.constant(100);
//! let sum = arena.bin(solver::Op::Add, x, hundred);
//!
//! // 120 <= x + 100 <= 140 narrows x to [20, 40].
//! let mut cs = ConstraintSet::new();
//! cs.push_range(RangeConstraint::range(sum, 120, 140, 130));
//! let domains = propagate(&arena, &cs).expect("satisfiable");
//! assert_eq!((domains[0].lo, domains[0].hi), (20, 40));
//!
//! // An alignment no value in the meet satisfies is refuted without search:
//! // 10 <= x <= 12 with x ≡ 5 (mod 8) admits nothing.
//! let mut empty = ConstraintSet::new();
//! let (_, y) = arena.fresh_var(VarInfo::byte());
//! empty.push_range(RangeConstraint::aligned(y, 10, 12, 8, 5, 10));
//! assert!(propagate(&arena, &empty).is_none());
//! ```

pub mod arena;
pub mod cache;
pub mod constraint;
pub mod interval;
pub mod op;
pub mod solve;

pub use arena::{ArenaSnapshot, ExprArena, ExprRef, Node, VarId, VarInfo};
pub use cache::{Fnv128, PrefixCache, FNV128_OFFSET, FNV128_PRIME};
pub use constraint::{ConstraintSet, Lit, RangeConstraint};
pub use interval::{div_ceil, div_floor, propagate, range, range_in, Interval};
pub use op::{eval_op, eval_unop, Op, UnOp};
pub use solve::{
    mix_seed, solve, solve_or_pin, solve_or_pin_cached, solve_or_pin_ro, solve_or_pin_ro_cached,
    solve_with_stats, solve_with_stats_cached, SolveCfg, SolveStats, XorShift, GOLDEN_RATIO,
};

/// The parallel replay workers share one read-only [`ExprArena`] and
/// move [`ConstraintSet`]s across thread boundaries; both are plain
/// owned data (no `Rc`, no interior mutability), and this keeps it that
/// way at compile time. The COW arena's frozen prefix and the prefix
/// cache join the boundary: a snapshot is shared across worker threads
/// via `Arc`, and the cache is read by every worker during a solve
/// streak — `Sync` here is what lets them be shared without copies,
/// and the freeze/bank discipline (single writer, between streaks) is
/// what keeps the sharing race-free.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExprArena>();
    assert_send_sync::<ArenaSnapshot>();
    assert_send_sync::<PrefixCache>();
    assert_send_sync::<ConstraintSet>();
    assert_send_sync::<SolveCfg>();
    assert_send_sync::<SolveStats>();
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random expression over byte variables from fuzz bytes.
    fn arb_expr(arena: &mut ExprArena, vars: &[ExprRef], rng_ops: &[u8], depth: usize) -> ExprRef {
        if rng_ops.is_empty() || depth > 4 {
            return vars[rng_ops.first().copied().unwrap_or(0) as usize % vars.len()];
        }
        let (op_byte, rest) = rng_ops.split_first().expect("checked non-empty");
        let half = rest.len() / 2;
        match op_byte % 6 {
            0 => {
                let c = arena.constant((*op_byte as i64) * 3 - 100);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Add, a, c)
            }
            1 => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                let b = arb_expr(arena, vars, &rest[half..], depth + 1);
                arena.bin(Op::Sub, a, b)
            }
            2 => {
                let c = arena.constant((*op_byte % 7) as i64 + 1);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Mul, a, c)
            }
            3 => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.mask_char(a)
            }
            4 => {
                let c = arena.constant(*op_byte as i64);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Xor, a, c)
            }
            _ => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.un(UnOp::Neg, a)
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any model returned by the solver satisfies the constraints.
        #[test]
        fn solver_models_are_sound(
            ops in proptest::collection::vec(any::<u8>(), 1..24),
            targets in proptest::collection::vec(0i64..256, 1..4),
        ) {
            let mut arena = ExprArena::new();
            let vars: Vec<ExprRef> =
                (0..4).map(|_| arena.fresh_var(VarInfo::byte()).1).collect();
            let mut cs = ConstraintSet::new();
            for t in &targets {
                let e = arb_expr(&mut arena, &vars, &ops, 0);
                let c = arena.constant(*t);
                let cmp = arena.bin(Op::Eq, e, c);
                cs.push(Lit { expr: cmp, positive: true });
            }
            let cfg = SolveCfg { max_iters: 4000, ..SolveCfg::default() };
            if let Some(model) = solve(&arena, &cs, None, &cfg) {
                prop_assert!(cs.satisfied(&arena, &model));
                for (i, v) in model.iter().enumerate() {
                    let info = arena.var_info(VarId(i as u32));
                    prop_assert!(*v >= info.lo && *v <= info.hi);
                }
            }
        }

        /// Interval analysis always contains the concrete evaluation.
        #[test]
        fn interval_contains_eval(
            ops in proptest::collection::vec(any::<u8>(), 1..24),
            assign in proptest::collection::vec(0i64..256, 4),
        ) {
            let mut arena = ExprArena::new();
            let vars: Vec<ExprRef> =
                (0..4).map(|_| arena.fresh_var(VarInfo::byte()).1).collect();
            let e = arb_expr(&mut arena, &vars, &ops, 0);
            let r = range(&arena, e);
            let v = arena.eval(e, &assign);
            prop_assert!(r.contains(v), "range {:?} must contain eval {}", r, v);
        }

        /// Constant folding agrees with evaluation.
        #[test]
        fn folding_agrees_with_eval(a in any::<i64>(), b in any::<i64>()) {
            let mut arena = ExprArena::new();
            for op in [Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Rem, Op::And,
                       Op::Or, Op::Xor, Op::Eq, Op::Ne, Op::Lt, Op::Le] {
                let ca = arena.constant(a);
                let cb = arena.constant(b);
                let e = arena.bin(op, ca, cb);
                prop_assert_eq!(arena.eval(e, &[]), eval_op(op, a, b));
            }
        }

        /// Solving a pending set with the prefix cache populated from an
        /// executed path is bit-identical to solving without it: same
        /// verdict, same model, same search statistics (the prefix-hit
        /// counters are reporting, not behavior). This is the solver-level
        /// half of the cache-invariance proof; the bench suite pins the
        /// engine-level half end to end.
        #[test]
        fn cached_solve_is_bit_identical(
            ops in proptest::collection::vec(any::<u8>(), 1..24),
            assign in proptest::collection::vec(0i64..256, 4),
            n_lits in 2usize..6,
        ) {
            let mut arena = ExprArena::new();
            let vars: Vec<ExprRef> =
                (0..4).map(|_| arena.fresh_var(VarInfo::byte()).1).collect();
            // Simulate an executed run: each path literal asserts the
            // truth value its expression actually took, so every literal
            // holds under `assign` — the registration precondition.
            let mut path = ConstraintSet::new();
            for i in 0..n_lits {
                let e = arb_expr(&mut arena, &vars, &ops[i.min(ops.len() - 1)..], 0);
                path.push(Lit { expr: e, positive: arena.eval(e, &assign) != 0 });
            }
            prop_assert!(path.satisfied(&arena, &assign));
            arena.freeze();
            let mut cache = PrefixCache::new();
            cache.register_path(&arena, &path.lits, &path.ranges);
            let cfg = SolveCfg { max_iters: 2000, ..SolveCfg::default() };
            for k in 0..path.lits.len() {
                let pending = path.negate_at(k);
                let (plain_model, plain_stats) =
                    solve_with_stats(&arena, &pending, Some(&assign), &cfg);
                let (cached_model, cached_stats) = solve_with_stats_cached(
                    &arena, &pending, Some(&assign), &cfg, Some(&cache),
                );
                prop_assert_eq!(&plain_model, &cached_model);
                prop_assert_eq!(plain_stats.iters, cached_stats.iters);
                prop_assert_eq!(plain_stats.inversions, cached_stats.inversions);
                prop_assert_eq!(plain_stats.restarts, cached_stats.restarts);
                prop_assert_eq!(plain_stats.refuted, cached_stats.refuted);
                prop_assert_eq!(cached_stats.prefix_lits_saved, k as u64);
                prop_assert_eq!(cached_stats.prefix_hit, k > 0);
            }
        }
    }
}
