//! `solver` — symbolic expressions and a finite-domain constraint solver.
//!
//! The reproduction's stand-in for the STP-class solver behind the paper's
//! concolic engine. Program inputs are bounded integer variables (bytes of
//! argv/socket data, modelled syscall returns); path conditions are
//! conjunctions of literals over a hash-consed expression DAG
//! ([`ExprArena`]). [`solve()`](solve()) finds satisfying assignments using interval
//! refutation, algebraic inversion, and guided stochastic search — exactly
//! the workload shapes the benchmarks generate (§5 of the paper).
//!
//! # Example
//!
//! ```
//! use solver::{ExprArena, VarInfo, ConstraintSet, Lit, Op, solve, SolveCfg};
//!
//! let mut arena = ExprArena::new();
//! let (_, x) = arena.fresh_var(VarInfo::byte());
//! let g = arena.constant(b'G' as i64);
//! let cond = arena.bin(Op::Eq, x, g);
//! let mut cs = ConstraintSet::new();
//! cs.push(Lit { expr: cond, positive: true });
//! let model = solve(&arena, &cs, None, &SolveCfg::default()).unwrap();
//! assert_eq!(model[0], b'G' as i64);
//! ```

pub mod arena;
pub mod constraint;
pub mod interval;
pub mod op;
pub mod solve;

pub use arena::{ExprArena, ExprRef, Node, VarId, VarInfo};
pub use constraint::{ConstraintSet, Lit};
pub use interval::{range, Interval};
pub use op::{eval_op, eval_unop, Op, UnOp};
pub use solve::{solve, solve_with_stats, SolveCfg, SolveStats, XorShift};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random expression over byte variables from fuzz bytes.
    fn arb_expr(arena: &mut ExprArena, vars: &[ExprRef], rng_ops: &[u8], depth: usize) -> ExprRef {
        if rng_ops.is_empty() || depth > 4 {
            return vars[rng_ops.first().copied().unwrap_or(0) as usize % vars.len()];
        }
        let (op_byte, rest) = rng_ops.split_first().expect("checked non-empty");
        let half = rest.len() / 2;
        match op_byte % 6 {
            0 => {
                let c = arena.constant((*op_byte as i64) * 3 - 100);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Add, a, c)
            }
            1 => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                let b = arb_expr(arena, vars, &rest[half..], depth + 1);
                arena.bin(Op::Sub, a, b)
            }
            2 => {
                let c = arena.constant((*op_byte % 7) as i64 + 1);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Mul, a, c)
            }
            3 => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.mask_char(a)
            }
            4 => {
                let c = arena.constant(*op_byte as i64);
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.bin(Op::Xor, a, c)
            }
            _ => {
                let a = arb_expr(arena, vars, &rest[..half], depth + 1);
                arena.un(UnOp::Neg, a)
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any model returned by the solver satisfies the constraints.
        #[test]
        fn solver_models_are_sound(
            ops in proptest::collection::vec(any::<u8>(), 1..24),
            targets in proptest::collection::vec(0i64..256, 1..4),
        ) {
            let mut arena = ExprArena::new();
            let vars: Vec<ExprRef> =
                (0..4).map(|_| arena.fresh_var(VarInfo::byte()).1).collect();
            let mut cs = ConstraintSet::new();
            for t in &targets {
                let e = arb_expr(&mut arena, &vars, &ops, 0);
                let c = arena.constant(*t);
                let cmp = arena.bin(Op::Eq, e, c);
                cs.push(Lit { expr: cmp, positive: true });
            }
            let cfg = SolveCfg { max_iters: 4000, ..SolveCfg::default() };
            if let Some(model) = solve(&arena, &cs, None, &cfg) {
                prop_assert!(cs.satisfied(&arena, &model));
                for (i, v) in model.iter().enumerate() {
                    let info = arena.var_info(VarId(i as u32));
                    prop_assert!(*v >= info.lo && *v <= info.hi);
                }
            }
        }

        /// Interval analysis always contains the concrete evaluation.
        #[test]
        fn interval_contains_eval(
            ops in proptest::collection::vec(any::<u8>(), 1..24),
            assign in proptest::collection::vec(0i64..256, 4),
        ) {
            let mut arena = ExprArena::new();
            let vars: Vec<ExprRef> =
                (0..4).map(|_| arena.fresh_var(VarInfo::byte()).1).collect();
            let e = arb_expr(&mut arena, &vars, &ops, 0);
            let r = range(&arena, e);
            let v = arena.eval(e, &assign);
            prop_assert!(r.contains(v), "range {:?} must contain eval {}", r, v);
        }

        /// Constant folding agrees with evaluation.
        #[test]
        fn folding_agrees_with_eval(a in any::<i64>(), b in any::<i64>()) {
            let mut arena = ExprArena::new();
            for op in [Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Rem, Op::And,
                       Op::Or, Op::Xor, Op::Eq, Op::Ne, Op::Lt, Op::Le] {
                let ca = arena.constant(a);
                let cb = arena.constant(b);
                let e = arena.bin(op, ca, cb);
                prop_assert_eq!(arena.eval(e, &[]), eval_op(op, a, b));
            }
        }
    }
}
