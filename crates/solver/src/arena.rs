//! Hash-consed expression arena.
//!
//! Symbolic expressions form a DAG interned in one arena per analysis
//! session. Interning gives (1) cheap `Copy` handles that can shadow every
//! VM cell, (2) structural sharing across the millions of shadow
//! operations a concolic run performs, and (3) constant folding at
//! construction so trivially concrete expressions never materialize.

use crate::op::{eval_op, eval_unop, Op, UnOp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Handle to an interned expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(pub u32);

/// Identifier of a symbolic input variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// An interned expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A constant.
    Const(i64),
    /// A symbolic input variable.
    Var(VarId),
    /// A binary operation.
    Bin(Op, ExprRef, ExprRef),
    /// A unary operation.
    Un(UnOp, ExprRef),
}

/// Metadata of a symbolic variable: its inclusive domain.
///
/// Input bytes get `[0, 255]`; modelled syscall returns get the range the
/// model allows (e.g. `[-1, n]` for `read`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarInfo {
    /// Smallest allowed value.
    pub lo: i64,
    /// Largest allowed value.
    pub hi: i64,
}

impl VarInfo {
    /// A byte-valued input variable.
    pub fn byte() -> Self {
        VarInfo { lo: 0, hi: 255 }
    }

    /// An arbitrary bounded variable.
    pub fn range(lo: i64, hi: i64) -> Self {
        VarInfo { lo, hi }
    }

    /// Clamps `v` into the domain.
    pub fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.lo, self.hi)
    }
}

/// An immutable, generation-stamped prefix of an arena.
///
/// Produced by [`ExprArena::freeze`] and shared by reference count: a
/// cloned arena (e.g. a parallel worker's scratch copy, or the
/// read-only pin-fallback clone inside the solver) costs one `Arc`
/// bump for the frozen prefix instead of copying every node and intern
/// entry. Nothing ever mutates a snapshot after freeze — a later
/// `freeze` that must extend a *shared* snapshot copies its core into
/// a fresh snapshot with a higher generation, so every generation
/// number names one immutable node prefix forever. The prefix solve
/// cache keys its entries on this generation.
#[derive(Debug)]
pub struct ArenaSnapshot {
    nodes: Vec<Node>,
    intern: HashMap<Node, ExprRef>,
    generation: u64,
}

impl ArenaSnapshot {
    /// The generation stamp: strictly increasing per freeze that added
    /// nodes, starting at 1 (an unfrozen arena reports generation 0).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of nodes in the frozen prefix.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the snapshot holds no nodes (never produced by `freeze`,
    /// which skips allocating for an empty arena).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The expression arena: interned nodes plus the variable table.
///
/// Copy-on-write: nodes split into an immutable frozen prefix (an
/// [`ArenaSnapshot`] behind an `Arc`, shared across clones) and a
/// mutable suffix owned by this arena. Handles are absolute indices
/// across the split, so freezing is invisible to every reader —
/// `node`, `eval`, `support` and friends behave exactly as if the
/// arena were one flat vector.
#[derive(Debug, Default, Clone)]
pub struct ExprArena {
    /// Frozen prefix, shared by clones. `None` until the first freeze.
    base: Option<Arc<ArenaSnapshot>>,
    /// Node count of the frozen prefix (0 until the first freeze).
    base_len: u32,
    /// Mutable suffix nodes appended since the last freeze.
    nodes: Vec<Node>,
    /// Intern map of the suffix only (values are absolute handles).
    intern: HashMap<Node, ExprRef>,
    /// Variable table: small and append-only, kept whole (not snapshotted).
    vars: Vec<VarInfo>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.base_len as usize + self.nodes.len()
    }

    /// True if no nodes have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The generation of the frozen prefix (0 = never frozen).
    pub fn generation(&self) -> u64 {
        self.base.as_ref().map_or(0, |b| b.generation)
    }

    /// Number of nodes in the frozen prefix.
    pub fn frozen_len(&self) -> usize {
        self.base_len as usize
    }

    /// Freezes the current node set into an immutable snapshot and
    /// returns its generation.
    ///
    /// After this call the whole arena is frozen prefix: clones share
    /// it by reference count (O(1) for the nodes) instead of copying.
    /// When this arena solely owns its current snapshot the suffix is
    /// appended in place — the common engine loop case, O(suffix) per
    /// freeze, O(total nodes) across a session. When the snapshot is
    /// still shared (a clone is alive), its core is copied once into
    /// the successor snapshot; the clone keeps reading the old
    /// generation untouched. A freeze with an empty suffix is free and
    /// keeps the existing generation — so the engines can freeze once
    /// per run without churning generations on runs that interned
    /// nothing new.
    pub fn freeze(&mut self) -> u64 {
        if self.nodes.is_empty() {
            return self.generation();
        }
        let suffix_nodes = std::mem::take(&mut self.nodes);
        let suffix_intern = std::mem::take(&mut self.intern);
        let mut core = match self.base.take() {
            None => ArenaSnapshot {
                nodes: Vec::new(),
                intern: HashMap::new(),
                generation: 0,
            },
            Some(arc) => match Arc::try_unwrap(arc) {
                Ok(owned) => owned,
                Err(shared) => ArenaSnapshot {
                    nodes: shared.nodes.clone(),
                    intern: shared.intern.clone(),
                    generation: shared.generation,
                },
            },
        };
        core.nodes.extend(suffix_nodes);
        core.intern.extend(suffix_intern);
        core.generation += 1;
        let generation = core.generation;
        self.base_len = core.nodes.len() as u32;
        self.base = Some(Arc::new(core));
        generation
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// The domain of a variable.
    pub fn var_info(&self, v: VarId) -> VarInfo {
        self.vars[v.0 as usize]
    }

    /// All variable domains, indexed by `VarId`.
    pub fn var_infos(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Creates a fresh symbolic variable with the given domain.
    pub fn fresh_var(&mut self, info: VarInfo) -> (VarId, ExprRef) {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        let r = self.intern(Node::Var(id));
        (id, r)
    }

    /// The expression handle of an existing variable.
    pub fn var_expr(&mut self, v: VarId) -> ExprRef {
        debug_assert!((v.0 as usize) < self.vars.len(), "unknown variable");
        self.intern(Node::Var(v))
    }

    /// The node behind a handle.
    pub fn node(&self, r: ExprRef) -> Node {
        if r.0 < self.base_len {
            self.base.as_ref().expect("handle below base_len").nodes[r.0 as usize]
        } else {
            self.nodes[(r.0 - self.base_len) as usize]
        }
    }

    fn intern(&mut self, n: Node) -> ExprRef {
        if let Some(b) = &self.base {
            if let Some(r) = b.intern.get(&n) {
                return *r;
            }
        }
        if let Some(r) = self.intern.get(&n) {
            return *r;
        }
        let r = ExprRef(self.base_len + self.nodes.len() as u32);
        self.nodes.push(n);
        self.intern.insert(n, r);
        r
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: i64) -> ExprRef {
        self.intern(Node::Const(v))
    }

    /// Builds `a op b` with constant folding and light simplification.
    pub fn bin(&mut self, op: Op, a: ExprRef, b: ExprRef) -> ExprRef {
        let (na, nb) = (self.node(a), self.node(b));
        if let (Node::Const(x), Node::Const(y)) = (na, nb) {
            return self.constant(eval_op(op, x, y));
        }
        // Identity simplifications that show up constantly in shadows.
        match (op, na, nb) {
            (Op::Add, _, Node::Const(0)) | (Op::Sub, _, Node::Const(0)) => return a,
            (Op::Add, Node::Const(0), _) => return b,
            (Op::Mul, _, Node::Const(1)) => return a,
            (Op::Mul, Node::Const(1), _) => return b,
            (Op::Mul, _, Node::Const(0)) | (Op::Mul, Node::Const(0), _) => return self.constant(0),
            (Op::And, _, Node::Const(0)) | (Op::And, Node::Const(0), _) => return self.constant(0),
            (Op::Or, _, Node::Const(0)) | (Op::Xor, _, Node::Const(0)) => return a,
            (Op::Or, Node::Const(0), _) | (Op::Xor, Node::Const(0), _) => return b,
            // Masking an already-masked byte: (x & 255) & 255.
            (Op::And, Node::Bin(Op::And, _, m), Node::Const(255))
                if self.node(m) == Node::Const(255) =>
            {
                return a;
            }
            // A byte variable masked to a byte is itself.
            (Op::And, Node::Var(v), Node::Const(255)) => {
                let info = self.var_info(v);
                if info.lo >= 0 && info.hi <= 255 {
                    return a;
                }
            }
            _ => {}
        }
        self.intern(Node::Bin(op, a, b))
    }

    /// Builds a unary operation with constant folding.
    pub fn un(&mut self, op: UnOp, a: ExprRef) -> ExprRef {
        if let Node::Const(x) = self.node(a) {
            return self.constant(eval_unop(op, x));
        }
        // Double negations cancel.
        if let Node::Un(inner_op, inner) = self.node(a) {
            if inner_op == op && matches!(op, UnOp::Neg | UnOp::BitNot) {
                return inner;
            }
        }
        self.intern(Node::Un(op, a))
    }

    /// Builds `x != 0` (the VM's `Bool` normalization).
    pub fn boolify(&mut self, a: ExprRef) -> ExprRef {
        // Comparisons are already 0/1.
        if let Node::Bin(op, _, _) = self.node(a) {
            if op.is_comparison() {
                return a;
            }
        }
        let zero = self.constant(0);
        self.bin(Op::Ne, a, zero)
    }

    /// Builds `x & 0xff` (char masking).
    pub fn mask_char(&mut self, a: ExprRef) -> ExprRef {
        let m = self.constant(0xff);
        self.bin(Op::And, a, m)
    }

    /// Evaluates an expression under a full variable assignment.
    ///
    /// `assign[v]` is the value of variable `v`. Iterative (explicit
    /// stack) so deep shadow chains cannot overflow the Rust stack.
    /// Because interning assigns children smaller indices than parents,
    /// a dense slot vector doubles as the memo table.
    pub fn eval(&self, root: ExprRef, assign: &[i64]) -> i64 {
        let mut memo: Vec<Option<i64>> = vec![None; root.0 as usize + 1];
        let mut stack = vec![(root, false)];
        while let Some((r, expanded)) = stack.pop() {
            if memo[r.0 as usize].is_some() {
                continue;
            }
            let n = self.node(r);
            if !expanded {
                match n {
                    Node::Const(v) => memo[r.0 as usize] = Some(v),
                    Node::Var(v) => {
                        memo[r.0 as usize] = Some(assign.get(v.0 as usize).copied().unwrap_or(0));
                    }
                    Node::Bin(_, a, b) => {
                        stack.push((r, true));
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                    Node::Un(_, a) => {
                        stack.push((r, true));
                        stack.push((a, false));
                    }
                }
            } else {
                let v = match n {
                    Node::Bin(op, a, b) => eval_op(
                        op,
                        memo[a.0 as usize].expect("child evaluated"),
                        memo[b.0 as usize].expect("child evaluated"),
                    ),
                    Node::Un(op, a) => eval_unop(op, memo[a.0 as usize].expect("child evaluated")),
                    _ => unreachable!("leaves are evaluated eagerly"),
                };
                memo[r.0 as usize] = Some(v);
            }
        }
        memo[root.0 as usize].expect("root evaluated")
    }

    /// Rewrites an expression, replacing the mapped variables by
    /// constants (used to pin uncontrollable non-determinism to its
    /// observed values before solving for the controllable inputs).
    pub fn substitute(
        &mut self,
        root: ExprRef,
        map: &std::collections::HashMap<VarId, i64>,
    ) -> ExprRef {
        if map.is_empty() {
            return root;
        }
        let mut memo: std::collections::HashMap<ExprRef, ExprRef> = Default::default();
        self.subst_memo(root, map, &mut memo)
    }

    /// Substitutes many roots sharing one rewrite memo (linear in the
    /// union of the DAGs instead of quadratic per-root work).
    pub fn substitute_many(
        &mut self,
        roots: &[ExprRef],
        map: &std::collections::HashMap<VarId, i64>,
    ) -> Vec<ExprRef> {
        if map.is_empty() {
            return roots.to_vec();
        }
        let mut memo: std::collections::HashMap<ExprRef, ExprRef> = Default::default();
        roots
            .iter()
            .map(|r| self.subst_memo(*r, map, &mut memo))
            .collect()
    }

    fn subst_memo(
        &mut self,
        r: ExprRef,
        map: &std::collections::HashMap<VarId, i64>,
        memo: &mut std::collections::HashMap<ExprRef, ExprRef>,
    ) -> ExprRef {
        if let Some(out) = memo.get(&r) {
            return *out;
        }
        let out = match self.node(r) {
            Node::Const(_) => r,
            Node::Var(v) => match map.get(&v) {
                Some(c) => self.constant(*c),
                None => r,
            },
            Node::Bin(op, a, b) => {
                let na = self.subst_memo(a, map, memo);
                let nb = self.subst_memo(b, map, memo);
                if na == a && nb == b {
                    r
                } else {
                    self.bin(op, na, nb)
                }
            }
            Node::Un(op, a) => {
                let na = self.subst_memo(a, map, memo);
                if na == a {
                    r
                } else {
                    self.un(op, na)
                }
            }
        };
        memo.insert(r, out);
        out
    }

    /// Imports everything a parallel worker built in a clone of this
    /// arena back into this (central) arena.
    ///
    /// `src` must descend from a clone of `self` taken when `self` held
    /// `base_nodes` nodes. Both arenas are append-only, so every `src`
    /// handle below `base_nodes` already names the same node here and
    /// maps to itself; only the worker's new suffix needs translating.
    /// Constructors only combine existing handles, so the suffix is
    /// already in topological (index) order: one linear pass replays it
    /// through `constant` / `var_expr` / `bin` / `un` rather than
    /// copying, so interning and the folding / simplification rules run
    /// under this arena's variable table — the committed structure is
    /// canonical no matter which worker built it. When this arena is
    /// still at its `base_nodes` state (the common commit-phase case:
    /// one run absorbed per round, before any other mutation), the
    /// replay reproduces `src`'s numbering exactly, which is what keeps
    /// parallel sessions bit-identical to serial ones. Variables the
    /// worker created beyond this table are appended first-wins (ids
    /// this arena already has keep their domains).
    ///
    /// Returns the translated handle for each root, in order.
    pub fn absorb(
        &mut self,
        src: &ExprArena,
        base_nodes: usize,
        roots: &[ExprRef],
    ) -> Vec<ExprRef> {
        debug_assert!(base_nodes <= src.len(), "src descends from the clone");
        debug_assert!(base_nodes <= self.len(), "central is append-only");
        for i in self.vars.len()..src.vars.len() {
            self.vars.push(src.vars[i]);
        }
        let mut memo: Vec<ExprRef> = Vec::with_capacity(src.len() - base_nodes);
        let translate = |memo: &Vec<ExprRef>, r: ExprRef| -> ExprRef {
            let i = r.0 as usize;
            if i < base_nodes {
                r
            } else {
                memo[i - base_nodes]
            }
        };
        for i in base_nodes..src.len() {
            let t = match src.node(ExprRef(i as u32)) {
                Node::Const(v) => self.constant(v),
                Node::Var(v) => self.var_expr(v),
                Node::Bin(op, a, b) => {
                    let (ta, tb) = (translate(&memo, a), translate(&memo, b));
                    self.bin(op, ta, tb)
                }
                Node::Un(op, a) => {
                    let ta = translate(&memo, a);
                    self.un(op, ta)
                }
            };
            memo.push(t);
        }
        roots.iter().map(|r| translate(&memo, *r)).collect()
    }

    /// Collects the support of many expressions with one shared visited
    /// set; returns per-root supports.
    pub fn support_many(&self, roots: &[ExprRef]) -> Vec<Vec<VarId>> {
        roots.iter().map(|r| self.support(*r)).collect()
    }

    /// Collects the variables an expression depends on (sorted, deduped).
    pub fn support(&self, root: ExprRef) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            match self.node(r) {
                Node::Const(_) => {}
                Node::Var(v) => {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                Node::Bin(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Node::Un(_, a) => stack.push(a),
            }
        }
        vars.sort();
        vars
    }

    /// Renders an expression for diagnostics.
    pub fn display(&self, r: ExprRef) -> String {
        let mut s = String::new();
        self.fmt_expr(r, &mut s, 0);
        s
    }

    fn fmt_expr(&self, r: ExprRef, out: &mut String, depth: usize) {
        use fmt::Write as _;
        if depth > 64 {
            out.push_str("...");
            return;
        }
        match self.node(r) {
            Node::Const(v) => {
                let _ = write!(out, "{v}");
            }
            Node::Var(v) => {
                let _ = write!(out, "in{}", v.0);
            }
            Node::Bin(op, a, b) => {
                out.push('(');
                self.fmt_expr(a, out, depth + 1);
                let sym = match op {
                    Op::Add => "+",
                    Op::Sub => "-",
                    Op::Mul => "*",
                    Op::Div => "/",
                    Op::Rem => "%",
                    Op::And => "&",
                    Op::Or => "|",
                    Op::Xor => "^",
                    Op::Shl => "<<",
                    Op::Shr => ">>",
                    Op::Eq => "==",
                    Op::Ne => "!=",
                    Op::Lt => "<",
                    Op::Le => "<=",
                    Op::Gt => ">",
                    Op::Ge => ">=",
                };
                let _ = write!(out, " {sym} ");
                self.fmt_expr(b, out, depth + 1);
                out.push(')');
            }
            Node::Un(op, a) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                out.push_str(sym);
                self.fmt_expr(a, out, depth + 1);
            }
        }
    }
}

/// A reusable, generation-stamped evaluation scratchpad.
///
/// `ExprArena::eval` allocates a memo sized by the expression's index on
/// every call — fine for one-off evaluations, ruinous inside a search
/// loop over thousands of literals. An `Evaluator` keeps one buffer and
/// invalidates it by bumping a generation counter when the assignment
/// changes, so evaluating many literals under the same assignment shares
/// all common subexpression results.
#[derive(Debug, Clone)]
pub struct Evaluator {
    values: Vec<i64>,
    stamp: Vec<u32>,
    generation: u32,
}

impl Evaluator {
    /// Creates an evaluator sized for the arena (grows on demand).
    pub fn new(arena: &ExprArena) -> Self {
        Evaluator {
            values: vec![0; arena.len()],
            stamp: vec![0; arena.len()],
            generation: 1,
        }
    }

    /// Creates an empty evaluator (grows on first use). For placeholder
    /// slots that are swapped out before any evaluation, where sizing by
    /// the arena would allocate for nothing.
    pub fn empty() -> Self {
        Evaluator {
            values: Vec::new(),
            stamp: Vec::new(),
            generation: 1,
        }
    }

    /// Invalidates all memoized results (call after the assignment
    /// changes).
    pub fn invalidate(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wraparound: clear stamps explicitly.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, 0);
            self.stamp.resize(n, 0);
        }
    }

    /// Evaluates `root` under `assign`, sharing results with every other
    /// evaluation since the last [`Evaluator::invalidate`].
    pub fn eval(&mut self, arena: &ExprArena, root: ExprRef, assign: &[i64]) -> i64 {
        self.ensure(arena.len());
        let g = self.generation;
        let mut stack = vec![(root, false)];
        while let Some((r, expanded)) = stack.pop() {
            let i = r.0 as usize;
            if self.stamp[i] == g {
                continue;
            }
            let n = arena.node(r);
            if !expanded {
                match n {
                    Node::Const(v) => {
                        self.values[i] = v;
                        self.stamp[i] = g;
                    }
                    Node::Var(v) => {
                        self.values[i] = assign.get(v.0 as usize).copied().unwrap_or(0);
                        self.stamp[i] = g;
                    }
                    Node::Bin(_, a, b) => {
                        stack.push((r, true));
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                    Node::Un(_, a) => {
                        stack.push((r, true));
                        stack.push((a, false));
                    }
                }
            } else {
                let v = match n {
                    Node::Bin(op, a, b) => {
                        eval_op(op, self.values[a.0 as usize], self.values[b.0 as usize])
                    }
                    Node::Un(op, a) => eval_unop(op, self.values[a.0 as usize]),
                    _ => unreachable!("leaves are evaluated eagerly"),
                };
                self.values[i] = v;
                self.stamp[i] = g;
            }
        }
        self.values[root.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluator_matches_eval_and_shares_memo() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let t = a.bin(Op::Mul, x, ten);
        let e1 = a.bin(Op::Add, t, x);
        let e2 = a.bin(Op::Sub, t, x);
        let mut ev = Evaluator::new(&a);
        let assign = [4i64];
        assert_eq!(ev.eval(&a, e1, &assign), a.eval(e1, &assign));
        assert_eq!(ev.eval(&a, e2, &assign), a.eval(e2, &assign));
        // After the assignment changes, invalidation is required.
        let assign2 = [5i64];
        ev.invalidate();
        assert_eq!(ev.eval(&a, e1, &assign2), a.eval(e1, &assign2));
    }

    #[test]
    fn substitute_many_matches_individual() {
        let mut a = ExprArena::new();
        let (vx, x) = a.fresh_var(VarInfo::byte());
        let (_, y) = a.fresh_var(VarInfo::byte());
        let s = a.bin(Op::Add, x, y);
        let t = a.bin(Op::Mul, s, x);
        let map: std::collections::HashMap<VarId, i64> = [(vx, 3)].into_iter().collect();
        let many = a.substitute_many(&[s, t], &map);
        assert_eq!(many[0], a.substitute(s, &map));
        assert_eq!(many[1], a.substitute(t, &map));
    }

    #[test]
    fn constant_folding() {
        let mut a = ExprArena::new();
        let x = a.constant(3);
        let y = a.constant(4);
        let s = a.bin(Op::Add, x, y);
        assert_eq!(a.node(s), Node::Const(7));
    }

    #[test]
    fn interning_dedupes() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        let one = a.constant(1);
        let e1 = a.bin(Op::Add, v, one);
        let e2 = a.bin(Op::Add, v, one);
        assert_eq!(e1, e2);
    }

    #[test]
    fn identity_simplifications() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        let zero = a.constant(0);
        let one = a.constant(1);
        assert_eq!(a.bin(Op::Add, v, zero), v);
        assert_eq!(a.bin(Op::Mul, v, one), v);
        assert_eq!(a.node(a.clone().bin(Op::Mul, v, zero)), Node::Const(0));
    }

    #[test]
    fn byte_var_mask_is_identity() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        assert_eq!(a.mask_char(v), v);
        let (_, w) = a.fresh_var(VarInfo::range(-1, 1000));
        assert_ne!(a.mask_char(w), w);
    }

    #[test]
    fn boolify_of_comparison_is_identity() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        let c = a.constant(65);
        let cmp = a.bin(Op::Eq, v, c);
        assert_eq!(a.boolify(cmp), cmp);
        assert_ne!(a.boolify(v), v);
    }

    #[test]
    fn eval_matches_structure() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let (_, y) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let t = a.bin(Op::Mul, x, ten);
        let e = a.bin(Op::Add, t, y); // x*10 + y
        assert_eq!(a.eval(e, &[4, 2]), 42);
    }

    #[test]
    fn support_collects_vars() {
        let mut a = ExprArena::new();
        let (vx, x) = a.fresh_var(VarInfo::byte());
        let (vy, y) = a.fresh_var(VarInfo::byte());
        let e = a.bin(Op::Add, x, y);
        let e2 = a.bin(Op::Add, e, x);
        assert_eq!(a.support(e2), vec![vx, vy]);
    }

    #[test]
    fn double_negation_cancels() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        let n1 = a.un(UnOp::Neg, v);
        let n2 = a.un(UnOp::Neg, n1);
        assert_eq!(n2, v);
    }

    #[test]
    fn display_renders() {
        let mut a = ExprArena::new();
        let (_, v) = a.fresh_var(VarInfo::byte());
        let c = a.constant(71);
        let e = a.bin(Op::Eq, v, c);
        assert_eq!(a.display(e), "(in0 == 71)");
    }

    #[test]
    fn absorb_is_identity_when_central_is_unchanged() {
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let c = central.constant(7);
        let base_expr = central.bin(Op::Add, x, c);
        let base_nodes = central.len();

        // Worker: clone, build new expressions (and a new var) on top.
        let mut worker = central.clone();
        let (_, y) = worker.fresh_var(VarInfo::range(-1, 1000));
        let sum = worker.bin(Op::Add, base_expr, y);
        let two = worker.constant(2);
        let root = worker.bin(Op::Mul, sum, two);

        let out = central.absorb(&worker, base_nodes, &[root, base_expr, x]);
        assert_eq!(out, vec![root, base_expr, x], "numbering is reproduced");
        assert_eq!(central.len(), worker.len());
        assert_eq!(central.n_vars(), worker.n_vars());
        assert_eq!(central.var_info(VarId(1)), VarInfo::range(-1, 1000));
        assert_eq!(central.eval(root, &[3, 5]), ((3 + 7) + 5) * 2);
    }

    #[test]
    fn absorb_translates_after_central_advanced() {
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let base_nodes = central.len();

        let mut worker = central.clone();
        let five = worker.constant(5);
        let w_root = worker.bin(Op::Add, x, five);

        // Central moves on before the commit: ids must translate, and
        // interning must dedupe against what central already has.
        let nine = central.constant(9);
        let existing = central.bin(Op::Add, x, nine);
        let out = central.absorb(&worker, base_nodes, &[w_root]);
        assert_ne!(out[0], w_root, "ids translated, not assumed");
        assert_eq!(central.eval(out[0], &[3]), 8);
        let five_c = central.constant(5);
        let again = central.bin(Op::Add, x, five_c);
        assert_eq!(out[0], again, "absorbed node is interned, not duplicated");
        assert_eq!(central.eval(existing, &[3]), 12, "prior nodes untouched");
    }

    #[test]
    fn absorb_replays_simplifications_under_central_var_table() {
        // A worker that (hypothetically) interned `x & 255` without the
        // byte-domain identity must still commit the canonical form.
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let base_nodes = central.len();
        let mut worker = central.clone();
        let masked = worker.mask_char(x);
        assert_eq!(masked, x, "byte mask folds in the worker too");
        // Something genuinely new that folds: (x + 0) * 1.
        let zero = worker.constant(0);
        let one = worker.constant(1);
        let a = worker.bin(Op::Add, x, zero);
        let root = worker.bin(Op::Mul, a, one);
        let out = central.absorb(&worker, base_nodes, &[root]);
        assert_eq!(out[0], x, "replay folds to the canonical handle");
    }

    #[test]
    fn absorb_var_table_is_first_wins() {
        let mut central = ExprArena::new();
        let base_nodes = central.len();
        let mut w1 = central.clone();
        let (_, a) = w1.fresh_var(VarInfo::byte());
        central.absorb(&w1, base_nodes, &[a]);
        let mut w2 = ExprArena::new();
        let (_, b) = w2.fresh_var(VarInfo::range(0, 7));
        central.absorb(&w2, 0, &[b]);
        assert_eq!(central.n_vars(), 1);
        assert_eq!(
            central.var_info(VarId(0)),
            VarInfo::byte(),
            "the id's existing domain wins"
        );
    }

    #[test]
    fn absorb_deep_chain_does_not_overflow() {
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let base_nodes = central.len();
        let mut worker = central.clone();
        let mut e = x;
        for _ in 0..100_000 {
            let one = worker.constant(1);
            e = worker.bin(Op::Add, e, one);
        }
        let out = central.absorb(&worker, base_nodes, &[e]);
        assert_eq!(central.eval(out[0], &[5]), 100_005);
    }

    #[test]
    fn deep_chain_eval_does_not_overflow() {
        let mut a = ExprArena::new();
        let (_, mut e) = a.fresh_var(VarInfo::byte());
        for _ in 0..100_000 {
            let one = a.constant(1);
            e = a.bin(Op::Add, e, one);
        }
        assert_eq!(a.eval(e, &[5]), 100_005);
    }

    #[test]
    fn freeze_is_invisible_to_readers() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let t = a.bin(Op::Mul, x, ten);
        let mut flat = a.clone(); // never frozen, the reference behavior
        assert_eq!(a.generation(), 0);
        assert_eq!(a.freeze(), 1);
        assert_eq!(a.generation(), 1);
        assert_eq!(a.frozen_len(), a.len());
        // Same handles, same nodes, same eval across the split.
        assert_eq!(a.node(t), flat.node(t));
        assert_eq!(a.eval(t, &[4]), 40);
        // Interning dedupes against the frozen prefix.
        assert_eq!(a.constant(10), ten);
        assert_eq!(a.bin(Op::Mul, x, ten), t);
        assert_eq!(a.len(), flat.len(), "no duplicate nodes after freeze");
        // New nodes keep absolute numbering identical to the flat arena.
        let one_a = a.constant(1);
        let one_f = flat.constant(1);
        assert_eq!(one_a, one_f);
        let e_a = a.bin(Op::Add, t, one_a);
        let e_f = flat.bin(Op::Add, t, one_f);
        assert_eq!(e_a, e_f);
        assert_eq!(a.eval(e_a, &[4]), flat.eval(e_f, &[4]));
    }

    #[test]
    fn freeze_with_empty_suffix_is_free() {
        let mut a = ExprArena::new();
        assert_eq!(a.freeze(), 0, "empty arena: nothing to freeze");
        assert_eq!(a.generation(), 0);
        a.constant(3);
        assert_eq!(a.freeze(), 1);
        assert_eq!(a.freeze(), 1, "no new nodes: generation stable");
        a.constant(4);
        assert_eq!(a.freeze(), 2);
    }

    #[test]
    fn frozen_snapshot_is_never_mutated_under_a_live_clone() {
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let five = central.constant(5);
        let e = central.bin(Op::Add, x, five);
        let g1 = central.freeze();

        // A clone shares the frozen prefix by refcount.
        let worker = central.clone();
        assert_eq!(worker.generation(), g1);

        // Central extends and refreezes while the clone is alive: the
        // shared generation-g1 snapshot must stay byte-identical, so the
        // new generation is built from a copied core.
        let seven = central.constant(7);
        central.bin(Op::Mul, e, seven);
        let g2 = central.freeze();
        assert_eq!(g2, g1 + 1);
        assert_eq!(worker.generation(), g1, "clone still reads g1");
        assert_eq!(worker.len(), 3, "clone's node count unchanged");
        assert_eq!(worker.node(e), Node::Bin(Op::Add, x, five));
        assert_eq!(central.eval(e, &[2]), worker.eval(e, &[2]));
    }

    #[test]
    fn clone_of_frozen_arena_diverges_without_aliasing() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        a.freeze();
        let mut b = a.clone();
        // Both sides append different suffixes on the shared base.
        let two = a.constant(2);
        let ea = a.bin(Op::Add, x, two);
        let three = b.constant(3);
        let eb = b.bin(Op::Add, x, three);
        assert_eq!(a.node(ea), Node::Bin(Op::Add, x, two));
        assert_eq!(b.node(eb), Node::Bin(Op::Add, x, three));
        assert_eq!(a.eval(ea, &[1]), 3);
        assert_eq!(b.eval(eb, &[1]), 4);
    }

    #[test]
    fn absorb_works_across_frozen_boundaries() {
        let mut central = ExprArena::new();
        let (_, x) = central.fresh_var(VarInfo::byte());
        let c = central.constant(7);
        let base_expr = central.bin(Op::Add, x, c);
        central.freeze();
        let base_nodes = central.len();

        let mut worker = central.clone();
        worker.freeze();
        let (_, y) = worker.fresh_var(VarInfo::range(-1, 1000));
        let sum = worker.bin(Op::Add, base_expr, y);
        let two = worker.constant(2);
        let root = worker.bin(Op::Mul, sum, two);
        // Freeze mid-build: absorb must read through the worker's split.
        worker.freeze();

        let out = central.absorb(&worker, base_nodes, &[root, base_expr, x]);
        assert_eq!(out, vec![root, base_expr, x], "numbering is reproduced");
        assert_eq!(central.len(), worker.len());
        assert_eq!(central.eval(root, &[3, 5]), ((3 + 7) + 5) * 2);
    }
}
