//! Interval analysis over expression DAGs.
//!
//! Computes a conservative `[lo, hi]` range for an expression given the
//! variable domains. Used to prune obviously-unsatisfiable pending
//! constraint sets before spending search budget on them (the replay
//! engine keeps a list of pending sets; cheap refutation matters).

use crate::arena::{ExprArena, ExprRef, Node};
use crate::op::{Op, UnOp};
use std::collections::HashMap;

/// An inclusive integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The full 64-bit range (used when precision is lost).
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A single point.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Creates an interval, normalizing an inverted pair.
    pub fn new(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// True if `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True if the interval is exactly `{0}`.
    pub fn is_zero(&self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    fn from_i128(lo: i128, hi: i128) -> Self {
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        // If the true range exceeds i64, wrapping may occur: give up.
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            Interval::FULL
        } else {
            Interval::new(clamp(lo), clamp(hi))
        }
    }
}

/// Computes a conservative range for `root` under the arena's variable
/// domains.
pub fn range(arena: &ExprArena, root: ExprRef) -> Interval {
    let mut memo: HashMap<ExprRef, Interval> = HashMap::new();
    range_memo(arena, root, &mut memo)
}

fn range_memo(arena: &ExprArena, r: ExprRef, memo: &mut HashMap<ExprRef, Interval>) -> Interval {
    if let Some(i) = memo.get(&r) {
        return *i;
    }
    let out = match arena.node(r) {
        Node::Const(v) => Interval::point(v),
        Node::Var(v) => {
            let info = arena.var_info(v);
            Interval::new(info.lo, info.hi)
        }
        Node::Un(op, a) => {
            let ia = range_memo(arena, a, memo);
            match op {
                UnOp::Neg => Interval::from_i128(-(ia.hi as i128), -(ia.lo as i128)),
                UnOp::Not => {
                    if !ia.contains(0) {
                        Interval::point(0)
                    } else if ia.is_zero() {
                        Interval::point(1)
                    } else {
                        Interval::new(0, 1)
                    }
                }
                UnOp::BitNot => Interval::from_i128(!(ia.hi as i128), !(ia.lo as i128)),
            }
        }
        Node::Bin(op, a, b) => {
            let ia = range_memo(arena, a, memo);
            let ib = range_memo(arena, b, memo);
            bin_range(op, ia, ib)
        }
    };
    memo.insert(r, out);
    out
}

fn bin_range(op: Op, a: Interval, b: Interval) -> Interval {
    let corners = |f: fn(i128, i128) -> i128| {
        let vals = [
            f(a.lo as i128, b.lo as i128),
            f(a.lo as i128, b.hi as i128),
            f(a.hi as i128, b.lo as i128),
            f(a.hi as i128, b.hi as i128),
        ];
        let lo = *vals.iter().min().expect("non-empty");
        let hi = *vals.iter().max().expect("non-empty");
        Interval::from_i128(lo, hi)
    };
    match op {
        Op::Add => Interval::from_i128(a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128),
        Op::Sub => Interval::from_i128(a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128),
        Op::Mul => corners(|x, y| x * y),
        Op::Div => {
            if b.contains(0) {
                // Total semantics make x/0 == 0; the result range must
                // include 0 and the corner quotients with b = ±1.
                Interval::FULL
            } else {
                corners(|x, y| x / y)
            }
        }
        Op::Rem => {
            if b.lo > 0 {
                Interval::new(-(b.hi - 1).max(0), b.hi - 1)
            } else {
                Interval::FULL
            }
        }
        Op::And => {
            if a.lo >= 0 && b.lo >= 0 {
                Interval::new(0, a.hi.min(b.hi))
            } else {
                Interval::FULL
            }
        }
        Op::Or | Op::Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                let bits = 64 - (a.hi | b.hi).leading_zeros().min(63);
                let max = if bits >= 63 {
                    i64::MAX
                } else {
                    (1i64 << bits) - 1
                };
                Interval::new(0, max)
            } else {
                Interval::FULL
            }
        }
        Op::Shl | Op::Shr => Interval::FULL,
        Op::Eq => {
            let disjoint = a.hi < b.lo || b.hi < a.lo;
            let both_points_equal = a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
            cmp_range(both_points_equal, disjoint)
        }
        Op::Ne => {
            let disjoint = a.hi < b.lo || b.hi < a.lo;
            let both_points_equal = a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
            cmp_range(disjoint, both_points_equal)
        }
        Op::Lt => cmp_range(a.hi < b.lo, a.lo >= b.hi),
        Op::Le => cmp_range(a.hi <= b.lo, a.lo > b.hi),
        Op::Gt => cmp_range(a.lo > b.hi, a.hi <= b.lo),
        Op::Ge => cmp_range(a.lo >= b.hi, a.hi < b.lo),
    }
}

/// Range of a comparison: `{1}` if always true, `{0}` if never true,
/// `[0,1]` otherwise.
fn cmp_range(always: bool, never: bool) -> Interval {
    if always {
        Interval::point(1)
    } else if never {
        Interval::point(0)
    } else {
        Interval::new(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;

    #[test]
    fn byte_arithmetic_ranges() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let e = a.bin(Op::Add, x, ten);
        assert_eq!(range(&a, e), Interval::new(10, 265));
    }

    #[test]
    fn comparison_definitely_false() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let big = a.constant(1000);
        let e = a.bin(Op::Gt, x, big); // byte > 1000 : impossible
        assert!(range(&a, e).is_zero());
    }

    #[test]
    fn comparison_possible() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let c = a.constant(65);
        let e = a.bin(Op::Eq, x, c);
        assert_eq!(range(&a, e), Interval::new(0, 1));
    }

    #[test]
    fn eq_of_disjoint_ranges_is_false() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(0, 10));
        let c = a.constant(50);
        let e = a.bin(Op::Eq, x, c);
        assert!(range(&a, e).is_zero());
    }

    #[test]
    fn mask_is_byte_range() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-1000, 1000));
        let e = a.mask_char(x);
        let r = range(&a, e);
        // A possibly-negative operand makes the AND conservative (FULL);
        // a provably non-negative one must stay within the mask.
        assert!(r == Interval::FULL || (r.lo >= 0 && r.hi <= 255));
        let (_, y) = a.fresh_var(VarInfo::range(0, 1000));
        let masked = a.mask_char(y);
        let ry = range(&a, masked);
        assert!(
            ry.lo >= 0 && ry.hi <= 255,
            "non-negative mask is tight: {ry:?}"
        );
    }

    #[test]
    fn negation_flips() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(3, 7));
        let e = a.un(UnOp::Neg, x);
        assert_eq!(range(&a, e), Interval::new(-7, -3));
    }

    #[test]
    fn not_of_nonzero_is_zero() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(5, 9));
        let e = a.un(UnOp::Not, x);
        assert_eq!(range(&a, e), Interval::point(0));
    }

    #[test]
    fn multiplication_corners() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-3, 4));
        let c = a.constant(-2);
        let e = a.bin(Op::Mul, x, c);
        assert_eq!(range(&a, e), Interval::new(-8, 6));
    }
}
