//! Interval analysis over expression DAGs.
//!
//! Computes a conservative `[lo, hi]` range for an expression given the
//! variable domains. Used to prune obviously-unsatisfiable pending
//! constraint sets before spending search budget on them (the replay
//! engine keeps a list of pending sets; cheap refutation matters).
//!
//! Besides the forward direction ([`range`]), this module implements
//! **backward interval propagation** ([`propagate`]): given the
//! first-class [`RangeConstraint`](crate::constraint::RangeConstraint)s of
//! a set, per-variable domains are narrowed by pushing each constraint's
//! target interval down the expression spine (inverting `+`, `-`, unary
//! negation and multiplication by a constant). An empty intersection
//! anywhere proves the set unsatisfiable without any search — this is what
//! keeps the range/alignment/region constraint forms from blowing up the
//! stochastic solver.

use crate::arena::{ExprArena, ExprRef, Node, VarInfo};
use crate::constraint::ConstraintSet;
use crate::op::{Op, UnOp};
use std::collections::HashMap;

/// An inclusive integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The full 64-bit range (used when precision is lost).
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A single point.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Creates an interval, normalizing an inverted pair.
    pub fn new(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// True if `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True if the interval is exactly `{0}`.
    pub fn is_zero(&self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    fn from_i128(lo: i128, hi: i128) -> Self {
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        // If the true range exceeds i64, wrapping may occur: give up.
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            Interval::FULL
        } else {
            Interval::new(clamp(lo), clamp(hi))
        }
    }

    /// Intersection of two intervals; `None` when they are disjoint (the
    /// empty interval is unrepresentable by design — emptiness is the
    /// UNSAT signal and must not be silently carried around).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Narrows the interval to the values `v` with
    /// `(v - phase) % align == 0`, i.e. shrinks `lo` up to the first
    /// aligned point and `hi` down to the last. `None` when no aligned
    /// point exists in the interval; the interval unchanged when
    /// `align <= 1`.
    pub fn align_to(&self, align: i64, phase: i64) -> Option<Interval> {
        if align <= 1 {
            return Some(*self);
        }
        let lo = align_up(self.lo, align, phase)?;
        let hi = align_down(self.hi, align, phase)?;
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

/// Smallest `v >= x` with `(v - phase) % align == 0` (`align > 1`).
fn align_up(x: i64, align: i64, phase: i64) -> Option<i64> {
    let rem = (x as i128 - phase as i128).rem_euclid(align as i128);
    let v = x as i128 + if rem == 0 { 0 } else { align as i128 - rem };
    (v <= i64::MAX as i128).then_some(v as i64)
}

/// Largest `v <= x` with `(v - phase) % align == 0` (`align > 1`).
fn align_down(x: i64, align: i64, phase: i64) -> Option<i64> {
    let rem = (x as i128 - phase as i128).rem_euclid(align as i128);
    let v = x as i128 - rem;
    (v >= i64::MIN as i128).then_some(v as i64)
}

/// Computes a conservative range for `root` under the arena's variable
/// domains.
pub fn range(arena: &ExprArena, root: ExprRef) -> Interval {
    let mut memo: HashMap<ExprRef, Interval> = HashMap::new();
    range_memo(arena, root, None, &mut memo)
}

/// Like [`range`], but with the variable domains overridden by `domains`
/// (indexed by `VarId`; variables beyond its length fall back to the
/// arena's declared domains). Used by [`propagate`] so each narrowing pass
/// sees the domains the previous pass produced.
pub fn range_in(arena: &ExprArena, root: ExprRef, domains: &[VarInfo]) -> Interval {
    let mut memo: HashMap<ExprRef, Interval> = HashMap::new();
    range_memo(arena, root, Some(domains), &mut memo)
}

fn range_memo(
    arena: &ExprArena,
    r: ExprRef,
    domains: Option<&[VarInfo]>,
    memo: &mut HashMap<ExprRef, Interval>,
) -> Interval {
    if let Some(i) = memo.get(&r) {
        return *i;
    }
    let out = match arena.node(r) {
        Node::Const(v) => Interval::point(v),
        Node::Var(v) => {
            let info = domains
                .and_then(|d| d.get(v.0 as usize).copied())
                .unwrap_or_else(|| arena.var_info(v));
            Interval::new(info.lo, info.hi)
        }
        Node::Un(op, a) => {
            let ia = range_memo(arena, a, domains, memo);
            match op {
                UnOp::Neg => Interval::from_i128(-(ia.hi as i128), -(ia.lo as i128)),
                UnOp::Not => {
                    if !ia.contains(0) {
                        Interval::point(0)
                    } else if ia.is_zero() {
                        Interval::point(1)
                    } else {
                        Interval::new(0, 1)
                    }
                }
                UnOp::BitNot => Interval::from_i128(!(ia.hi as i128), !(ia.lo as i128)),
            }
        }
        Node::Bin(op, a, b) => {
            let ia = range_memo(arena, a, domains, memo);
            let ib = range_memo(arena, b, domains, memo);
            bin_range(op, ia, ib)
        }
    };
    memo.insert(r, out);
    out
}

fn bin_range(op: Op, a: Interval, b: Interval) -> Interval {
    let corners = |f: fn(i128, i128) -> i128| {
        let vals = [
            f(a.lo as i128, b.lo as i128),
            f(a.lo as i128, b.hi as i128),
            f(a.hi as i128, b.lo as i128),
            f(a.hi as i128, b.hi as i128),
        ];
        let lo = *vals.iter().min().expect("non-empty");
        let hi = *vals.iter().max().expect("non-empty");
        Interval::from_i128(lo, hi)
    };
    match op {
        Op::Add => Interval::from_i128(a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128),
        Op::Sub => Interval::from_i128(a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128),
        Op::Mul => corners(|x, y| x * y),
        Op::Div => {
            if b.contains(0) {
                // Total semantics make x/0 == 0; the result range must
                // include 0 and the corner quotients with b = ±1.
                Interval::FULL
            } else {
                corners(|x, y| x / y)
            }
        }
        Op::Rem => {
            if b.lo > 0 {
                Interval::new(-(b.hi - 1).max(0), b.hi - 1)
            } else {
                Interval::FULL
            }
        }
        Op::And => {
            if a.lo >= 0 && b.lo >= 0 {
                Interval::new(0, a.hi.min(b.hi))
            } else {
                Interval::FULL
            }
        }
        Op::Or | Op::Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                let bits = 64 - (a.hi | b.hi).leading_zeros().min(63);
                let max = if bits >= 63 {
                    i64::MAX
                } else {
                    (1i64 << bits) - 1
                };
                Interval::new(0, max)
            } else {
                Interval::FULL
            }
        }
        Op::Shl | Op::Shr => Interval::FULL,
        Op::Eq => {
            let disjoint = a.hi < b.lo || b.hi < a.lo;
            let both_points_equal = a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
            cmp_range(both_points_equal, disjoint)
        }
        Op::Ne => {
            let disjoint = a.hi < b.lo || b.hi < a.lo;
            let both_points_equal = a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
            cmp_range(disjoint, both_points_equal)
        }
        Op::Lt => cmp_range(a.hi < b.lo, a.lo >= b.hi),
        Op::Le => cmp_range(a.hi <= b.lo, a.lo > b.hi),
        Op::Gt => cmp_range(a.lo > b.hi, a.hi <= b.lo),
        Op::Ge => cmp_range(a.lo >= b.hi, a.hi < b.lo),
    }
}

/// Range of a comparison: `{1}` if always true, `{0}` if never true,
/// `[0,1]` otherwise.
fn cmp_range(always: bool, never: bool) -> Interval {
    if always {
        Interval::point(1)
    } else if never {
        Interval::point(0)
    } else {
        Interval::new(0, 1)
    }
}

/// Narrows the per-variable domains of `arena` under the range
/// constraints of `cs` by backward interval propagation.
///
/// Returns the narrowed domains (indexed by `VarId`), or `None` when some
/// constraint's target interval is provably empty — an UNSAT proof that
/// costs O(constraints × expression size) instead of a search.
///
/// Two passes are run so information can flow between constraints sharing
/// variables (constraint A narrowing `x` tightens the forward interval B
/// sees). Alignment requirements participate by shrinking the target
/// interval to its aligned sub-range before the backward walk; the
/// alignment itself is not pushed below the constraint root (bounds
/// propagate soundly through any spine, phases do not).
pub fn propagate(arena: &ExprArena, cs: &ConstraintSet) -> Option<Vec<VarInfo>> {
    let mut dom: Vec<VarInfo> = arena.var_infos().to_vec();
    if cs.ranges.is_empty() {
        return Some(dom);
    }
    for _pass in 0..2 {
        for rc in &cs.ranges {
            let fwd = range_in(arena, rc.expr, &dom);
            let want = fwd.intersect(&rc.interval())?;
            let want = want.align_to(rc.align, rc.phase)?;
            narrow(arena, rc.expr, want, &mut dom)?;
        }
    }
    Some(dom)
}

/// Pushes `want` (the interval the expression must land in) down the
/// expression, narrowing variable domains. Returns `None` on an empty
/// intersection. Conservative: spines it cannot invert narrow nothing.
fn narrow(arena: &ExprArena, r: ExprRef, want: Interval, dom: &mut [VarInfo]) -> Option<()> {
    match arena.node(r) {
        Node::Const(v) => want.contains(v).then_some(()),
        Node::Var(v) => {
            let i = v.0 as usize;
            let cur = Interval::new(dom[i].lo, dom[i].hi);
            let n = cur.intersect(&want)?;
            dom[i] = VarInfo::range(n.lo, n.hi);
            Some(())
        }
        Node::Un(UnOp::Neg, a) => {
            let flipped = Interval::from_i128(-(want.hi as i128), -(want.lo as i128));
            narrow(arena, a, flipped, dom)
        }
        Node::Bin(Op::Add, a, b) => {
            // a ∈ want − I(b), b ∈ want − I(a).
            let ib = range_in(arena, b, dom);
            let wa = Interval::from_i128(
                want.lo as i128 - ib.hi as i128,
                want.hi as i128 - ib.lo as i128,
            );
            narrow(arena, a, wa, dom)?;
            let ia = range_in(arena, a, dom);
            let wb = Interval::from_i128(
                want.lo as i128 - ia.hi as i128,
                want.hi as i128 - ia.lo as i128,
            );
            narrow(arena, b, wb, dom)
        }
        Node::Bin(Op::Sub, a, b) => {
            // a ∈ want + I(b), b ∈ I(a) − want.
            let ib = range_in(arena, b, dom);
            let wa = Interval::from_i128(
                want.lo as i128 + ib.lo as i128,
                want.hi as i128 + ib.hi as i128,
            );
            narrow(arena, a, wa, dom)?;
            let ia = range_in(arena, a, dom);
            let wb = Interval::from_i128(
                ia.lo as i128 - want.hi as i128,
                ia.hi as i128 - want.lo as i128,
            );
            narrow(arena, b, wb, dom)
        }
        Node::Bin(Op::Mul, a, b) => {
            // Invertible only against a nonzero constant factor.
            let (sym, c) = match (arena.node(a), arena.node(b)) {
                (_, Node::Const(c)) if c != 0 => (a, c),
                (Node::Const(c), _) if c != 0 => (b, c),
                _ => return Some(()),
            };
            // sym ∈ [ceil(lo/c), floor(hi/c)] (for c > 0; flipped else).
            let (lo, hi) = if c > 0 {
                (div_ceil(want.lo, c), div_floor(want.hi, c))
            } else {
                (div_ceil(want.hi, c), div_floor(want.lo, c))
            };
            if lo > hi {
                return None;
            }
            narrow(arena, sym, Interval { lo, hi }, dom)
        }
        // Anything else (masks, shifts, comparisons, two-sided products):
        // no narrowing, but no false refutation either.
        _ => Some(()),
    }
}

/// Floor division on signed integers (rounds toward negative infinity).
/// Shared with the concolic hosts' region-bound arithmetic.
pub fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on signed integers (rounds toward positive
/// infinity). Shared with the concolic hosts' region-bound arithmetic.
pub fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::VarInfo;

    #[test]
    fn byte_arithmetic_ranges() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let e = a.bin(Op::Add, x, ten);
        assert_eq!(range(&a, e), Interval::new(10, 265));
    }

    #[test]
    fn comparison_definitely_false() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let big = a.constant(1000);
        let e = a.bin(Op::Gt, x, big); // byte > 1000 : impossible
        assert!(range(&a, e).is_zero());
    }

    #[test]
    fn comparison_possible() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let c = a.constant(65);
        let e = a.bin(Op::Eq, x, c);
        assert_eq!(range(&a, e), Interval::new(0, 1));
    }

    #[test]
    fn eq_of_disjoint_ranges_is_false() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(0, 10));
        let c = a.constant(50);
        let e = a.bin(Op::Eq, x, c);
        assert!(range(&a, e).is_zero());
    }

    #[test]
    fn mask_is_byte_range() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-1000, 1000));
        let e = a.mask_char(x);
        let r = range(&a, e);
        // A possibly-negative operand makes the AND conservative (FULL);
        // a provably non-negative one must stay within the mask.
        assert!(r == Interval::FULL || (r.lo >= 0 && r.hi <= 255));
        let (_, y) = a.fresh_var(VarInfo::range(0, 1000));
        let masked = a.mask_char(y);
        let ry = range(&a, masked);
        assert!(
            ry.lo >= 0 && ry.hi <= 255,
            "non-negative mask is tight: {ry:?}"
        );
    }

    #[test]
    fn negation_flips() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(3, 7));
        let e = a.un(UnOp::Neg, x);
        assert_eq!(range(&a, e), Interval::new(-7, -3));
    }

    #[test]
    fn not_of_nonzero_is_zero() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(5, 9));
        let e = a.un(UnOp::Not, x);
        assert_eq!(range(&a, e), Interval::point(0));
    }

    #[test]
    fn multiplication_corners() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-3, 4));
        let c = a.constant(-2);
        let e = a.bin(Op::Mul, x, c);
        assert_eq!(range(&a, e), Interval::new(-8, 6));
    }

    #[test]
    fn intersect_detects_empty() {
        let a = Interval::new(0, 10);
        let b = Interval::new(11, 20);
        assert_eq!(a.intersect(&b), None, "disjoint intervals have no meet");
        assert_eq!(
            a.intersect(&Interval::new(5, 20)),
            Some(Interval::new(5, 10))
        );
        assert_eq!(a.intersect(&Interval::point(10)), Some(Interval::point(10)));
    }

    #[test]
    fn align_to_shrinks_to_aligned_points() {
        // Multiples of 4 in [3, 18]: 4..16.
        assert_eq!(
            Interval::new(3, 18).align_to(4, 0),
            Some(Interval::new(4, 16))
        );
        // Phase shifts the lattice: v ≡ 2 (mod 4) in [3, 18]: 6..18.
        assert_eq!(
            Interval::new(3, 18).align_to(4, 2),
            Some(Interval::new(6, 18))
        );
        // align <= 1 is a no-op.
        assert_eq!(
            Interval::new(3, 18).align_to(1, 0),
            Some(Interval::new(3, 18))
        );
        // No aligned point in a narrow window.
        assert_eq!(Interval::new(5, 7).align_to(8, 0), None);
        // Negative bounds round correctly.
        assert_eq!(
            Interval::new(-7, -1).align_to(4, 0),
            Some(Interval::point(-4))
        );
    }
}

#[cfg(test)]
mod propagate_tests {
    use super::*;
    use crate::arena::VarInfo;
    use crate::constraint::{ConstraintSet, RangeConstraint};

    #[test]
    fn var_domain_narrows_through_add_and_mul() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let four = a.constant(4);
        let seven = a.constant(7);
        let scaled = a.bin(Op::Mul, x, four);
        let off = a.bin(Op::Add, scaled, seven); // x*4 + 7
        let mut cs = ConstraintSet::new();
        // 27 <= x*4 + 7 <= 48  ⇒  5 <= x <= 10 (ceil(20/4), floor(41/4)).
        cs.push_range(RangeConstraint::range(off, 27, 48, 31));
        let dom = propagate(&a, &cs).expect("satisfiable");
        assert_eq!((dom[0].lo, dom[0].hi), (5, 10));
    }

    #[test]
    fn empty_interval_is_detected() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let ten = a.constant(10);
        let sum = a.bin(Op::Add, x, ten); // x + 10 ∈ [10, 265]
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(sum, 300, 400, 300));
        assert_eq!(propagate(&a, &cs), None, "disjoint bounds refute");
    }

    #[test]
    fn contradicting_ranges_refute_each_other() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(x, 0, 10, 5));
        cs.push_range(RangeConstraint::range(x, 20, 30, 25));
        assert_eq!(propagate(&a, &cs), None);
    }

    #[test]
    fn alignment_intersection_narrows_bounds() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(0, 100));
        let mut cs = ConstraintSet::new();
        // x ∈ [10, 30] and x ≡ 0 (mod 8): {16, 24}.
        cs.push_range(RangeConstraint::aligned(x, 10, 30, 8, 0, 16));
        let dom = propagate(&a, &cs).expect("satisfiable");
        assert_eq!((dom[0].lo, dom[0].hi), (16, 24));
    }

    #[test]
    fn alignment_with_no_admissible_point_refutes() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let mut cs = ConstraintSet::new();
        // x ∈ [33, 38] with x ≡ 0 (mod 16): nothing.
        cs.push_range(RangeConstraint::aligned(x, 33, 38, 16, 0, 33));
        assert_eq!(propagate(&a, &cs), None);
    }

    #[test]
    fn second_pass_flows_between_constraints() {
        // Constraint on x narrows what x + y can reach; the second pass
        // then narrows y further than one pass could.
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::byte());
        let (_, y) = a.fresh_var(VarInfo::byte());
        let sum = a.bin(Op::Add, x, y);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(sum, 0, 20, 10));
        cs.push_range(RangeConstraint::range(x, 15, 200, 15));
        let dom = propagate(&a, &cs).expect("satisfiable");
        assert!(dom[0].lo >= 15 && dom[0].hi <= 20, "x: {:?}", dom[0]);
        assert!(
            dom[1].hi <= 5,
            "y must fit under the sum bound: {:?}",
            dom[1]
        );
    }

    #[test]
    fn negation_spine_inverts() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-100, 100));
        let neg = a.un(crate::op::UnOp::Neg, x);
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(neg, 10, 20, 15));
        let dom = propagate(&a, &cs).expect("satisfiable");
        assert_eq!((dom[0].lo, dom[0].hi), (-20, -10));
    }

    #[test]
    fn uninvertible_spines_do_not_false_refute() {
        let mut a = ExprArena::new();
        let (_, x) = a.fresh_var(VarInfo::range(-1000, 1000));
        let masked = a.mask_char(x); // x & 0xff: not invertible
        let mut cs = ConstraintSet::new();
        cs.push_range(RangeConstraint::range(masked, 0, 200, 100));
        assert!(propagate(&a, &cs).is_some(), "conservative, not wrong");
    }
}
