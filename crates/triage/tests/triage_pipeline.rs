//! End-to-end pipeline suites: report serde, clustering determinism
//! across worker counts, witness conformance, escalation, and the
//! amortization ledger.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use retrace_core::metrics::TriageRow;
use retrace_triage::{
    deploy_corpus, register_standard_fleet, report_digest, TriageConfig, TriageOutcome,
    TriagePipeline,
};
use workloads::corpus::{fleet_mixed, mixed, CorpusLabel};
use workloads::CORPUS_PROGRAMS;

fn pipeline_at(workers: usize) -> TriagePipeline {
    let mut p = TriagePipeline::new(TriageConfig {
        workers,
        ..TriageConfig::default()
    });
    register_standard_fleet(&mut p);
    p
}

/// Rows with the machine-dependent wall field masked.
fn masked_rows(out: &TriageOutcome) -> Vec<TriageRow> {
    out.rows()
        .into_iter()
        .map(|mut r| {
            r.wall_ms = 0;
            r
        })
        .collect()
}

/// A shipped report must survive the serde round trip bit-exactly: the
/// developer side clusters by digest, so any drift in crash, trace or
/// syscall records would silently fork classes.
#[test]
fn bug_report_serde_round_trip() {
    let mut p = pipeline_at(1);
    let corpus = mixed("mkdir", 8, 7);
    deploy_corpus(&mut p, &corpus);
    let subs = p.submissions();
    assert!(!subs.is_empty(), "mkdir corpus files reports");
    for sub in subs {
        let json = serde_json::to_string(&sub.report).expect("serializable");
        let back: instrument::BugReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.crash, sub.report.crash);
        assert_eq!(back.trace, sub.report.trace);
        assert_eq!(back.syscalls.records, sub.report.syscalls.records);
        assert_eq!(back.method, sub.report.method);
        assert_eq!(back.cursor_spend_units, sub.report.cursor_spend_units);
        assert_eq!(report_digest(&back), report_digest(&sub.report));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Same corpus + seed ⇒ identical class partition, identical
    /// representative choice and identical deterministic rows at
    /// workers 1 and 4 (the outer dispatch must be as worker-count
    /// invariant as the engines it fans out).
    #[test]
    fn clustering_is_deterministic_across_worker_counts(seed in 0u64..1000) {
        let corpus = fleet_mixed(CORPUS_PROGRAMS, 40, seed);
        let mut serial = pipeline_at(1);
        let mut wide = pipeline_at(4);
        prop_assert_eq!(
            deploy_corpus(&mut serial, &corpus),
            deploy_corpus(&mut wide, &corpus)
        );
        let a = serial.triage();
        let b = wide.triage();
        prop_assert_eq!(a.classes.len(), b.classes.len());
        for (ca, cb) in a.classes.iter().zip(b.classes.iter()) {
            prop_assert_eq!(&ca.key, &cb.key);
            prop_assert_eq!(ca.digest, cb.digest);
            prop_assert_eq!(ca.representative, cb.representative);
            prop_assert_eq!(&ca.members, &cb.members);
            prop_assert_eq!(ca.escalated, cb.escalated);
        }
        let (ra, rb) = (masked_rows(&a), masked_rows(&b));
        for (x, y) in ra.iter().zip(rb.iter()) {
            prop_assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // The partition covers every report exactly once.
        let covered: usize = a.classes.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(covered, a.ledger.reports);
        prop_assert!(a.ledger.reports >= a.classes.len());
    }
}

/// Every member of a class conformance-checks against the
/// representative's witness: the witness re-deployment produces a
/// report whose digest equals each member's (not just the class's
/// stored digest).
#[test]
fn members_conform_to_representative_witness() {
    let mut p = pipeline_at(1);
    let corpus = fleet_mixed(CORPUS_PROGRAMS, 60, 42);
    let filed = deploy_corpus(&mut p, &corpus);
    let expected = corpus
        .iter()
        .filter(|e| e.label == CorpusLabel::CrashExpected)
        .count();
    assert_eq!(filed, expected, "ground-truth labels match crash behavior");
    let out = p.triage();
    assert_eq!(
        out.ledger.conformant, out.ledger.reports,
        "every member verified by conformance"
    );
    let multi = out
        .classes
        .iter()
        .find(|c| c.members.len() >= 2)
        .expect("a multi-member class exists");
    assert!(multi.row.reproduced);
    // Replay the representative again by hand (deterministic) and
    // check the witness against each member individually.
    let sub = &p.submissions()[multi.representative];
    let fb = p.binary(sub.binary);
    let bundle = fb.analysis_workbench().analyze(fb.analysis_runs);
    let plan = fb.wb.plan(fb.method, &bundle);
    let res = fb.wb.replay_with(
        &plan,
        &sub.report,
        &sub.spec,
        p.cfg.replay_budget,
        retrace_core::mix_seed(p.cfg.seed, multi.row.class as u64),
    );
    assert!(res.reproduced);
    let witness = res.witness_assignment.expect("witness on reproduction");
    let rerun = fb
        .wb
        .logged_run_assignment(&plan, &sub.spec, &sub.kernel, &witness)
        .report
        .expect("witness crashes again");
    let rerun_digest = report_digest(&rerun);
    for &m in &multi.members {
        assert_eq!(
            report_digest(&p.submissions()[m].report),
            rerun_digest,
            "member {m} conforms to the re-deployed witness"
        );
    }
}

/// With the trace prefix collapsed to zero bits, reports with the same
/// crash site fall into one bucket; the full digest then escalates the
/// distinct variants into their own classes instead of merging them.
#[test]
fn digest_mismatch_in_bucket_escalates() {
    let mut p = TriagePipeline::new(TriageConfig {
        prefix_bits: 0,
        ..TriageConfig::default()
    });
    register_standard_fleet(&mut p);
    // mkdir has three crash-variant pools, all crashing at the same
    // site — identical crash digest and (at 0 bits) identical prefix.
    deploy_corpus(&mut p, &mixed("mkdir", 60, 11));
    let out = p.triage();
    assert!(
        out.classes.len() >= 2,
        "variant pools stay distinct classes"
    );
    assert_eq!(
        out.ledger.escalations,
        out.classes.len() - 1,
        "all but the bucket's first class escalated"
    );
    assert!(out.classes.iter().skip(1).all(|c| c.escalated));
    for c in &out.classes {
        assert!(c.row.reproduced, "escalated classes still replay");
    }
    // The wider default prefix separates the same corpus up front.
    let mut wide = pipeline_at(1);
    deploy_corpus(&mut wide, &mixed("mkdir", 60, 11));
    let wide_out = wide.triage();
    assert_eq!(wide_out.classes.len(), out.classes.len());
    assert_eq!(wide_out.ledger.escalations, 0);
}

/// The amortization ledger: batched triage pays exactly one analysis
/// pass per distinct binary; the naive baseline pays one per report.
#[test]
fn analysis_is_amortized_once_per_binary() {
    let mut p = pipeline_at(1);
    let corpus = fleet_mixed(CORPUS_PROGRAMS, 50, 3);
    deploy_corpus(&mut p, &corpus);
    let out = p.triage();
    assert_eq!(out.ledger.distinct_binaries(), CORPUS_PROGRAMS.len());
    assert_eq!(
        out.ledger.analyses,
        out.ledger.distinct_binaries(),
        "one analysis per binary, regardless of report count"
    );
    assert_eq!(out.ledger.plans, out.ledger.analyses);
    assert_eq!(out.ledger.replays, out.classes.len());
    assert!(out.ledger.reports > out.ledger.analyses * 2);
    // Naive: every processed report pays its own analysis.
    let naive = p.naive_triage(Some(5));
    assert_eq!(naive.reports, 5);
    assert_eq!(naive.analyses, 5);
    assert_eq!(naive.reproduced, 5, "naive replays reproduce too");
}
