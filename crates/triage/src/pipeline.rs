//! The batch triage pipeline: ingest deployments, cluster reports,
//! replay one representative per class, verify members by conformance.
//!
//! ```text
//!   register(binary)──►[lazy: analyze + plan, ONCE per binary]
//!        │
//!   deploy(entry)────►logged run under the binary's plan──crash──►report
//!        │                                                          │
//!   triage()──►cluster by (binary, crash site, trace prefix)────────┘
//!                 │
//!                 ├─ class 0: representative replay ──► witness ──► re-deploy
//!                 ├─ class 1:        (parallel_map over classes)     │
//!                 └─ class k: ...                                    ▼
//!                              members verified by digest conformance
//! ```
//!
//! Determinism: clustering walks submissions in order, classes are
//! numbered first-seen, each class's replay is seeded
//! `mix_seed(cfg.seed, class_index)` and results commit in class order
//! — so every deterministic output is identical at any worker count
//! (the worker pool only changes wall time, like the engines' inner
//! parallelism it reuses).

use std::collections::HashMap;
use std::time::Instant;

use concolic::InputSpec;
use instrument::{BugReport, Method, Plan};
use oskit::KernelConfig;
use replay::InputParts;
use retrace_core::metrics::TriageRow;
use retrace_core::{mix_seed, AnalysisBundle, SearchPolicy, Workbench};
use search::pool::parallel_map;

use crate::cluster::{class_key, crash_digest, report_digest, ClassKey, DEFAULT_PREFIX_BITS};

/// Knobs of one triage run.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Worker threads for the class-replay dispatch (each class's inner
    /// search stays at the binary workbench's own worker count).
    pub workers: usize,
    /// Path-prefix solve cache inside the replays.
    pub cache: bool,
    /// Replay run budget per class representative.
    pub replay_budget: usize,
    /// Trace-prefix bits of the bucket key.
    pub prefix_bits: u64,
    /// Base seed; class `k` replays under `mix_seed(seed, k)`.
    pub seed: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            workers: 1,
            cache: true,
            replay_budget: 300,
            prefix_bits: DEFAULT_PREFIX_BITS,
            seed: 42,
        }
    }
}

/// One binary of the fleet: the replay-side workbench plus the analysis
/// configuration the per-binary preparation runs once.
pub struct FleetBinary {
    /// Display name (unique within a pipeline).
    pub name: String,
    /// The replay-side workbench: program, canonical spec, environment,
    /// replay search policy.
    pub wb: Workbench,
    /// Input shape the one-time concolic analysis explores (servers use
    /// a wider symbolic shape than any single deployment).
    pub analysis_spec: InputSpec,
    /// Search policy of the analysis (servers need the explorer).
    pub analysis_policy: SearchPolicy,
    /// Concolic run budget of the analysis (the LC/HC knob).
    pub analysis_runs: usize,
    /// Instrumentation method of the fleet's plan.
    pub method: Method,
}

impl FleetBinary {
    /// A fleet binary whose analysis mirrors the workbench defaults
    /// (same spec and policy) under the combined method.
    pub fn new(name: &str, wb: Workbench, analysis_runs: usize) -> Self {
        FleetBinary {
            name: name.to_string(),
            analysis_spec: wb.spec.clone(),
            analysis_policy: wb.policy.clone(),
            wb,
            analysis_runs,
            method: Method::DynamicStatic,
        }
    }

    /// The analysis-side workbench: same program and environment, the
    /// analysis spec and policy. Built fresh for each analysis pass so
    /// the naive baseline pays exactly what the amortized path pays
    /// once.
    pub fn analysis_workbench(&self) -> Workbench {
        let mut awb = Workbench::new(self.wb.cp.clone(), self.analysis_spec.clone());
        awb.kernel = self.wb.kernel.clone();
        awb.static_exclude = self.wb.static_exclude.clone();
        awb.seed = self.wb.seed;
        awb.policy = self.analysis_policy.clone();
        awb.concretization = self.wb.concretization;
        awb.workers = self.wb.workers;
        awb.cache = self.wb.cache;
        awb
    }
}

/// One filed report with the deployment context replay needs.
pub struct Submission {
    /// Registered binary index.
    pub binary: usize,
    /// The deployment's input shape (connection lengths vary per user).
    pub spec: InputSpec,
    /// The deployment's environment (signal plan included).
    pub kernel: KernelConfig,
    /// The shipped report.
    pub report: BugReport,
}

/// Per-binary prepared state: the once-per-binary analysis artifacts.
struct Prepared {
    #[allow(dead_code)]
    bundle: AnalysisBundle,
    plan: Plan,
}

/// Counts of what the pipeline actually did — the amortization ledger.
#[derive(Debug, Clone, Default)]
pub struct TriageLedger {
    /// Full analysis passes (concolic + static + plan build). Batched
    /// triage: one per distinct binary. Naive baseline: one per report.
    pub analyses: usize,
    /// Instrumentation plans built (tracks `analyses`).
    pub plans: usize,
    /// Deployments executed through [`TriagePipeline::deploy`].
    pub deployments: usize,
    /// Deployments that exited healthy (no report).
    pub healthy: usize,
    /// Reports submitted.
    pub reports: usize,
    /// Equivalence classes found.
    pub classes: usize,
    /// Classes created by digest mismatch inside an existing bucket
    /// (the prefix said same, the full stream said different).
    pub escalations: usize,
    /// Guided replay searches actually run (== classes in batched mode).
    pub replays: usize,
    /// Members verified by digest conformance against a re-deployed
    /// witness (representatives included).
    pub conformant: usize,
    /// Reports per binary, in registration order.
    pub per_binary: Vec<(String, usize)>,
}

impl TriageLedger {
    /// Binaries that contributed at least one report.
    pub fn distinct_binaries(&self) -> usize {
        self.per_binary.iter().filter(|(_, n)| *n > 0).count()
    }
}

/// One triaged equivalence class.
pub struct TriageClass {
    /// Deterministic metrics row (wall field machine-dependent).
    pub row: TriageRow,
    /// The bucket key the class lives under.
    pub key: ClassKey,
    /// Exact report digest all members share.
    pub digest: u128,
    /// Submission index of the representative (first member seen).
    pub representative: usize,
    /// Submission indices of every member, in submission order.
    pub members: Vec<usize>,
    /// Whether the class was split off an existing bucket.
    pub escalated: bool,
    /// The reproducing input the class replay recovered (full argv,
    /// program name included) — the developer's repro for every member
    /// at once. `None` when the representative did not reproduce.
    pub witness_argv: Option<Vec<Vec<u8>>>,
    /// Per-branch-location escalation evidence from the class replay —
    /// input to the adaptive next-generation plan (see
    /// [`TriageOutcome::fleet_escalation`]).
    pub escalation: replay::EscalationReport,
}

/// Result of one batched triage pass.
pub struct TriageOutcome {
    /// Classes in first-seen order.
    pub classes: Vec<TriageClass>,
    /// What the pipeline did to get here.
    pub ledger: TriageLedger,
    /// Wall clock of the triage pass (cluster + replays + conformance).
    pub wall_ms: u64,
}

impl TriageOutcome {
    /// Reports per class — the dedup ratio (≥ 1.0; higher is better).
    pub fn dedup_ratio(&self) -> f64 {
        if self.classes.is_empty() {
            return 1.0;
        }
        self.ledger.reports as f64 / self.classes.len() as f64
    }

    /// The headline metric: reports triaged per second of wall clock.
    pub fn reports_per_sec(&self) -> f64 {
        self.ledger.reports as f64 / (self.wall_ms.max(1) as f64 / 1e3)
    }

    /// The deterministic metric rows, one per class.
    pub fn rows(&self) -> Vec<TriageRow> {
        self.classes.iter().map(|c| c.row.clone()).collect()
    }

    /// Merges every class's escalation evidence for `binary` into one
    /// fleet-level report (counters add, consulted sets union) — what
    /// `Workbench::escalate_plan` consumes to produce the binary's next
    /// instrumentation-plan generation.
    pub fn fleet_escalation(&self, binary_name: &str) -> replay::EscalationReport {
        let mut merged = replay::EscalationReport::new();
        for c in self.classes.iter().filter(|c| c.row.program == binary_name) {
            merged.merge(&c.escalation);
        }
        merged
    }
}

/// Result of the naive one-at-a-time baseline.
#[derive(Debug, Clone)]
pub struct NaiveOutcome {
    /// Reports processed (possibly a documented subsample).
    pub reports: usize,
    /// How many reproduced within budget.
    pub reproduced: usize,
    /// Analysis passes paid (== reports: nothing is amortized).
    pub analyses: usize,
    /// Wall clock of the naive pass.
    pub wall_ms: u64,
}

impl NaiveOutcome {
    /// Average wall per report — the extrapolation basis when the
    /// baseline ran on a subsample.
    pub fn wall_ms_per_report(&self) -> f64 {
        self.wall_ms as f64 / self.reports.max(1) as f64
    }
}

/// The batch triage pipeline.
pub struct TriagePipeline {
    /// Knobs.
    pub cfg: TriageConfig,
    binaries: Vec<FleetBinary>,
    prepared: Vec<Option<Prepared>>,
    subs: Vec<Submission>,
    ledger: TriageLedger,
}

impl TriagePipeline {
    /// An empty pipeline.
    pub fn new(cfg: TriageConfig) -> Self {
        TriagePipeline {
            cfg,
            binaries: Vec::new(),
            prepared: Vec::new(),
            subs: Vec::new(),
            ledger: TriageLedger::default(),
        }
    }

    /// Registers a fleet binary; returns its index. The workbench's
    /// engine knobs are aligned with the pipeline's cache setting (the
    /// outer worker fan-out stays with the pipeline).
    pub fn register(&mut self, mut fb: FleetBinary) -> usize {
        fb.wb.cache = self.cfg.cache;
        self.binaries.push(fb);
        self.prepared.push(None);
        self.ledger
            .per_binary
            .push((self.binaries.last().unwrap().name.clone(), 0));
        self.binaries.len() - 1
    }

    /// The registered binary at `id`.
    pub fn binary(&self, id: usize) -> &FleetBinary {
        &self.binaries[id]
    }

    /// Looks a binary up by name.
    pub fn binary_id(&self, name: &str) -> Option<usize> {
        self.binaries.iter().position(|b| b.name == name)
    }

    /// Submissions filed so far.
    pub fn submissions(&self) -> &[Submission] {
        &self.subs
    }

    /// The ledger so far (triage/naive passes return updated copies).
    pub fn ledger(&self) -> &TriageLedger {
        &self.ledger
    }

    /// Ensures the once-per-binary analysis artifacts exist.
    fn prepare(&mut self, id: usize) {
        if self.prepared[id].is_some() {
            return;
        }
        let fb = &self.binaries[id];
        let bundle = fb.analysis_workbench().analyze(fb.analysis_runs);
        let plan = fb.wb.plan(fb.method, &bundle);
        self.ledger.analyses += 1;
        self.ledger.plans += 1;
        self.prepared[id] = Some(Prepared { bundle, plan });
    }

    /// Runs one deployment of `binary` under its (lazily prepared) plan
    /// with a per-user input shape and environment. A crash files a
    /// report; returns whether one was filed.
    pub fn deploy(
        &mut self,
        binary: usize,
        spec: &InputSpec,
        kernel: &KernelConfig,
        parts: &InputParts,
    ) -> bool {
        self.prepare(binary);
        let plan = &self.prepared[binary].as_ref().expect("prepared").plan;
        let run = self.binaries[binary]
            .wb
            .logged_run_with(plan, spec, kernel, parts);
        self.ledger.deployments += 1;
        match run.report {
            Some(report) => {
                self.submit(binary, spec.clone(), kernel.clone(), report);
                true
            }
            None => {
                self.ledger.healthy += 1;
                false
            }
        }
    }

    /// Files an externally produced report (the ingestion entry point
    /// when deployments happen elsewhere). Prepares the binary so
    /// triage always has a plan for every submission.
    pub fn submit(
        &mut self,
        binary: usize,
        spec: InputSpec,
        kernel: KernelConfig,
        report: BugReport,
    ) {
        self.prepare(binary);
        self.ledger.reports += 1;
        self.ledger.per_binary[binary].1 += 1;
        self.subs.push(Submission {
            binary,
            spec,
            kernel,
            report,
        });
    }

    /// Clusters every submission and replays one representative per
    /// class, verifying members by digest conformance. Deterministic
    /// output (up to the wall fields) at any worker count.
    pub fn triage(&mut self) -> TriageOutcome {
        let t0 = Instant::now();

        // Phase 1: cluster, in submission order. Buckets map to the
        // (ordered) list of class ids they contain.
        struct Build {
            key: ClassKey,
            digest: u128,
            members: Vec<usize>,
            escalated: bool,
        }
        let mut buckets: HashMap<ClassKey, Vec<usize>> = HashMap::new();
        let mut builds: Vec<Build> = Vec::new();
        for (i, sub) in self.subs.iter().enumerate() {
            let key = class_key(sub.binary, &sub.report, self.cfg.prefix_bits);
            let digest = report_digest(&sub.report);
            let ids = buckets.entry(key).or_default();
            if let Some(&cid) = ids.iter().find(|&&cid| builds[cid].digest == digest) {
                builds[cid].members.push(i);
            } else {
                let escalated = !ids.is_empty();
                ids.push(builds.len());
                builds.push(Build {
                    key,
                    digest,
                    members: vec![i],
                    escalated,
                });
            }
        }

        // Phase 2: one representative replay per class, fanned out over
        // the worker pool. Immutable borrows only; results come back in
        // class order and commit serially below.
        let subs = &self.subs;
        let binaries = &self.binaries;
        let prepared = &self.prepared;
        let cfg = &self.cfg;
        let replayed = parallel_map(
            cfg.workers,
            (0..builds.len()).collect::<Vec<usize>>(),
            |_, cid| {
                let b = &builds[cid];
                let sub = &subs[b.members[0]];
                let fb = &binaries[sub.binary];
                let plan = &prepared[sub.binary].as_ref().expect("prepared").plan;
                let t = Instant::now();
                let res = fb.wb.replay_with(
                    plan,
                    &sub.report,
                    &sub.spec,
                    cfg.replay_budget,
                    mix_seed(cfg.seed, cid as u64),
                );
                // Conformance: re-deploy the witness once under the
                // representative's own deployment context and demand
                // the identical report digest.
                let conforms = res
                    .witness_assignment
                    .as_ref()
                    .filter(|_| res.reproduced)
                    .map(|a| {
                        fb.wb
                            .logged_run_assignment(plan, &sub.spec, &sub.kernel, a)
                            .report
                            .map(|r| report_digest(&r) == b.digest)
                            .unwrap_or(false)
                    })
                    .unwrap_or(false);
                (res, conforms, t.elapsed().as_millis() as u64)
            },
        );

        // Phase 3: commit serially in class order.
        let mut classes = Vec::with_capacity(builds.len());
        for (cid, (b, (res, conforms, class_wall))) in
            builds.into_iter().zip(replayed.results).enumerate()
        {
            let sub = &self.subs[b.members[0]];
            let conformed = if conforms { b.members.len() } else { 0 };
            self.ledger.replays += 1;
            self.ledger.conformant += conformed;
            if b.escalated {
                self.ledger.escalations += 1;
            }
            let crash = format!(
                "{:x} @ {}",
                crash_digest(&sub.report.crash) & 0xffff,
                sub.report.crash.loc
            );
            classes.push(TriageClass {
                row: TriageRow {
                    class: cid,
                    program: self.binaries[sub.binary].name.clone(),
                    crash,
                    members: b.members.len(),
                    reproduced: res.reproduced,
                    runs: res.runs,
                    solver_calls: res.solver_calls,
                    total_instrs: res.total_instrs,
                    conformed,
                    wall_ms: class_wall,
                },
                key: b.key,
                digest: b.digest,
                representative: b.members[0],
                members: b.members,
                escalated: b.escalated,
                witness_argv: res.witness_argv,
                escalation: res.escalation,
            });
        }
        self.ledger.classes = classes.len();

        TriageOutcome {
            classes,
            ledger: self.ledger.clone(),
            wall_ms: t0.elapsed().as_millis() as u64,
        }
    }

    /// The one-at-a-time baseline: every report pays its own analysis
    /// pass, plan build and guided replay — no clustering, no
    /// amortization. `limit` caps the subsample (the full baseline on a
    /// large corpus is exactly the cost this crate exists to avoid);
    /// extrapolate with [`NaiveOutcome::wall_ms_per_report`].
    ///
    /// The rebuilt plan is deterministic, hence identical to the
    /// prepared one — so replaying a report captured under the prepared
    /// plan is well-formed.
    pub fn naive_triage(&self, limit: Option<usize>) -> NaiveOutcome {
        let t0 = Instant::now();
        let n = limit.unwrap_or(self.subs.len()).min(self.subs.len());
        let mut reproduced = 0;
        for (i, sub) in self.subs.iter().take(n).enumerate() {
            let fb = &self.binaries[sub.binary];
            // Pay the full analysis per report — the amortization
            // victim under measurement.
            let bundle = fb.analysis_workbench().analyze(fb.analysis_runs);
            let plan = fb.wb.plan(fb.method, &bundle);
            let res = fb.wb.replay_with(
                &plan,
                &sub.report,
                &sub.spec,
                self.cfg.replay_budget,
                mix_seed(self.cfg.seed, i as u64),
            );
            if res.reproduced {
                reproduced += 1;
            }
        }
        NaiveOutcome {
            reports: n,
            reproduced,
            analyses: n,
            wall_ms: t0.elapsed().as_millis() as u64,
        }
    }
}
