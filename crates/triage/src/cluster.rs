//! Report clustering: the equivalence-class identity of a bug report.
//!
//! Two layers, both built on the solver's shared [`Fnv128`] mixing (the
//! same primitive the search frontier's candidate dedup and the prefix
//! solve cache hash with, so the identities cannot drift apart):
//!
//! - a **bucket key** ([`ClassKey`]): (binary, crash-site digest,
//!   trace-*prefix* hash). Cheap, prefix-bounded — reports that differ
//!   only deep in the trace still bucket together;
//! - an **exact class** inside a bucket: the full [`report_digest`]
//!   over crash, trace wire bytes and syscall records. A digest match
//!   joins the class; a mismatch inside an existing bucket *escalates*
//!   into a new class (progressive detail: the prefix said "same", the
//!   full stream said "different", so the new class gets its own
//!   replay).
//!
//! Conformance checking reuses the same digest: after the class
//! representative's witness is re-deployed, members are verified by
//! digest equality against the produced report — bit-stream conformance
//! instead of a guided search per member.

use instrument::{BugReport, TraceLog};
use minic::{CrashInfo, CrashKind};
use solver::Fnv128;

/// Default trace-prefix budget (bits) for the bucket key. 64 bits of
/// early branch history separate crash paths well before the corpus
/// sizes where prefix collisions would matter; the exact digest behind
/// the bucket catches the rest.
pub const DEFAULT_PREFIX_BITS: u64 = 64;

/// The bucket identity of a report class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    /// Registered binary index within the pipeline.
    pub binary: usize,
    /// Crash-site digest ([`crash_digest`]).
    pub crash: u128,
    /// Trace-prefix hash ([`trace_prefix_hash`]).
    pub prefix: u128,
}

/// The bucket key of a report: binary + crash site + trace prefix.
pub fn class_key(binary: usize, report: &BugReport, prefix_bits: u64) -> ClassKey {
    ClassKey {
        binary,
        crash: crash_digest(&report.crash),
        prefix: trace_prefix_hash(&report.trace, prefix_bits),
    }
}

/// Stable numeric tag of a crash kind. Memory-fault *detail* (object,
/// offset) is deliberately excluded: the crash site plus the trace
/// prefix do the fine discrimination, and offsets can vary across
/// equivalent members (different argv bytes, same overrun).
fn kind_tag(kind: &CrashKind) -> u128 {
    match kind {
        CrashKind::Mem(_) => 1,
        CrashKind::DivByZero => 2,
        CrashKind::AssertFail => 3,
        CrashKind::ExplicitAbort => 4,
        CrashKind::Signal(n) => (5u128 << 32) | (*n as u32 as u128),
        CrashKind::StackOverflow => 6,
    }
}

/// FNV-128 digest of a crash site: kind class, location, function.
pub fn crash_digest(crash: &CrashInfo) -> u128 {
    let mut h = Fnv128::new();
    h.mix(kind_tag(&crash.kind));
    h.mix(crash.loc.unit.0 as u128);
    h.mix(crash.loc.line as u128);
    h.mix(crash.loc.col as u128);
    for &b in crash.func.as_bytes() {
        h.mix(b as u128);
    }
    h.value()
}

/// FNV-128 hash over the first `prefix_bits` recorded branch directions.
///
/// Flat traces hash their true execution-order prefix. Cursor traces
/// have no global order on the wire, so the budget is spent across the
/// per-location streams in location order (each stream contributing its
/// own prefix) — a deterministic identity with the same
/// early-divergence property.
pub fn trace_prefix_hash(trace: &TraceLog, prefix_bits: u64) -> u128 {
    let mut h = Fnv128::new();
    match trace {
        TraceLog::Flat(t) => {
            h.mix(1);
            let n = t.len().min(prefix_bits);
            for i in 0..n {
                h.mix(2 + t.get(i).expect("i < len") as u128);
            }
        }
        TraceLog::Cursors(c) => {
            h.mix(2);
            let mut budget = prefix_bits;
            for s in c.streams() {
                if budget == 0 {
                    break;
                }
                let take = s.bits.len().min(budget);
                h.mix(0x10c_0000_0000u128 ^ s.loc as u128);
                for i in 0..take {
                    h.mix(2 + s.bits.get(i).expect("i < len") as u128);
                }
                budget -= take;
            }
        }
    }
    h.value()
}

/// FNV-128 digest of everything that matters for replaying a report:
/// crash site, instrumentation method, full trace wire bytes and the
/// syscall-result records. Digest equality is the class membership test
/// *and* the conformance test against a re-deployed witness.
pub fn report_digest(report: &BugReport) -> u128 {
    let mut h = Fnv128::new();
    h.mix(crash_digest(&report.crash));
    h.mix(report.method as u128);
    h.mix(match &report.trace {
        TraceLog::Flat(_) => 1,
        TraceLog::Cursors(_) => 2,
    });
    h.mix(report.trace.len() as u128);
    for b in report.trace.wire_bytes() {
        h.mix(b as u128);
    }
    for r in &report.syscalls.records {
        h.mix(r.sys as u128);
        h.mix(r.ret as u64 as u128);
        for &f in &r.flags {
            h.mix(f as u64 as u128);
        }
    }
    h.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrument::{BranchTrace, CursorTrace, Method, SyscallLog};
    use minic::{Loc, UnitId};

    fn crash_at(line: u32) -> CrashInfo {
        CrashInfo {
            kind: CrashKind::DivByZero,
            loc: Loc {
                unit: UnitId(0),
                line,
                col: 3,
            },
            func: "main".into(),
        }
    }

    fn report(trace: TraceLog, line: u32) -> BugReport {
        BugReport {
            crash: crash_at(line),
            trace,
            cursor_spend_units: 0,
            syscalls: SyscallLog::new(),
            method: Method::DynamicStatic,
            checkpoints: Vec::new(),
        }
    }

    #[test]
    fn crash_digest_separates_sites_and_kinds() {
        let a = crash_digest(&crash_at(10));
        assert_eq!(a, crash_digest(&crash_at(10)));
        assert_ne!(a, crash_digest(&crash_at(11)));
        let mut sig = crash_at(10);
        sig.kind = CrashKind::Signal(11);
        assert_ne!(a, crash_digest(&sig));
    }

    #[test]
    fn prefix_hash_ignores_suffix_bits_beyond_budget() {
        let mut long = vec![true, false, true, true];
        let flat = |bits: &[bool]| TraceLog::Flat(BranchTrace::from_bools(bits));
        let base = trace_prefix_hash(&flat(&long), 4);
        long.push(false);
        // A fifth bit is outside the 4-bit budget: same bucket.
        assert_eq!(base, trace_prefix_hash(&flat(&long), 4));
        // ... but inside a 5-bit budget: different bucket.
        assert_ne!(
            trace_prefix_hash(&flat(&long), 5),
            trace_prefix_hash(&flat(&long[..4]), 5)
        );
        // The full digest always sees the extra bit.
        assert_ne!(
            report_digest(&report(flat(&long), 1)),
            report_digest(&report(flat(&long[..4]), 1))
        );
    }

    #[test]
    fn cursor_traces_hash_by_stream_prefixes() {
        let a = TraceLog::Cursors(CursorTrace::from_streams(&[
            (3, &[true, true]),
            (7, &[false]),
        ]));
        let b = TraceLog::Cursors(CursorTrace::from_streams(&[
            (3, &[true, true]),
            (7, &[true]),
        ]));
        assert_ne!(trace_prefix_hash(&a, 64), trace_prefix_hash(&b, 64));
        assert_eq!(trace_prefix_hash(&a, 64), trace_prefix_hash(&a, 64));
        // Flat and cursor logs never collide, even when bit-compatible.
        let f = TraceLog::Flat(BranchTrace::from_bools(&[true, true, false]));
        assert_ne!(trace_prefix_hash(&a, 64), trace_prefix_hash(&f, 64));
    }

    #[test]
    fn report_digest_covers_syscalls() {
        let t = || TraceLog::Flat(BranchTrace::from_bools(&[true]));
        let mut a = report(t(), 1);
        let b = report(t(), 1);
        assert_eq!(report_digest(&a), report_digest(&b));
        a.syscalls.records.push(instrument::SysRecord {
            sys: minic::types::Sys::Read,
            ret: 5,
            flags: vec![],
        });
        assert_ne!(report_digest(&a), report_digest(&b));
    }
}
