//! The standard triage fleet: the corpus-generator programs of
//! [`workloads::corpus`] wired as [`FleetBinary`]s, plus the mapping
//! from a corpus entry to a concrete deployment.
//!
//! Mirrors the bench setups: coreutils get their §5.2 argv shapes (the
//! trailing-option overrun family), the uServer gets the §5.3 server
//! environment — crash-expected entries are ended by the injected
//! SEGFAULT after all connections are served, healthy entries run
//! signal-free and file nothing.

use concolic::{ArgSpec, ClientSpec, InputSpec};
use oskit::{KernelConfig, SignalPlan};
use progs::Program;
use replay::InputParts;
use retrace_core::{SearchPolicy, Workbench};
use workloads::corpus::{CorpusEntry, CorpusLabel};

use crate::pipeline::{FleetBinary, TriagePipeline};

/// Concolic budget for the coreutils' one-time analysis (matches the
/// single-report workbench tests).
pub const CORE_ANALYSIS_RUNS: usize = 24;

/// Concolic budget for the uServer's one-time analysis — the paper's LC
/// configuration (the bench's `Coverage::Lc`), which the exp-1 replay
/// golden is pinned at.
pub const USERVER_ANALYSIS_RUNS: usize = 2;

fn coreutil_binary(p: Program, arg_lens: &[usize]) -> FleetBinary {
    let cp = p.build().expect("coreutil compiles");
    let mut argv = vec![ArgSpec::Fixed(p.name().as_bytes().to_vec())];
    argv.extend(arg_lens.iter().map(|&n| ArgSpec::Symbolic(n)));
    let spec = InputSpec {
        argv,
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    if let Some(u) = p.libc_unit() {
        wb.static_exclude = vec![u];
    }
    FleetBinary::new(p.name(), wb, CORE_ANALYSIS_RUNS)
}

fn userver_binary() -> FleetBinary {
    let cp = Program::Userver.build().expect("userver compiles");
    let spec = InputSpec {
        argv: vec![ArgSpec::Fixed(b"userver".to_vec())],
        ..InputSpec::default()
    };
    let mut wb = Workbench::new(cp, spec);
    wb.static_exclude = vec![Program::Userver.libc_unit().expect("userver links libc")];
    wb.kernel.arrival_window = 2;
    // Replay keeps the DFS default (log-guided priority sets steer);
    // the ANALYSIS runs under the explorer over two 48-byte symbolic
    // connections — the plateau-breaking setup of the bench's
    // `userver_analysis_bench`.
    let mut fb = FleetBinary::new("uServer", wb, USERVER_ANALYSIS_RUNS);
    fb.analysis_policy = SearchPolicy::explorer();
    fb.analysis_spec.clients = vec![
        ClientSpec {
            packet_lens: vec![48],
            close_after: true,
        },
        ClientSpec {
            packet_lens: vec![48],
            close_after: true,
        },
    ];
    fb
}

/// Registers the four standard fleet binaries (mkdir, mknod, mkfifo,
/// uServer — the [`workloads::corpus::CORPUS_PROGRAMS`] set) and
/// returns their pipeline ids in that order.
pub fn register_standard_fleet(p: &mut TriagePipeline) -> Vec<usize> {
    vec![
        p.register(coreutil_binary(Program::Mkdir, &[2, 2])),
        p.register(coreutil_binary(Program::Mknod, &[2, 1, 2])),
        p.register(coreutil_binary(Program::Mkfifo, &[2, 2])),
        p.register(userver_binary()),
    ]
}

/// Maps one corpus entry to its deployment: input shape, environment
/// (signal plan keyed off the ground-truth label for the server) and
/// the concrete input parts.
pub fn deployment_for(
    fb: &FleetBinary,
    entry: &CorpusEntry,
) -> (InputSpec, KernelConfig, InputParts) {
    if entry.program == "uServer" {
        let mut spec = fb.wb.spec.clone();
        spec.clients = entry
            .conns
            .iter()
            .map(|r| ClientSpec {
                packet_lens: vec![r.len()],
                close_after: true,
            })
            .collect();
        let mut kernel = fb.wb.kernel.clone();
        kernel.signal_plan = (entry.label == CorpusLabel::CrashExpected).then_some(SignalPlan {
            sig: 11,
            after_all_conns_served: true,
            after_n_syscalls: None,
        });
        let parts = InputParts {
            conns: entry.conns.clone(),
            ..InputParts::default()
        };
        (spec, kernel, parts)
    } else {
        let parts = InputParts {
            argv_sym: entry.argv_sym.clone(),
            ..InputParts::default()
        };
        (fb.wb.spec.clone(), fb.wb.kernel.clone(), parts)
    }
}

/// Deploys a whole corpus through the pipeline (binaries looked up by
/// entry program name — register the standard fleet first). Returns the
/// number of reports filed.
pub fn deploy_corpus(p: &mut TriagePipeline, entries: &[CorpusEntry]) -> usize {
    let mut filed = 0;
    for e in entries {
        let id = p
            .binary_id(e.program)
            .unwrap_or_else(|| panic!("binary {:?} not registered", e.program));
        let (spec, kernel, parts) = deployment_for(p.binary(id), e);
        if p.deploy(id, &spec, &kernel, &parts) {
            filed += 1;
        }
    }
    filed
}
