//! `retrace-triage` — fleet-scale bug-report triage.
//!
//! The paper's deployment story is many user sites running the same
//! lightly instrumented binary and shipping tiny branch-log reports.
//! One report replays in minutes; a fleet ships thousands, and most of
//! them are the same bug. This crate batches the developer side:
//!
//! 1. **Ingest** — deployments run under the per-binary plan
//!    ([`TriagePipeline::deploy`]); crashes file [`instrument::BugReport`]s.
//! 2. **Cluster** — reports bucket by (binary, crash site, trace-prefix
//!    FNV-128 hash) and split into exact classes by full report digest
//!    ([`cluster`]). Same mixing primitive as the search dedup and the
//!    prefix solve cache, so the identities cannot drift.
//! 3. **Replay once per class** — each class's first-seen report is the
//!    representative; only it pays the guided search, dispatched across
//!    the worker pool ([`TriagePipeline::triage`]). The witness is then
//!    re-deployed once and every member is verified by bit-stream
//!    conformance (digest equality) instead of its own search.
//! 4. **Amortize analysis** — the concolic + static analysis and the
//!    instrumentation plan are built once per *binary*, not once per
//!    report ([`TriageLedger::analyses`] counts exactly the distinct
//!    binaries; [`TriagePipeline::naive_triage`] is the one-at-a-time
//!    baseline that pays it per report).
//!
//! The headline metric is **reports/sec triaged** with the dedup ratio
//! (reports per class) explaining where the speedup comes from.

pub mod cluster;
pub mod fleet;
pub mod pipeline;

pub use cluster::{
    class_key, crash_digest, report_digest, trace_prefix_hash, ClassKey, DEFAULT_PREFIX_BITS,
};
pub use fleet::{deploy_corpus, deployment_for, register_standard_fleet};
pub use pipeline::{
    FleetBinary, NaiveOutcome, Submission, TriageClass, TriageConfig, TriageLedger, TriageOutcome,
    TriagePipeline,
};
