//! Experiment metrics: the quantities the paper's tables and figures
//! report, in serializable form.

use serde::{Deserialize, Serialize};

/// Instrumentation overhead of one configuration relative to the
/// uninstrumented baseline (Figures 2, 4 and 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overhead {
    /// Configuration name (e.g. "dynamic+static (hc)").
    pub config: String,
    /// Normalized CPU time in percent (100 = baseline).
    pub cpu_pct: f64,
    /// Cost units of the instrumented run.
    pub units: u64,
    /// Cost units of the baseline run.
    pub baseline_units: u64,
    /// Executions of instrumented branches.
    pub instrumented_execs: u64,
    /// Branch-log bytes produced.
    pub log_bytes: u64,
    /// Log buffer flushes.
    pub log_flushes: u64,
    /// Syscall-log bytes produced.
    pub syscall_log_bytes: u64,
    /// Requests completed (servers; 0 otherwise).
    pub requests: u64,
}

impl Overhead {
    /// Branch-log storage per request (Figure 4b), when requests > 0.
    pub fn storage_per_request(&self) -> f64 {
        if self.requests == 0 {
            return (self.log_bytes + self.syscall_log_bytes) as f64;
        }
        (self.log_bytes + self.syscall_log_bytes) as f64 / self.requests as f64
    }
}

/// One replay-experiment outcome (Tables 1, 3, 5, 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayRow {
    /// Configuration name.
    pub config: String,
    /// Scenario/experiment id.
    pub experiment: usize,
    /// Whether the bug was reproduced within budget.
    pub reproduced: bool,
    /// Replay runs used.
    pub runs: usize,
    /// Total instructions executed across replay runs (deterministic
    /// work proxy for the paper's seconds).
    pub total_instrs: u64,
    /// Wall-clock milliseconds (machine-dependent, informational).
    pub wall_ms: u64,
    /// Solver invocations.
    pub solver_calls: usize,
    /// Syscall-order divergences survived during the search.
    pub syscall_divergences: u64,
    /// Frontier drain restarts (starvation events) during the search.
    pub frontier_restarts: u64,
    /// Concretizations emitted as offset-generalizing ranges.
    pub concretization_ranges: u64,
    /// Concretizations pinned at emission.
    pub concretization_pins: u64,
    /// Solver calls that fell back to the hard-pinned variant.
    pub pin_fallbacks: u64,
    /// Earliest-suspect forced-set repairs scheduled.
    pub repairs: u64,
    /// Prefixes whose repair budget was cut off.
    pub repair_cutoffs: u64,
    /// Branch-log bits the deployment shipped.
    pub log_bits: u64,
    /// Branch locations with their own bit stream (0 = flat format).
    pub cursor_locations: usize,
    /// Extra instrumentation units the per-location cursor format spent
    /// at the user site (0 = flat format).
    pub cursor_spend_units: u64,
    /// Suppressed-branch executions at the user site: bits the
    /// implication analysis proved redundant, so the log never carried
    /// them and replay reconstructed them for free.
    pub suppressed_bits: u64,
    /// Solver calls that started from a cached path prefix.
    pub cache_hits: u64,
    /// Solver calls that found no cached prefix (all of them when the
    /// prefix cache is off).
    pub cache_misses: u64,
    /// Literals skipped via cached prefixes, summed across hits.
    pub prefix_len_saved: u64,
}

impl ReplayRow {
    /// The pin-vs-range concretization cell: `ranges/pins+fallbacks`.
    pub fn concretization_cell(&self) -> String {
        format!(
            "{}/{}+{}",
            self.concretization_ranges, self.concretization_pins, self.pin_fallbacks
        )
    }

    /// The repair-activation cell: `scheduled(cutoffs)`.
    pub fn repair_cell(&self) -> String {
        format!("{}({})", self.repairs, self.repair_cutoffs)
    }

    /// The instrumentation-spend cell: shipped log bits, and — under the
    /// per-location cursor format — the stream count and the extra units
    /// the cursor table cost at the user site (`bits b @N loc +U u`).
    /// A flat-format row reads `bits b`: zero extra spend, by design.
    pub fn spend_cell(&self) -> String {
        spend_cell(
            self.log_bits,
            self.cursor_locations,
            self.cursor_spend_units,
            self.suppressed_bits,
        )
    }

    /// The prefix-cache cell: hit count over total solves, plus the
    /// literals the hits skipped (`hits/solves (+N lits)`).
    pub fn cache_cell(&self) -> String {
        cache_cell(self.cache_hits, self.cache_misses, self.prefix_len_saved)
    }

    /// The table cell: work (and wall time), or ∞ on timeout.
    pub fn cell(&self) -> String {
        if !self.reproduced {
            return "∞".to_string();
        }
        let work = if self.total_instrs >= 1_000_000 {
            format!("{:.1}Mi", self.total_instrs as f64 / 1e6)
        } else {
            format!("{:.1}Ki", self.total_instrs as f64 / 1e3)
        };
        format!("{work} / {}ms", self.wall_ms)
    }
}

/// Formats an instrumentation-spend cell from its raw counters — the
/// one definition of the `instr spend` column's shape, shared by
/// [`ReplayRow::spend_cell`] and the golden-table tests (so a format
/// change cannot silently diverge from the pinned tables).
/// A suppression-enabled row appends `-Nsup`: N branch executions whose
/// bits the implication analysis kept out of the shipped log.
pub fn spend_cell(
    log_bits: u64,
    cursor_locations: usize,
    cursor_spend_units: u64,
    suppressed_bits: u64,
) -> String {
    let base = if cursor_locations == 0 {
        format!("{log_bits}b")
    } else {
        format!("{log_bits}b@{cursor_locations}loc+{cursor_spend_units}u")
    };
    if suppressed_bits == 0 {
        base
    } else {
        format!("{base}-{suppressed_bits}sup")
    }
}

/// Formats a prefix-cache cell from its raw counters — the one
/// definition of the `prefix cache` column's shape, shared by
/// [`ReplayRow::cache_cell`] and the golden-table tests. The ledger
/// invariant `hits + misses == solver calls` makes the denominator the
/// solve count; a cache-off row reads `0/N`.
pub fn cache_cell(cache_hits: u64, cache_misses: u64, prefix_len_saved: u64) -> String {
    let total = cache_hits + cache_misses;
    if prefix_len_saved == 0 {
        format!("{cache_hits}/{total}")
    } else {
        format!("{cache_hits}/{total}+{prefix_len_saved}l")
    }
}

/// One triage-class outcome: an equivalence class of bug reports,
/// replayed once by its representative (the fleet-triage table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageRow {
    /// Class index (in first-seen corpus order — deterministic).
    pub class: usize,
    /// Program (binary) the class's reports came from.
    pub program: String,
    /// Crash site: `kind @ unit:line:col` of the representative.
    pub crash: String,
    /// Reports in the class (representative included).
    pub members: usize,
    /// Whether the representative's replay reproduced the crash.
    pub reproduced: bool,
    /// Replay runs the representative needed.
    pub runs: usize,
    /// Solver invocations of the representative's replay.
    pub solver_calls: usize,
    /// Total instructions across the representative's replay runs.
    pub total_instrs: u64,
    /// Members whose report digest matched the re-deployed witness
    /// (representative included; `== members` when the class is tight).
    pub conformed: usize,
    /// Wall-clock milliseconds for the class (replay + conformance;
    /// machine-dependent — masked in golden tables).
    pub wall_ms: u64,
}

impl TriageRow {
    /// The reproduction cell: runs and solver calls, or ∞ on timeout.
    pub fn replay_cell(&self) -> String {
        if !self.reproduced {
            return "∞".to_string();
        }
        format!("{}r/{}s", self.runs, self.solver_calls)
    }

    /// The conformance cell: `conformed/members`.
    pub fn conformance_cell(&self) -> String {
        format!("{}/{}", self.conformed, self.members)
    }
}

/// Formats a reports-per-second throughput cell from a report count and
/// a wall-clock duration — the one definition of the headline metric's
/// shape, shared by the triage table and its smoke test. Sub-millisecond
/// walls clamp to 1 ms so the figure stays finite.
pub fn throughput_cell(reports: usize, wall_ms: u64) -> String {
    let secs = wall_ms.max(1) as f64 / 1e3;
    format!("{:.0} reports/s", reports as f64 / secs)
}

/// Branch-location counts per configuration (Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationRow {
    /// Configuration name.
    pub config: String,
    /// Number of instrumented branch locations.
    pub instrumented_locations: usize,
    /// Total branch locations in the program.
    pub total_locations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_per_request_divides() {
        let o = Overhead {
            config: "x".into(),
            cpu_pct: 120.0,
            units: 12,
            baseline_units: 10,
            instrumented_execs: 5,
            log_bytes: 90,
            log_flushes: 0,
            syscall_log_bytes: 10,
            requests: 10,
        };
        assert!((o.storage_per_request() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn replay_cell_formats_timeout() {
        let r = ReplayRow {
            config: "dynamic".into(),
            experiment: 3,
            reproduced: false,
            runs: 100,
            total_instrs: 1,
            wall_ms: 1,
            solver_calls: 5,
            syscall_divergences: 0,
            frontier_restarts: 0,
            concretization_ranges: 12,
            concretization_pins: 3,
            pin_fallbacks: 2,
            repairs: 1,
            repair_cutoffs: 0,
            log_bits: 120,
            cursor_locations: 0,
            cursor_spend_units: 0,
            suppressed_bits: 0,
            cache_hits: 0,
            cache_misses: 5,
            prefix_len_saved: 0,
        };
        assert_eq!(r.cell(), "∞");
        assert_eq!(r.concretization_cell(), "12/3+2");
        assert_eq!(r.repair_cell(), "1(0)");
        assert_eq!(r.spend_cell(), "120b");
        assert_eq!(r.cache_cell(), "0/5");
        let hitting = ReplayRow {
            cache_hits: 3,
            cache_misses: 2,
            prefix_len_saved: 11,
            ..r.clone()
        };
        assert_eq!(hitting.cache_cell(), "3/5+11l");
        let cursored = ReplayRow {
            cursor_locations: 9,
            cursor_spend_units: 720,
            ..r.clone()
        };
        assert_eq!(cursored.spend_cell(), "120b@9loc+720u");
        let suppressed = ReplayRow {
            suppressed_bits: 17,
            ..r
        };
        assert_eq!(suppressed.spend_cell(), "120b-17sup");
        let both = ReplayRow {
            suppressed_bits: 4,
            ..cursored
        };
        assert_eq!(both.spend_cell(), "120b@9loc+720u-4sup");
    }
}
