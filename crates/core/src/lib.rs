//! `retrace-core` — the paper's system end to end.
//!
//! One crate that wires the substrates together into the workflow of
//! "Striking a New Balance Between Program Instrumentation and Debugging
//! Time" (EuroSys'11):
//!
//! ```text
//!   analyses (concolic §2.1 + static §2.2)
//!        │
//!        ▼
//!   instrumentation plan (§2.3: dynamic / static / dynamic+static / all)
//!        │
//!        ▼
//!   user-site logged execution  ──crash──►  BugReport (bits + syscall log)
//!                                                │
//!                                                ▼
//!   developer-site guided replay (§3)  ──►  reproducing input
//! ```
//!
//! See [`Workbench`] for the main entry point.

pub mod metrics;
pub mod pipeline;

pub use concolic::Concretization;
pub use instrument::{escalate, EscalationHints, PlanBuilder};
pub use metrics::{LocationRow, Overhead, ReplayRow, TriageRow};
pub use pipeline::{to_dyn_labels, AnalysisBundle, LoggedRun, Workbench};
pub use replay::{EscalationReport, LocationEscalation};
pub use search::{ForcedSetRepair, FrontierStats, SearchLimits, SearchPolicy, Strategy};
// The one documented home of the golden-ratio seed-mixing helper (the
// engines' per-call solver seeds and restart seeds all derive through
// it).
pub use solver::{mix_seed, GOLDEN_RATIO};
