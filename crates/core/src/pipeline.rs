//! The end-to-end pipeline: the paper's system as one API.
//!
//! A [`Workbench`] owns a compiled program, its input shape and its
//! environment, and exposes the full lifecycle:
//!
//! 1. [`analyze`](Workbench::analyze) — dynamic (concolic) + static
//!    analyses (§2.1–2.2);
//! 2. [`plan`](Workbench::plan) — one of the four instrumentation
//!    methods (§2.3);
//! 3. [`logged_run`](Workbench::logged_run) — the user-site execution
//!    with branch/syscall logging, producing a [`BugReport`] on crash;
//! 4. [`replay`](Workbench::replay) — developer-site bug reproduction
//!    guided by the partial log (§3);
//! 5. metric helpers for every table and figure of §5.

use crate::metrics::Overhead;
use concolic::{
    realize, AnalysisResult, BranchLabel, Concretization, Engine, InputSpec, InputVars, Profile,
    SessionConfig,
};
use instrument::{
    BugReport, DynLabel, EscalationHints, LiteralClusterHint, LogFormat, LoggingHost, Method, Plan,
    PlanBuilder,
};
use minic::cost::Meter;
use minic::vm::{RunOutcome, Vm};
use minic::{CompiledProgram, UnitId};
use oskit::{Kernel, KernelConfig, OsHost};
use replay::{
    assignment_from_input, InputParts, LogStats, ReplayConfig, ReplayEngine, ReplayResult,
};
use search::SearchPolicy;
use solver::ExprArena;
use staticax::StaticConfig;

/// Realizes an input spec under a solver assignment: concrete argv plus
/// the kernel configuration carrying stdin/files/connection bytes.
fn realize_assignment(
    spec: &InputSpec,
    kernel: &KernelConfig,
    assignment: &[i64],
) -> (Vec<Vec<u8>>, KernelConfig) {
    let mut arena = ExprArena::new();
    let vars = InputVars::alloc(&mut arena, spec);
    realize(spec, &vars, assignment, kernel)
}

/// Converts the concolic engine's labels to the instrumentation layer's.
pub fn to_dyn_labels(cp: &CompiledProgram, labels: &concolic::LabelMap) -> Vec<DynLabel> {
    (0..cp.n_branches())
        .map(|i| match labels.get(minic::BranchId(i as u32)) {
            BranchLabel::Unvisited => DynLabel::Unvisited,
            BranchLabel::Concrete => DynLabel::Concrete,
            BranchLabel::Symbolic => DynLabel::Symbolic,
        })
        .collect()
}

/// Results of both analyses, ready for plan construction.
pub struct AnalysisBundle {
    /// Dynamic labels per branch location.
    pub dyn_labels: Vec<DynLabel>,
    /// Full dynamic-analysis result (coverage, crashes found, …).
    pub dyn_result: AnalysisResult,
    /// Static labels per branch location.
    pub static_symbolic: Vec<bool>,
    /// Branch-implication table from the static analysis (input to
    /// log-bit suppression).
    pub implications: staticax::ImplicationMap,
}

impl AnalysisBundle {
    /// Branch coverage of the dynamic analysis, in percent.
    pub fn coverage_pct(&self) -> f64 {
        self.dyn_result.labels.coverage_pct()
    }
}

/// Everything observed in one instrumented (user-site) run.
pub struct LoggedRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Execution counters.
    pub meter: Meter,
    /// The bug report, if the run crashed.
    pub report: Option<BugReport>,
    /// Branch-log bits produced.
    pub log_bits: u64,
    /// Log buffer flushes.
    pub log_flushes: u64,
    /// Executions of instrumented branches.
    pub instrumented_execs: u64,
    /// Executions of suppressed branches — observed by the plan but
    /// never logged; replay reconstructs their bits for free.
    pub suppressed_execs: u64,
    /// Syscall-log records produced.
    pub syscall_records: usize,
    /// Syscall-log bytes.
    pub syscall_log_bytes: u64,
    /// Log format the run emitted.
    pub log_format: LogFormat,
    /// Branch locations with their own bit stream (0 under flat).
    pub cursor_locations: usize,
    /// Extra instrumentation units spent on per-location cursor
    /// maintenance (0 under flat) — the spend counter of the tables'
    /// instrumentation-spend column.
    pub cursor_spend_units: u64,
    /// Requests completed by the kernel (servers).
    pub requests: u64,
    /// Captured stdout.
    pub stdout: Vec<u8>,
}

/// The whole system around one program + input shape + environment.
pub struct Workbench {
    /// The compiled program.
    pub cp: CompiledProgram,
    /// The input shape (what is symbolic).
    pub spec: InputSpec,
    /// Base kernel configuration (filesystem, clients are overridden by
    /// the spec's realization, signal plan, chunking, seed).
    pub kernel: KernelConfig,
    /// Units the static analysis treats as an opaque library.
    pub static_exclude: Vec<UnitId>,
    /// Session seed.
    pub seed: u64,
    /// Frontier scheduling policy, applied to both the concolic analysis
    /// and the replay search. Defaults to the paper's deterministic DFS;
    /// [`SearchPolicy::explorer`] breaks coverage plateaus on servers.
    pub policy: SearchPolicy,
    /// How symbolic address components are concretized in both engines:
    /// offset-generalizing region bounds by default,
    /// [`Concretization::Pin`] for the classic equality pins.
    pub concretization: Concretization,
    /// Worker threads for the candidate search in both engines. `1` (the
    /// default) is the fully serial path; `N > 1` solves speculatively
    /// popped pending sets concurrently, committing strictly in pop
    /// order — results are identical for every worker count.
    pub workers: usize,
    /// Path-prefix solve cache in both engines (on by default). Every
    /// cached shortcut is provably outcome-identical, so turning this
    /// off only changes wall time — which the cache-invariance suite
    /// pins down to full-tuple equality.
    pub cache: bool,
}

impl Workbench {
    /// Creates a workbench with a default kernel.
    pub fn new(cp: CompiledProgram, spec: InputSpec) -> Self {
        Workbench {
            cp,
            spec,
            kernel: KernelConfig::default(),
            static_exclude: Vec::new(),
            seed: 17,
            policy: SearchPolicy::default(),
            concretization: Concretization::default(),
            workers: 1,
            cache: true,
        }
    }

    /// Runs both analyses. `max_runs` is the dynamic budget — the paper's
    /// LC/HC knob.
    pub fn analyze(&self, max_runs: usize) -> AnalysisBundle {
        let mut scfg = SessionConfig::new(self.spec.clone());
        scfg.kernel = self.kernel_for_analysis();
        scfg.budget.max_runs = max_runs;
        scfg.budget.policy = self.policy.clone();
        scfg.budget.concretization = self.concretization;
        scfg.budget.workers = self.workers.max(1);
        scfg.budget.prefix_cache = self.cache;
        scfg.seed = self.seed;
        let dyn_result = Engine::new(&self.cp, scfg).analyze();
        let dyn_labels = to_dyn_labels(&self.cp, &dyn_result.labels);
        let sres = staticax::analyze(
            &self.cp,
            &StaticConfig {
                exclude_units: self.static_exclude.clone(),
            },
        );
        AnalysisBundle {
            dyn_labels,
            dyn_result,
            static_symbolic: sres.symbolic().to_vec(),
            implications: sres.implications,
        }
    }

    fn kernel_for_analysis(&self) -> KernelConfig {
        // Analysis runs never receive the crash signal.
        let mut k = self.kernel.clone();
        k.signal_plan = None;
        k
    }

    /// Builds an instrumentation plan from analysis results.
    ///
    /// Combined (`dynamic+static`) plans additionally opt into the
    /// per-branch-location cursor log format when they partially
    /// instrument a loop cluster — the configuration whose flat
    /// bitvector is fragile against trip-count errors (the Table 3
    /// combined-row ∞). All other methods keep the paper's flat format
    /// bit for bit.
    pub fn plan(&self, method: Method, bundle: &AnalysisBundle) -> Plan {
        PlanBuilder::new(
            method,
            &bundle.dyn_labels,
            &bundle.static_symbolic,
            self.cp.n_branches(),
        )
        .cursor_opt_in(&self.cp.prog.ast.branches)
        .build()
    }

    /// Like [`plan`](Workbench::plan), but additionally suppresses every
    /// log bit the static branch-implication analysis proves redundant:
    /// a suppressed branch pays nothing at deployment, and replay
    /// reconstructs its recorded outcome from the implying branch's.
    /// Suppression is applied before the cursor opt-in so the loop
    /// cluster check sees the post-suppression logged set (a suppressed
    /// loop is deterministically reconstructable, hence not fragile).
    pub fn plan_suppressed(&self, method: Method, bundle: &AnalysisBundle) -> Plan {
        PlanBuilder::new(
            method,
            &bundle.dyn_labels,
            &bundle.static_symbolic,
            self.cp.n_branches(),
        )
        .suppress(
            bundle
                .implications
                .iter()
                .map(|(b, i)| (b, i.by, i.negated)),
        )
        .cursor_opt_in(&self.cp.prog.ast.branches)
        .build()
    }

    /// Produces the next instrumentation-plan generation from replay's
    /// escalation evidence (the adaptive feedback loop): hot locations
    /// gain log bits (upgrading to the per-location format), locations
    /// replay never consulted drop theirs, resynchronization trouble
    /// turns on syscall-anchored cursor checkpoints, and repair bursts
    /// at a string-scan cluster arm multi-byte literal forcing. With an
    /// empty report this returns `parent` unchanged — deploy gen-2 only
    /// when replay actually struggled.
    pub fn escalate_plan(&self, parent: &Plan, report: &replay::EscalationReport) -> Plan {
        let clusters: Vec<LiteralClusterHint> = staticax::literal_clusters(&self.cp)
            .into_iter()
            .map(|c| LiteralClusterHint {
                branches: c.branches,
                literals: c.literals,
            })
            .collect();
        instrument::escalate(parent, &report.hints(), &clusters)
    }

    /// [`escalate_plan`](Workbench::escalate_plan) from already-lowered
    /// plan-side hints (the fleet-triage path, where reports from many
    /// classes are merged before lowering).
    pub fn escalate_plan_from_hints(&self, parent: &Plan, hints: &EscalationHints) -> Plan {
        let clusters: Vec<LiteralClusterHint> = staticax::literal_clusters(&self.cp)
            .into_iter()
            .map(|c| LiteralClusterHint {
                branches: c.branches,
                literals: c.literals,
            })
            .collect();
        instrument::escalate(parent, hints, &clusters)
    }

    fn realize_deployment(&self, parts: &InputParts) -> (Vec<Vec<u8>>, KernelConfig) {
        let assignment = assignment_from_input(&self.spec, parts);
        realize_assignment(&self.spec, &self.kernel, &assignment)
    }

    /// Uninstrumented baseline run (the `none` configuration).
    pub fn baseline_run(&self, parts: &InputParts) -> (RunOutcome, Meter, Vec<u8>) {
        let (argv, kcfg) = self.realize_deployment(parts);
        let mut vm = Vm::new(&self.cp, OsHost::new(Kernel::new(kcfg)));
        let outcome = vm.run(&argv);
        let meter = vm.meter.clone();
        let stdout = std::mem::take(&mut vm.host.stdout);
        (outcome, meter, stdout)
    }

    /// Instrumented user-site run under a plan.
    pub fn logged_run(&self, plan: &Plan, parts: &InputParts) -> LoggedRun {
        let (argv, kcfg) = self.realize_deployment(parts);
        self.logged_run_realized(plan, argv, kcfg)
    }

    /// Instrumented run with a per-deployment input shape and
    /// environment (the fleet-triage entry point: one workbench per
    /// binary, many user sites whose specs differ in connection lengths
    /// or signal plans). [`logged_run`](Workbench::logged_run) is the
    /// `(spec, kernel) = (self.spec, self.kernel)` special case.
    pub fn logged_run_with(
        &self,
        plan: &Plan,
        spec: &InputSpec,
        kernel: &KernelConfig,
        parts: &InputParts,
    ) -> LoggedRun {
        let assignment = assignment_from_input(spec, parts);
        let (argv, kcfg) = realize_assignment(spec, kernel, &assignment);
        self.logged_run_realized(plan, argv, kcfg)
    }

    /// Instrumented run deploying a solver assignment (e.g. a replay
    /// witness) instead of concrete input parts, under a per-deployment
    /// shape and environment. The triage pipeline's conformance check
    /// re-deploys a class representative's witness this way and compares
    /// the produced report against the class members'.
    pub fn logged_run_assignment(
        &self,
        plan: &Plan,
        spec: &InputSpec,
        kernel: &KernelConfig,
        assignment: &[i64],
    ) -> LoggedRun {
        let (argv, kcfg) = realize_assignment(spec, kernel, assignment);
        self.logged_run_realized(plan, argv, kcfg)
    }

    fn logged_run_realized(
        &self,
        plan: &Plan,
        argv: Vec<Vec<u8>>,
        kcfg: KernelConfig,
    ) -> LoggedRun {
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&self.cp, host);
        let outcome = vm.run(&argv);
        let meter = vm.meter.clone();
        let host = vm.host;
        let log_bits = host.log.len();
        let log_flushes = host.log.flushes();
        let log_format = host.plan.format;
        let cursor_locations = host.log.n_locations();
        let cursor_spend_units = host.log.spend_units();
        let instrumented_execs = host.instrumented_execs;
        let suppressed_execs = host.suppressed_execs;
        let syscall_records = host.syscalls.len();
        let syscall_log_bytes = host.syscalls.bytes();
        let requests = host.kernel.stats().requests_completed;
        let stdout = host.stdout.clone();
        let report = outcome
            .crash()
            .cloned()
            .map(|crash| BugReport::capture(host, crash));
        LoggedRun {
            outcome,
            meter,
            report,
            log_bits,
            log_flushes,
            instrumented_execs,
            suppressed_execs,
            syscall_records,
            syscall_log_bytes,
            log_format,
            cursor_locations,
            cursor_spend_units,
            requests,
            stdout,
        }
    }

    /// Measures instrumentation overhead vs. the baseline (Figures 2/4/5).
    pub fn overhead(&self, config_name: &str, plan: &Plan, parts: &InputParts) -> Overhead {
        let (_, base, _) = self.baseline_run(parts);
        let run = self.logged_run(plan, parts);
        Overhead {
            config: config_name.to_string(),
            cpu_pct: run.meter.relative_cpu_percent(&base),
            units: run.meter.units,
            baseline_units: base.units,
            instrumented_execs: run.instrumented_execs,
            log_bytes: run.log_bits.div_ceil(8),
            log_flushes: run.log_flushes,
            syscall_log_bytes: run.syscall_log_bytes,
            requests: run.requests,
        }
    }

    /// Developer-site reproduction from a shipped report.
    pub fn replay(&self, plan: &Plan, report: &BugReport, max_runs: usize) -> ReplayResult {
        // The historical session-seed derivation: every committed golden
        // pins replay behavior at exactly this seed.
        self.replay_with(plan, report, &self.spec, max_runs, self.seed ^ 0x5eed_cafe)
    }

    /// Reproduction against a per-report input shape with an explicit
    /// search seed — the fleet-triage entry point, where one workbench
    /// replays representatives of many report classes whose deployment
    /// specs differ (connection lengths) and whose searches are seeded
    /// per class. [`replay`](Workbench::replay) is the `(spec, seed) =
    /// (self.spec, self.seed ^ 0x5eed_cafe)` special case.
    pub fn replay_with(
        &self,
        plan: &Plan,
        report: &BugReport,
        spec: &InputSpec,
        max_runs: usize,
        seed: u64,
    ) -> ReplayResult {
        let mut rcfg = ReplayConfig::new(spec.clone());
        rcfg.base_fs = self.kernel.fs.clone();
        rcfg.budget.max_runs = max_runs;
        rcfg.budget.policy = self.policy.clone();
        rcfg.budget.concretization = self.concretization;
        rcfg.budget.workers = self.workers.max(1);
        rcfg.budget.prefix_cache = self.cache;
        rcfg.seed = seed;
        ReplayEngine::new(&self.cp, plan.clone(), report.clone(), rcfg).reproduce()
    }

    /// Profile of the true execution (Figures 1 and 3): per branch
    /// location, total vs. symbolic execution counts.
    pub fn profile(&self, parts: &InputParts) -> Profile {
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &self.spec);
        let assignment = assignment_from_input(&self.spec, parts);
        let mut scfg = SessionConfig::new(self.spec.clone());
        scfg.kernel = self.kernel_for_analysis();
        scfg.seed = self.seed;
        let engine = Engine::new(&self.cp, scfg);
        let (record, _) = engine.run_once(arena, &vars, &assignment);
        record.profile
    }

    /// Logged/unlogged symbolic-branch split for the true execution
    /// (Tables 4, 7, 8).
    pub fn log_stats(&self, plan: &Plan, parts: &InputParts) -> LogStats {
        let profile = self.profile(parts);
        LogStats::from_profile(&profile, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progs::Program;

    fn fib_bench() -> Workbench {
        let cp = Program::Fib.build().unwrap();
        let spec = InputSpec::argv_symbolic("fib", 1, 1);
        Workbench::new(cp, spec)
    }

    #[test]
    fn fib_analyses_find_exactly_two_symbolic_branches() {
        let wb = fib_bench();
        let bundle = wb.analyze(16);
        // Listing 1: only the two option tests depend on input.
        let dyn_sym = bundle
            .dyn_labels
            .iter()
            .filter(|l| **l == DynLabel::Symbolic)
            .count();
        let stat_sym = bundle.static_symbolic.iter().filter(|s| **s).count();
        assert_eq!(dyn_sym, 2, "dynamic finds the two option tests");
        // Static additionally flags the `argc > 1` guard (argc is input;
        // the deployment always passes one argument, so dynamically the
        // branch is concrete). The classic static over-approximation.
        assert_eq!(stat_sym, 3, "static over-approximates by one");
    }

    #[test]
    fn fib_plans_differ_only_for_all_branches() {
        let wb = fib_bench();
        let bundle = wb.analyze(16);
        let n = wb.cp.n_branches();
        assert_eq!(wb.plan(Method::Dynamic, &bundle).n_instrumented(), 2);
        // The combined method overrides static's extra `argc` branch with
        // dynamic's Concrete verdict — the headline combination rule.
        assert_eq!(wb.plan(Method::DynamicStatic, &bundle).n_instrumented(), 2);
        assert_eq!(wb.plan(Method::Static, &bundle).n_instrumented(), 3);
        assert_eq!(wb.plan(Method::AllBranches, &bundle).n_instrumented(), n);
    }

    #[test]
    fn fib_overhead_all_branches_dominates() {
        let wb = fib_bench();
        let bundle = wb.analyze(16);
        let parts = InputParts {
            argv_sym: vec![b"b".to_vec()],
            ..InputParts::default()
        };
        let all = wb.overhead("all", &wb.plan(Method::AllBranches, &bundle), &parts);
        let dynamic = wb.overhead("dyn", &wb.plan(Method::Dynamic, &bundle), &parts);
        assert!(all.cpu_pct > dynamic.cpu_pct);
        assert!(dynamic.cpu_pct < 110.0, "two logged branches are cheap");
        assert!(all.cpu_pct > 150.0, "logging every branch is expensive");
    }

    #[test]
    fn mkdir_crash_roundtrip_through_workbench() {
        let cp = Program::Mkdir.build().unwrap();
        // Shape: mkdir <sym> <sym> with 2-byte args (enough for "-Z").
        let spec = InputSpec::argv_symbolic("mkdir", 2, 2);
        let mut wb = Workbench::new(cp, spec);
        wb.static_exclude = vec![Program::Mkdir.libc_unit().unwrap()];
        let bundle = wb.analyze(24);
        let plan = wb.plan(Method::DynamicStatic, &bundle);
        let parts = InputParts {
            argv_sym: vec![b"/a".to_vec(), b"-Z".to_vec()],
            ..InputParts::default()
        };
        let run = wb.logged_run(&plan, &parts);
        let report = run.report.expect("mkdir -Z crashes");
        let res = wb.replay(&plan, &report, 256);
        assert!(res.reproduced, "mkdir -Z replay failed: {res:?}");
        // The witness argv must end with the trailing -Z.
        let w = res.witness_argv.unwrap();
        assert_eq!(&w[2][..2], b"-Z");
    }
}
