//! `progs` — the benchmark programs, written in mini-C.
//!
//! The paper evaluates on four coreutils (`mkdir`, `mknod`, `mkfifo`,
//! `paste` — with the real crash bugs from the KLEE study), the uServer
//! web server, GNU diff, and two microbenchmarks. This crate carries
//! faithful mini-C re-implementations of all of them, each linked against
//! the bundled mini-libc (`libc.mc`, the uClibc stand-in) so that the
//! application/library branch split of Figure 3 exists.
//!
//! Every program is exposed both as source (for analyses) and as a
//! [`build`](Program::build)-able [`CompiledProgram`].

use minic::{CompiledProgram, Result, UnitId};

/// The bundled mini-libc source (unit 0 of every multi-unit program).
pub const LIBC: &str = include_str!("mc/libc.mc");

/// mkdir source.
pub const MKDIR: &str = include_str!("mc/mkdir.mc");
/// mknod source.
pub const MKNOD: &str = include_str!("mc/mknod.mc");
/// mkfifo source.
pub const MKFIFO: &str = include_str!("mc/mkfifo.mc");
/// paste source.
pub const PASTE: &str = include_str!("mc/paste.mc");
/// userver source.
pub const USERVER: &str = include_str!("mc/userver.mc");
/// diff source.
pub const DIFF: &str = include_str!("mc/diff.mc");
/// Counter-loop microbenchmark source.
pub const MICRO_LOOP: &str = include_str!("mc/micro_loop.mc");
/// Listing-1 fibonacci microbenchmark source.
pub const FIB: &str = include_str!("mc/fib.mc");

/// The benchmark programs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Program {
    /// coreutils mkdir (§5.2).
    Mkdir,
    /// coreutils mknod (§5.2).
    Mknod,
    /// coreutils mkfifo (§5.2).
    Mkfifo,
    /// coreutils paste (§5.2).
    Paste,
    /// The uServer web server (§5.3).
    Userver,
    /// The diff utility (§5.4).
    Diff,
    /// Counter-loop microbenchmark (§5.1).
    MicroLoop,
    /// Listing-1 fibonacci microbenchmark (§5.1).
    Fib,
}

impl Program {
    /// All benchmark programs.
    pub const ALL: [Program; 8] = [
        Program::Mkdir,
        Program::Mknod,
        Program::Mkfifo,
        Program::Paste,
        Program::Userver,
        Program::Diff,
        Program::MicroLoop,
        Program::Fib,
    ];

    /// Program name (as the paper spells it).
    pub fn name(self) -> &'static str {
        match self {
            Program::Mkdir => "mkdir",
            Program::Mknod => "mknod",
            Program::Mkfifo => "mkfifo",
            Program::Paste => "paste",
            Program::Userver => "uServer",
            Program::Diff => "diff",
            Program::MicroLoop => "micro-loop",
            Program::Fib => "fibonacci",
        }
    }

    /// The source units: `(unit_name, source)`, library first.
    ///
    /// Microbenchmarks are standalone (no libc), matching their role as
    /// isolated instrumentation-cost probes.
    pub fn units(self) -> Vec<(&'static str, &'static str)> {
        match self {
            Program::Mkdir => vec![("libc", LIBC), ("mkdir", MKDIR)],
            Program::Mknod => vec![("libc", LIBC), ("mknod", MKNOD)],
            Program::Mkfifo => vec![("libc", LIBC), ("mkfifo", MKFIFO)],
            Program::Paste => vec![("libc", LIBC), ("paste", PASTE)],
            Program::Userver => vec![("libc", LIBC), ("userver", USERVER)],
            Program::Diff => vec![("libc", LIBC), ("diff", DIFF)],
            Program::MicroLoop => vec![("micro_loop", MICRO_LOOP)],
            Program::Fib => vec![("fib", FIB)],
        }
    }

    /// The unit id of the library unit, when the program links libc.
    pub fn libc_unit(self) -> Option<UnitId> {
        match self {
            Program::MicroLoop | Program::Fib => None,
            _ => Some(UnitId(0)),
        }
    }

    /// The unit id of the application unit.
    pub fn app_unit(self) -> UnitId {
        match self {
            Program::MicroLoop | Program::Fib => UnitId(0),
            _ => UnitId(1),
        }
    }

    /// Parses, checks and compiles the program.
    pub fn build(self) -> Result<CompiledProgram> {
        minic::build(&self.units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::vm::{RunOutcome, Vm};
    use minic::{memory::MemFault, CrashKind};
    use oskit::{ClientScript, Kernel, KernelConfig, OsHost};

    fn run(
        prog: Program,
        argv: &[&[u8]],
        cfg: KernelConfig,
    ) -> (RunOutcome, OsHost, minic::cost::Meter) {
        let cp = prog.build().expect("program compiles");
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
        let argv: Vec<Vec<u8>> = argv.iter().map(|a| a.to_vec()).collect();
        let out = vm.run(&argv);
        let meter = vm.meter.clone();
        (out, vm.host, meter)
    }

    #[test]
    fn all_programs_compile() {
        for p in Program::ALL {
            let cp = p.build().unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(cp.n_branches() > 0, "{} has branches", p.name());
        }
    }

    #[test]
    fn branch_inventory_is_substantial() {
        // The analyses need meaningful branch counts; regression-guard
        // the rough sizes.
        let userver = Program::Userver.build().unwrap();
        assert!(
            userver.n_branches() >= 120,
            "userver+libc has {} branch locations",
            userver.n_branches()
        );
        let diff = Program::Diff.build().unwrap();
        assert!(diff.n_branches() >= 90, "diff has {}", diff.n_branches());
    }

    // ---- mkdir ------------------------------------------------------------

    #[test]
    fn mkdir_creates_directories() {
        let (out, host, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"/a", b"/b"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(host.kernel.fs().stat(b"/a"), 0);
        assert_eq!(host.kernel.fs().stat(b"/b"), 0);
    }

    #[test]
    fn mkdir_duplicate_fails() {
        let (out, host, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"/a", b"/a"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(1));
        assert!(String::from_utf8_lossy(&host.stdout).contains("cannot create"));
    }

    #[test]
    fn mkdir_parents_flag() {
        let (out, host, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"-p", b"/x/y/z"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(host.kernel.fs().stat(b"/x/y/z"), 0);
    }

    #[test]
    fn mkdir_mode_parsing() {
        let (out, _, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"-m", b"0700", b"/priv"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        let (out, _, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"-m", b"99x", b"/bad"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(1));
    }

    #[test]
    fn mkdir_trailing_context_option_crashes() {
        // The paper's coreutils crash class: a very specific argv
        // combination (trailing -Z) walks off the end of argv.
        let (out, _, _) = run(
            Program::Mkdir,
            &[b"mkdir", b"/a", b"-Z"],
            KernelConfig::default(),
        );
        let crash = out.crash().expect("mkdir -Z crash");
        assert!(matches!(
            crash.kind,
            CrashKind::Mem(MemFault::OutOfBounds { .. })
        ));
        assert_eq!(crash.func, "main");
    }

    // ---- mknod ------------------------------------------------------------

    #[test]
    fn mknod_creates_fifo_and_devices() {
        let (out, host, _) = run(
            Program::Mknod,
            &[b"mknod", b"/pipe", b"p"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(host.kernel.fs().stat(b"/pipe"), 0);
        let (out, _, _) = run(
            Program::Mknod,
            &[b"mknod", b"/dev0", b"c", b"5", b"1"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
    }

    #[test]
    fn mknod_rejects_fifo_with_numbers() {
        let (out, host, _) = run(
            Program::Mknod,
            &[b"mknod", b"/p", b"p", b"1", b"2"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(1));
        assert!(String::from_utf8_lossy(&host.stdout).contains("fifos do not have"));
    }

    #[test]
    fn mknod_trailing_context_option_crashes() {
        let (out, _, _) = run(
            Program::Mknod,
            &[b"mknod", b"/n", b"p", b"-Z"],
            KernelConfig::default(),
        );
        assert!(out.crash().is_some());
    }

    // ---- mkfifo -----------------------------------------------------------

    #[test]
    fn mkfifo_works_and_crashes_like_the_others() {
        let (out, host, _) = run(
            Program::Mkfifo,
            &[b"mkfifo", b"/f1", b"/f2"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(host.kernel.fs().stat(b"/f1"), 0);
        let (out, _, _) = run(
            Program::Mkfifo,
            &[b"mkfifo", b"-Z"],
            KernelConfig::default(),
        );
        assert!(out.crash().is_some());
    }

    // ---- paste ------------------------------------------------------------

    fn paste_fs() -> KernelConfig {
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/one", b"a\nb\nc\n".to_vec());
        cfg.fs.install_file("/two", b"1\n2\n3\n".to_vec());
        cfg
    }

    #[test]
    fn paste_merges_lines() {
        let (out, host, _) = run(Program::Paste, &[b"paste", b"/one", b"/two"], paste_fs());
        assert_eq!(out, RunOutcome::Exited(0));
        let text = String::from_utf8_lossy(&host.stdout).to_string();
        assert!(text.contains("a\t1"), "got: {text}");
        assert!(text.contains("b\t2"), "got: {text}");
    }

    #[test]
    fn paste_custom_delimiter() {
        let (out, host, _) = run(
            Program::Paste,
            &[b"paste", b"-d", b",", b"/one", b"/two"],
            paste_fs(),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert!(String::from_utf8_lossy(&host.stdout).contains("a,1"));
    }

    #[test]
    fn paste_backslash_delimiter_crashes() {
        // The bug of §5.2: `paste -d\ file` — a delimiter list ending in
        // a backslash runs the unescape loop off the argument's end.
        let (out, _, _) = run(Program::Paste, &[b"paste", b"-d\\", b"/one"], paste_fs());
        let crash = out.crash().expect("paste -d\\ crash");
        assert!(matches!(
            crash.kind,
            CrashKind::Mem(MemFault::OutOfBounds { .. })
        ));
    }

    // ---- userver ----------------------------------------------------------

    fn http_cfg(reqs: &[&[u8]]) -> KernelConfig {
        KernelConfig {
            clients: reqs
                .iter()
                .map(|r| ClientScript::oneshot(r.to_vec()))
                .collect(),
            arrival_window: 2,
            ..KernelConfig::default()
        }
    }

    #[test]
    fn userver_serves_a_get_request() {
        let (out, host, _) = run(
            Program::Userver,
            &[b"userver"],
            http_cfg(&[b"GET / HTTP/1.0\r\n\r\n"]),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        let resp = String::from_utf8_lossy(host.kernel.conn_outbox(0).unwrap()).to_string();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "got: {resp}");
        assert!(resp.contains("userver index"));
    }

    #[test]
    fn userver_serves_many_request_kinds() {
        let reqs: &[&[u8]] = &[
            b"GET /about HTTP/1.0\r\n\r\n",
            b"GET /missing HTTP/1.0\r\n\r\n",
            b"HEAD /status HTTP/1.0\r\n\r\n",
            b"POST /submit HTTP/1.0\r\nContent-Length: 3\r\n\r\nabc",
            b"DELETE / HTTP/1.0\r\n\r\n",
            b"garbage\r\n\r\n",
            b"OPTIONS / HTTP/1.0\r\nCookie: a=1; b=2; c=3\r\n\r\n",
        ];
        let (out, host, _) = run(Program::Userver, &[b"userver"], http_cfg(reqs));
        assert_eq!(out, RunOutcome::Exited(0));
        let codes: Vec<String> = (0..reqs.len())
            .map(|i| {
                String::from_utf8_lossy(host.kernel.conn_outbox(i).unwrap())
                    .split_whitespace()
                    .nth(1)
                    .unwrap_or("?")
                    .to_string()
            })
            .collect();
        assert_eq!(codes, vec!["200", "404", "200", "200", "405", "400", "200"]);
        let summary = String::from_utf8_lossy(&host.stdout).to_string();
        assert!(summary.contains("7 requests"), "got: {summary}");
    }

    #[test]
    fn userver_handles_split_packets() {
        let cfg = KernelConfig {
            clients: vec![ClientScript {
                packets: vec![b"GET /ab".to_vec(), b"out HTTP/1.0\r\n\r\n".to_vec()],
                close_after: true,
            }],
            ..KernelConfig::default()
        };
        let (out, host, _) = run(Program::Userver, &[b"userver"], cfg);
        assert_eq!(out, RunOutcome::Exited(0));
        let resp = String::from_utf8_lossy(host.kernel.conn_outbox(0).unwrap()).to_string();
        assert!(resp.contains("about userver"), "got: {resp}");
    }

    #[test]
    fn userver_survives_chunked_reads() {
        let mut cfg = http_cfg(&[b"GET /status HTTP/1.0\r\n\r\n"]);
        cfg.max_read_chunk = 3; // force short reads
        let (out, host, _) = run(Program::Userver, &[b"userver"], cfg);
        assert_eq!(out, RunOutcome::Exited(0));
        assert!(String::from_utf8_lossy(host.kernel.conn_outbox(0).unwrap()).contains("200"));
    }

    #[test]
    fn userver_signal_injection_crashes_at_stable_site() {
        let crash_site = |seed: u64| {
            let mut cfg = http_cfg(&[b"GET / HTTP/1.0\r\n\r\n", b"GET /about HTTP/1.0\r\n\r\n"]);
            cfg.seed = seed;
            cfg.signal_plan = Some(oskit::SignalPlan {
                sig: 11,
                after_all_conns_served: true,
                after_n_syscalls: None,
            });
            let (out, _, _) = run(Program::Userver, &[b"userver"], cfg);
            out.crash().expect("SEGV").loc
        };
        assert_eq!(crash_site(1), crash_site(99));
    }

    // ---- diff -------------------------------------------------------------

    fn diff_cfg(a: &[u8], b: &[u8]) -> KernelConfig {
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/a", a.to_vec());
        cfg.fs.install_file("/b", b.to_vec());
        cfg
    }

    #[test]
    fn diff_identical_files_exit_zero() {
        let (out, host, _) = run(
            Program::Diff,
            &[b"diff", b"/a", b"/b"],
            diff_cfg(b"x\ny\n", b"x\ny\n"),
        );
        assert_eq!(out, RunOutcome::Exited(0));
        assert!(host.stdout.is_empty());
    }

    #[test]
    fn diff_reports_changed_lines() {
        let (out, host, _) = run(
            Program::Diff,
            &[b"diff", b"/a", b"/b"],
            diff_cfg(b"one\ntwo\nthree\n", b"one\nTWO\nthree\n"),
        );
        assert_eq!(out, RunOutcome::Exited(1));
        let text = String::from_utf8_lossy(&host.stdout).to_string();
        assert!(text.contains("< two"), "got: {text}");
        assert!(text.contains("> TWO"), "got: {text}");
    }

    #[test]
    fn diff_handles_insertions_and_deletions() {
        let (out, host, _) = run(
            Program::Diff,
            &[b"diff", b"/a", b"/b"],
            diff_cfg(b"a\nb\nc\n", b"a\nc\n"),
        );
        assert_eq!(out, RunOutcome::Exited(1));
        assert!(String::from_utf8_lossy(&host.stdout).contains("< b"));
        let (out2, host2, _) = run(
            Program::Diff,
            &[b"diff", b"/a", b"/b"],
            diff_cfg(b"a\nc\n", b"a\nb\nc\n"),
        );
        assert_eq!(out2, RunOutcome::Exited(1));
        assert!(String::from_utf8_lossy(&host2.stdout).contains("> b"));
    }

    #[test]
    fn diff_missing_file_errors() {
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/a", b"x\n".to_vec());
        let (out, _, _) = run(Program::Diff, &[b"diff", b"/a", b"/nope"], cfg);
        assert_eq!(out, RunOutcome::Exited(2));
    }

    // ---- microbenchmarks ----------------------------------------------------

    #[test]
    fn micro_loop_runs_requested_iterations() {
        let (out, _, meter) = run(
            Program::MicroLoop,
            &[b"micro", b"5000"],
            KernelConfig::default(),
        );
        assert_eq!(out, RunOutcome::Exited(1));
        // 5000 loop iterations + parse loop; branch count reflects it.
        assert!(meter.branches >= 5000);
    }

    #[test]
    fn fib_matches_listing_one() {
        let (out, host, _) = run(Program::Fib, &[b"fib", b"a"], KernelConfig::default());
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(String::from_utf8_lossy(&host.stdout), "Result: 6765\n");
        let (_, host_b, _) = run(Program::Fib, &[b"fib", b"b"], KernelConfig::default());
        assert_eq!(
            String::from_utf8_lossy(&host_b.stdout),
            "Result: 102334155\n"
        );
        let (_, host_n, _) = run(Program::Fib, &[b"fib", b"x"], KernelConfig::default());
        assert_eq!(String::from_utf8_lossy(&host_n.stdout), "Result: 0\n");
    }
}

#[cfg(test)]
mod roundtrip {
    use super::*;
    use minic::parser::parse_units;
    use minic::pretty::print_ast;

    /// Pretty-printing and re-parsing every benchmark program must
    /// preserve the branch table (ids in order, kinds, functions) — the
    /// identity the whole system keys on.
    #[test]
    fn pretty_print_roundtrip_preserves_branch_tables() {
        for p in Program::ALL {
            let units = p.units();
            let ast1 = parse_units(&units).unwrap();
            let printed = print_ast(&ast1);
            let ast2 = minic::parser::parse(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", p.name()));
            assert_eq!(
                ast1.n_branches(),
                ast2.n_branches(),
                "{}: branch count drifted",
                p.name()
            );
            for (b1, b2) in ast1.branches.iter().zip(ast2.branches.iter()) {
                assert_eq!(b1.id, b2.id, "{}", p.name());
                assert_eq!(b1.kind, b2.kind, "{}", p.name());
                assert_eq!(b1.func, b2.func, "{}", p.name());
            }
        }
    }

    /// The re-parsed program must also compile and (for fib) behave
    /// identically.
    #[test]
    fn reprinted_fib_behaves_identically() {
        use minic::vm::{NullHost, Vm};
        let ast = parse_units(&Program::Fib.units()).unwrap();
        let printed = print_ast(&ast);
        let cp1 = Program::Fib.build().unwrap();
        let cp2 = minic::build(&[("fib", &printed)]).unwrap();
        for arg in [&b"a"[..], b"b", b"x"] {
            let run = |cp: &minic::CompiledProgram| {
                let mut vm = Vm::new(cp, NullHost::default());
                vm.run(&[b"fib".to_vec(), arg.to_vec()]);
                vm.host.stdout
            };
            assert_eq!(run(&cp1), run(&cp2));
        }
    }
}
