//! `oskit` — the simulated operating system under the benchmarks.
//!
//! The paper's programs run on Linux; this reproduction runs them on a
//! deterministic kernel simulation that reproduces exactly the syscall
//! behaviours the paper's techniques care about:
//!
//! - **value non-determinism**: how many bytes `read` returns (seeded
//!   short reads), which descriptors `select` reports ready, clock and
//!   PRNG results — the targets of the paper's selective syscall logging;
//! - **a filesystem** with the errno surface the coreutils bugs branch on;
//! - **scripted client connections** with packet-at-a-time arrival, so an
//!   event-driven server executes the same select/accept/read dance as on
//!   a real socket stack;
//! - **signal injection** reproducing the paper's "crash the server with
//!   a SEGFAULT after the input" methodology (§5.3).
//!
//! Everything is seeded and replayable: the same [`KernelConfig`] always
//! produces the same execution, which is what makes recorded branch logs
//! meaningful across runs.

pub mod fs;
pub mod host;
pub mod kernel;
pub mod net;

pub use fs::{errno, FsNode, SimFs};
pub use host::{apply_effect, OsHost};
pub use kernel::{
    CellWrite, Kernel, KernelConfig, KernelStats, MemAccess, SignalPlan, StreamSource, SysEffect,
};
pub use net::{ClientScript, Conn, NetState};
