//! VM host adapters over the kernel.
//!
//! [`OsHost`] is the plain concrete host: it dispatches syscalls to a
//! [`Kernel`], applies the resulting memory writes, forwards stdout, and
//! delivers scheduled signals as crashes. Concolic and logging hosts in
//! other crates wrap the same kernel and reuse [`apply_effect`].

use crate::kernel::{Kernel, SysEffect};
use minic::cost::Meter;
use minic::memory::Memory;
use minic::types::Sys;
use minic::vm::{CrashKind, Host, HostStop};

/// Applies a syscall's memory writes with default shadows.
///
/// Concolic hosts do their own application so input cells receive
/// symbolic shadows; everyone else uses this.
pub fn apply_effect<V: Clone + Default>(
    eff: &SysEffect,
    mem: &mut Memory<V>,
) -> Result<(), minic::memory::MemFault> {
    for w in &eff.writes {
        for (i, v) in w.values.iter().enumerate() {
            mem.store(w.addr.wrapping_add(i as i64), *v, V::default())?;
        }
    }
    Ok(())
}

/// Concrete host: kernel-backed syscalls, captured stdout, signal
/// delivery.
#[derive(Debug)]
pub struct OsHost {
    /// The kernel instance backing this run.
    pub kernel: Kernel,
    /// Captured program output (printf and stdout writes).
    pub stdout: Vec<u8>,
}

impl OsHost {
    /// Creates a host over a booted kernel.
    pub fn new(kernel: Kernel) -> Self {
        OsHost {
            kernel,
            stdout: Vec::new(),
        }
    }
}

impl Host for OsHost {
    type V = ();

    fn syscall(
        &mut self,
        sys: Sys,
        args: &[(i64, ())],
        mem: &mut Memory<()>,
        _meter: &mut Meter,
    ) -> Result<(i64, ()), HostStop> {
        let raw: Vec<i64> = args.iter().map(|a| a.0).collect();
        let eff = self
            .kernel
            .dispatch(sys, &raw, mem)
            .map_err(|f| HostStop::Crash(CrashKind::Mem(f)))?;
        apply_effect(&eff, mem).map_err(|f| HostStop::Crash(CrashKind::Mem(f)))?;
        if let Some(out) = &eff.stdout {
            self.stdout.extend_from_slice(out);
        }
        if let Some(sig) = self.kernel.take_pending_signal() {
            return Err(HostStop::Crash(CrashKind::Signal(sig)));
        }
        Ok((eff.ret, ()))
    }

    fn output(&mut self, bytes: &[u8]) {
        self.stdout.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelConfig, SignalPlan};
    use crate::net::ClientScript;
    use minic::build;
    use minic::vm::{RunOutcome, Vm};

    #[test]
    fn program_reads_a_file_through_the_kernel() {
        let src = r#"
            int main() {
                char buf[32];
                int fd = sys_open("/etc/motd", 0);
                if (fd < 0) { return -1; }
                int n = sys_read(fd, buf, 32);
                sys_close(fd);
                return n;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let mut cfg = KernelConfig::default();
        cfg.fs.install_dir("/etc");
        cfg.fs.install_file("/etc/motd", b"welcome".to_vec());
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
        assert_eq!(vm.run(&[]), RunOutcome::Exited(7));
    }

    #[test]
    fn program_read_buffer_contains_file_data() {
        let src = r#"
            int main() {
                char buf[8];
                int fd = sys_open("/f", 0);
                sys_read(fd, buf, 8);
                return buf[0] * 100 + buf[2];
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/f", vec![1, 2, 3]);
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
        assert_eq!(vm.run(&[]), RunOutcome::Exited(103));
    }

    #[test]
    fn echo_server_round_trip() {
        let src = r#"
            int main() {
                char buf[64];
                int fds[2];
                int ready[2];
                int sock = sys_socket();
                sys_bind(sock, 8080);
                sys_listen(sock, 4);
                int served = 0;
                while (served < 2) {
                    fds[0] = sock;
                    int n = sys_select(fds, 1, ready);
                    if (n < 1) { continue; }
                    int conn = sys_accept(sock);
                    if (conn < 0) { continue; }
                    int got = 0;
                    while (got <= 0) {
                        fds[1] = conn;
                        sys_select(fds, 2, ready);
                        got = sys_read(conn, buf, 64);
                    }
                    sys_write(conn, buf, got);
                    sys_close(conn);
                    served++;
                }
                return served;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let cfg = KernelConfig {
            clients: vec![
                ClientScript::oneshot(b"ping".to_vec()),
                ClientScript::oneshot(b"pong".to_vec()),
            ],
            arrival_window: 1,
            ..KernelConfig::default()
        };
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
        assert_eq!(vm.run(&[]), RunOutcome::Exited(2));
        assert_eq!(vm.host.kernel.conn_outbox(0), Some(&b"ping"[..]));
        assert_eq!(vm.host.kernel.conn_outbox(1), Some(&b"pong"[..]));
        assert_eq!(vm.host.kernel.stats().requests_completed, 2);
    }

    #[test]
    fn injected_signal_crashes_at_syscall_site() {
        let src = r#"
            int main() {
                int i;
                for (i = 0; i < 100; i++) {
                    sys_getuid();
                }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let cfg = KernelConfig {
            signal_plan: Some(SignalPlan {
                sig: 11,
                after_all_conns_served: false,
                after_n_syscalls: Some(5),
            }),
            ..KernelConfig::default()
        };
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
        let out = vm.run(&[]);
        let crash = out.crash().expect("signal crash");
        assert_eq!(crash.kind, CrashKind::Signal(11));
        assert_eq!(crash.func, "main");
    }

    #[test]
    fn signal_crash_site_is_stable_across_runs() {
        let src = r#"
            int main() {
                int i;
                for (i = 0; i < 50; i++) { sys_time(); }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let crash_loc = |seed: u64| {
            let cfg = KernelConfig {
                seed,
                signal_plan: Some(SignalPlan {
                    sig: 11,
                    after_all_conns_served: false,
                    after_n_syscalls: Some(10),
                }),
                ..KernelConfig::default()
            };
            let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(cfg)));
            vm.run(&[]).crash().expect("crash").loc
        };
        assert_eq!(crash_loc(1), crash_loc(2));
    }

    #[test]
    fn stdout_writes_are_captured() {
        let src = r#"
            int main() {
                printf("hi ");
                sys_write(1, "there", 5);
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let mut vm = Vm::new(&cp, OsHost::new(Kernel::new(KernelConfig::default())));
        vm.run(&[]);
        assert_eq!(vm.host.stdout, b"hi there");
    }
}
