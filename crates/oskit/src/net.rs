//! The simulated network: scripted client connections.
//!
//! A workload (e.g. the httperf-like generator) scripts each client as a
//! sequence of *packets* (byte chunks). The kernel releases packets one
//! `select()` pump at a time, so an event-driven server sees the same
//! readiness dance it would on a real socket: `select` reports the fd,
//! `read` drains the packet (possibly partially), the next packet arrives
//! only after another `select`. This is the non-determinism the paper's
//! selective syscall logging targets.

use std::collections::VecDeque;

/// A scripted client connection.
#[derive(Debug, Clone)]
pub struct ClientScript {
    /// Packets the client sends, in order.
    pub packets: Vec<Vec<u8>>,
    /// Whether the client half-closes after the last packet (server sees
    /// EOF, i.e. `read` returning 0). When false, a drained connection
    /// reads as would-block (-1).
    pub close_after: bool,
}

impl ClientScript {
    /// A client that sends one request and closes.
    pub fn oneshot(data: Vec<u8>) -> Self {
        ClientScript {
            packets: vec![data],
            close_after: true,
        }
    }
}

/// Server-side state of one accepted connection.
#[derive(Debug, Clone)]
pub struct Conn {
    /// Remaining packets not yet arrived.
    pub pending_packets: VecDeque<Vec<u8>>,
    /// Bytes of the currently arrived packet not yet read.
    pub readable: VecDeque<u8>,
    /// Whether the client closes after the last packet.
    pub close_after: bool,
    /// Bytes the server wrote back (captured for verification).
    pub outbox: Vec<u8>,
    /// Total client bytes consumed by the server so far.
    pub consumed: usize,
    /// True once the server called `close` on this fd.
    pub closed_by_server: bool,
}

impl Conn {
    /// Creates connection state from a script.
    pub fn new(script: ClientScript) -> Self {
        Conn {
            pending_packets: script.packets.into(),
            readable: VecDeque::new(),
            close_after: script.close_after,
            outbox: Vec::new(),
            consumed: 0,
            closed_by_server: false,
        }
    }

    /// True if a `read` would return data or EOF right now.
    pub fn is_readable(&self) -> bool {
        if self.closed_by_server {
            return false;
        }
        !self.readable.is_empty() || (self.pending_packets.is_empty() && self.close_after)
    }

    /// True if all client data was consumed.
    pub fn drained(&self) -> bool {
        self.readable.is_empty() && self.pending_packets.is_empty()
    }

    /// Delivers the next packet if the previous one was fully read
    /// (called from the `select` pump). Returns true if a packet arrived.
    pub fn pump(&mut self) -> bool {
        if self.readable.is_empty() && !self.closed_by_server {
            if let Some(p) = self.pending_packets.pop_front() {
                self.readable.extend(p);
                return true;
            }
        }
        false
    }

    /// Reads up to `n` bytes. Returns the bytes, or `None` for
    /// would-block, or `Some(empty)` for EOF.
    pub fn read(&mut self, n: usize) -> Option<Vec<u8>> {
        if !self.readable.is_empty() {
            let take = n.min(self.readable.len());
            self.consumed += take;
            return Some(self.readable.drain(..take).collect());
        }
        if self.pending_packets.is_empty() && self.close_after {
            return Some(Vec::new()); // EOF
        }
        None // would block
    }
}

/// The listener: scripted clients waiting to connect plus accepted conns.
#[derive(Debug, Clone, Default)]
pub struct NetState {
    /// Scripted clients not yet connected.
    pub backlog: VecDeque<ClientScript>,
    /// How many clients may be connecting simultaneously.
    pub arrival_window: usize,
    /// Clients that have "arrived" and can be accepted.
    pub arrived: VecDeque<ClientScript>,
    /// Accepted connections by connection index.
    pub conns: Vec<Conn>,
    /// Count of connections fully served (closed by server).
    pub served: usize,
}

impl NetState {
    /// Creates network state for a scripted workload.
    pub fn new(clients: Vec<ClientScript>, arrival_window: usize) -> Self {
        NetState {
            backlog: clients.into(),
            arrival_window: arrival_window.max(1),
            arrived: VecDeque::new(),
            conns: Vec::new(),
            served: 0,
        }
    }

    /// Number of live (accepted, unclosed) connections.
    pub fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| !c.closed_by_server).count()
    }

    /// The `select` pump: lets clients arrive (bounded by the window) and
    /// delivers one pending packet per drained connection.
    pub fn pump(&mut self) {
        while self.arrived.len() + self.live_conns() < self.arrival_window {
            match self.backlog.pop_front() {
                Some(c) => self.arrived.push_back(c),
                None => break,
            }
        }
        for c in &mut self.conns {
            if !c.closed_by_server {
                c.pump();
            }
        }
    }

    /// True when every scripted client has been fully served.
    pub fn all_served(&self) -> bool {
        self.backlog.is_empty() && self.arrived.is_empty() && self.live_conns() == 0
    }

    /// Accepts the next arrived client, returning its connection index.
    pub fn accept(&mut self) -> Option<usize> {
        let script = self.arrived.pop_front()?;
        self.conns.push(Conn::new(script));
        Some(self.conns.len() - 1)
    }

    /// Marks a connection closed by the server.
    pub fn close(&mut self, idx: usize) -> bool {
        if let Some(c) = self.conns.get_mut(idx) {
            if !c.closed_by_server {
                c.closed_by_server = true;
                self.served += 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_packet_client() -> ClientScript {
        ClientScript {
            packets: vec![b"GET /".to_vec(), b" HTTP/1.0\r\n\r\n".to_vec()],
            close_after: true,
        }
    }

    #[test]
    fn packets_arrive_one_pump_at_a_time() {
        let mut net = NetState::new(vec![two_packet_client()], 1);
        net.pump();
        let idx = net.accept().unwrap();
        assert!(!net.conns[idx].is_readable()); // packet not yet delivered
        net.pump();
        assert!(net.conns[idx].is_readable());
        let data = net.conns[idx].read(1024).unwrap();
        assert_eq!(data, b"GET /");
        // Second packet needs another pump.
        assert_eq!(net.conns[idx].read(1024), None);
        net.pump();
        assert_eq!(net.conns[idx].read(1024).unwrap(), b" HTTP/1.0\r\n\r\n");
        // Then EOF (close_after).
        assert_eq!(net.conns[idx].read(1024).unwrap(), b"");
    }

    #[test]
    fn partial_reads_drain_packet() {
        let mut net = NetState::new(vec![ClientScript::oneshot(b"abcdef".to_vec())], 1);
        net.pump();
        let idx = net.accept().unwrap();
        net.pump();
        assert_eq!(net.conns[idx].read(2).unwrap(), b"ab");
        assert_eq!(net.conns[idx].read(3).unwrap(), b"cde");
        assert_eq!(net.conns[idx].read(10).unwrap(), b"f");
        assert_eq!(net.conns[idx].read(10).unwrap(), b""); // EOF
    }

    #[test]
    fn arrival_window_limits_concurrency() {
        let clients = vec![
            ClientScript::oneshot(b"a".to_vec()),
            ClientScript::oneshot(b"b".to_vec()),
            ClientScript::oneshot(b"c".to_vec()),
        ];
        let mut net = NetState::new(clients, 2);
        net.pump();
        assert_eq!(net.arrived.len(), 2);
        let i0 = net.accept().unwrap();
        let i1 = net.accept().unwrap();
        assert!(net.accept().is_none()); // third not arrived yet
        net.close(i0);
        net.close(i1);
        net.pump();
        assert_eq!(net.arrived.len(), 1);
    }

    #[test]
    fn all_served_detects_completion() {
        let mut net = NetState::new(vec![ClientScript::oneshot(b"x".to_vec())], 1);
        assert!(!net.all_served());
        net.pump();
        let idx = net.accept().unwrap();
        net.pump();
        net.conns[idx].read(10);
        net.close(idx);
        assert!(net.all_served());
        assert_eq!(net.served, 1);
    }

    #[test]
    fn half_open_connection_would_block() {
        let mut net = NetState::new(
            vec![ClientScript {
                packets: vec![b"partial".to_vec()],
                close_after: false,
            }],
            1,
        );
        net.pump();
        let idx = net.accept().unwrap();
        net.pump();
        assert_eq!(net.conns[idx].read(100).unwrap(), b"partial");
        assert_eq!(net.conns[idx].read(100), None); // no EOF, would block
        assert!(!net.conns[idx].is_readable());
    }
}
