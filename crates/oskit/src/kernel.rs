//! The kernel: file descriptors, syscall dispatch, signals, nondeterminism.
//!
//! One [`Kernel`] instance backs one program execution. It owns the
//! simulated filesystem, the scripted network, the fd table, the
//! deterministic "clock" and PRNG, and the signal plan used to reproduce
//! the paper's externally injected SEGFAULT (§5.3: "We crash the server by
//! sending it a SEGFAULT signal after sending it the input").

use crate::fs::{errno, SimFs};
use crate::net::{ClientScript, NetState};
use minic::memory::MemFault;
use minic::types::Sys;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reads VM memory on behalf of the kernel (paths, write buffers).
///
/// Implemented by [`minic::memory::Memory`] for every shadow type, so the
/// kernel is oblivious to whether the run is concrete or concolic.
pub trait MemAccess {
    /// Reads `n` byte-cells at `addr`.
    fn mem_read_bytes(&self, addr: i64, n: usize) -> Result<Vec<u8>, MemFault>;
    /// Reads a NUL-terminated string at `addr` (bounded).
    fn mem_read_cstr(&self, addr: i64, max: usize) -> Result<Vec<u8>, MemFault>;
}

impl<V: Clone + Default> MemAccess for minic::memory::Memory<V> {
    fn mem_read_bytes(&self, addr: i64, n: usize) -> Result<Vec<u8>, MemFault> {
        self.read_bytes(addr, n)
    }

    fn mem_read_cstr(&self, addr: i64, max: usize) -> Result<Vec<u8>, MemFault> {
        self.read_cstr(addr, max)
    }
}

/// Which input stream a range of bytes came from.
///
/// Lets the concolic engine map delivered input bytes back to the
/// symbolic variables it pre-allocated for that stream position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSource {
    /// Standard input.
    Stdin,
    /// A regular file, by normalized-ish path bytes as opened.
    File(Vec<u8>),
    /// An accepted connection, by connection index.
    Conn(usize),
}

/// One range of cells a syscall writes back into VM memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellWrite {
    /// Destination address of the first cell.
    pub addr: i64,
    /// Cell values (bytes are stored widened).
    pub values: Vec<i64>,
    /// True if these cells carry *program input* (socket/stdin/file
    /// data) that analyses must treat as symbolic.
    pub is_input: bool,
    /// Origin stream and starting byte offset within it, for input data.
    pub stream: Option<(StreamSource, usize)>,
}

/// The result of dispatching one syscall.
#[derive(Debug, Clone, Default)]
pub struct SysEffect {
    /// Return value.
    pub ret: i64,
    /// True if the return value itself is input/non-determinism (e.g.
    /// `read`'s byte count) that replay must model or log.
    pub ret_is_input: bool,
    /// Memory writes to apply.
    pub writes: Vec<CellWrite>,
    /// Bytes for the program's stdout, if any.
    pub stdout: Option<Vec<u8>>,
}

/// When to deliver the scripted crash signal.
#[derive(Debug, Clone, Default)]
pub struct SignalPlan {
    /// Signal number to deliver (e.g. 11 for SIGSEGV).
    pub sig: i32,
    /// Deliver once every scripted client has been fully served.
    pub after_all_conns_served: bool,
    /// Deliver after this many syscalls, regardless of progress.
    pub after_n_syscalls: Option<u64>,
}

/// Kernel configuration: workload script plus nondeterminism knobs.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// PRNG seed for all kernel nondeterminism.
    pub seed: u64,
    /// Initial filesystem.
    pub fs: SimFs,
    /// Bytes available on stdin (fd 0).
    pub stdin: Vec<u8>,
    /// Scripted clients for the listening socket.
    pub clients: Vec<ClientScript>,
    /// How many clients may be pending connection simultaneously.
    pub arrival_window: usize,
    /// Upper bound on bytes returned by one `read` (0 = no extra split);
    /// actual chunk sizes are drawn from the seeded PRNG, modelling
    /// short reads.
    pub max_read_chunk: usize,
    /// Scripted signal delivery.
    pub signal_plan: Option<SignalPlan>,
    /// `sys_getuid` result.
    pub uid: i64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            seed: 42,
            fs: SimFs::new(),
            stdin: Vec::new(),
            clients: Vec::new(),
            arrival_window: 2,
            max_read_chunk: 0,
            signal_plan: None,
            uid: 1000,
        }
    }
}

/// Counters the evaluation harness reads after a run.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// `read` calls.
    pub reads: u64,
    /// `write` calls.
    pub writes: u64,
    /// `select` calls.
    pub selects: u64,
    /// `accept` calls that returned a connection.
    pub accepts: u64,
    /// Total bytes delivered to the program.
    pub bytes_read: u64,
    /// Total bytes written by the program.
    pub bytes_written: u64,
    /// Connections fully served (the "requests" of Figure 4b).
    pub requests_completed: u64,
}

#[derive(Debug, Clone)]
enum Fd {
    Closed,
    Stdin {
        pos: usize,
    },
    Stdout,
    FileRead {
        path: Vec<u8>,
        data: Vec<u8>,
        pos: usize,
    },
    FileWrite {
        path: Vec<u8>,
    },
    Listener {
        bound: bool,
        listening: bool,
    },
    Conn {
        idx: usize,
    },
}

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    fs: SimFs,
    net: NetState,
    fds: Vec<Fd>,
    rng: StdRng,
    clock: i64,
    syscall_count: u64,
    stdin_pos: usize,
    pending_signal: Option<i32>,
    stats: KernelStats,
}

impl Kernel {
    /// Boots a kernel from a configuration.
    pub fn new(cfg: KernelConfig) -> Self {
        let fs = cfg.fs.clone();
        let net = NetState::new(cfg.clients.clone(), cfg.arrival_window);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Kernel {
            cfg,
            fs,
            net,
            fds: vec![Fd::Stdin { pos: 0 }, Fd::Stdout, Fd::Stdout],
            rng,
            clock: 1_300_000_000,
            syscall_count: 0,
            stdin_pos: 0,
            pending_signal: None,
            stats: KernelStats::default(),
        }
    }

    /// Takes the pending signal, if one was scheduled.
    pub fn take_pending_signal(&mut self) -> Option<i32> {
        self.pending_signal.take()
    }

    /// Run counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The filesystem (inspection after a run).
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// Captured response bytes per connection (verification support).
    pub fn conn_outbox(&self, idx: usize) -> Option<&[u8]> {
        self.net.conns.get(idx).map(|c| &c.outbox[..])
    }

    /// True when every scripted client has been served.
    pub fn all_clients_served(&self) -> bool {
        self.net.all_served()
    }

    fn alloc_fd(&mut self, fd: Fd) -> i64 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if matches!(slot, Fd::Closed) {
                *slot = fd;
                return i as i64;
            }
        }
        self.fds.push(fd);
        (self.fds.len() - 1) as i64
    }

    fn check_signal_plan(&mut self) {
        if self.pending_signal.is_some() {
            return;
        }
        let Some(plan) = &self.cfg.signal_plan else {
            return;
        };
        let fire = (plan.after_all_conns_served && self.net.all_served())
            || plan
                .after_n_syscalls
                .is_some_and(|n| self.syscall_count >= n);
        if fire {
            self.pending_signal = Some(plan.sig);
        }
    }

    /// Dispatches one syscall. Memory faults from bad program pointers
    /// propagate as `Err` and become crashes in the host.
    pub fn dispatch(
        &mut self,
        sys: Sys,
        args: &[i64],
        mem: &impl MemAccess,
    ) -> Result<SysEffect, MemFault> {
        self.syscall_count += 1;
        let arg = |i: usize| args.get(i).copied().unwrap_or(0);
        let eff = match sys {
            Sys::Open => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                let flags = arg(1);
                if flags == 0 {
                    match self.fs.open_read(&path) {
                        Ok(data) => {
                            let fd = self.alloc_fd(Fd::FileRead {
                                path: path.clone(),
                                data,
                                pos: 0,
                            });
                            SysEffect {
                                ret: fd,
                                ..SysEffect::default()
                            }
                        }
                        Err(e) => SysEffect {
                            ret: e,
                            ..SysEffect::default()
                        },
                    }
                } else {
                    match self.fs.open_write(&path) {
                        Ok(()) => {
                            let fd = self.alloc_fd(Fd::FileWrite { path });
                            SysEffect {
                                ret: fd,
                                ..SysEffect::default()
                            }
                        }
                        Err(e) => SysEffect {
                            ret: e,
                            ..SysEffect::default()
                        },
                    }
                }
            }
            Sys::Close => {
                let fd = arg(0);
                let ret = self.close_fd(fd);
                SysEffect {
                    ret,
                    ..SysEffect::default()
                }
            }
            Sys::Read => self.sys_read(arg(0), arg(1), arg(2))?,
            Sys::Write => self.sys_write(arg(0), arg(1), arg(2), mem)?,
            Sys::Socket => {
                let fd = self.alloc_fd(Fd::Listener {
                    bound: false,
                    listening: false,
                });
                SysEffect {
                    ret: fd,
                    ..SysEffect::default()
                }
            }
            Sys::Bind => {
                let ret = match self.fds.get_mut(arg(0) as usize) {
                    Some(Fd::Listener { bound, .. }) => {
                        *bound = true;
                        0
                    }
                    _ => errno::EINVAL,
                };
                SysEffect {
                    ret,
                    ..SysEffect::default()
                }
            }
            Sys::Listen => {
                let ret = match self.fds.get_mut(arg(0) as usize) {
                    Some(Fd::Listener {
                        bound: true,
                        listening,
                    }) => {
                        *listening = true;
                        0
                    }
                    _ => errno::EINVAL,
                };
                SysEffect {
                    ret,
                    ..SysEffect::default()
                }
            }
            Sys::Accept => {
                let ok = matches!(
                    self.fds.get(arg(0) as usize),
                    Some(Fd::Listener {
                        listening: true,
                        ..
                    })
                );
                if !ok {
                    SysEffect {
                        ret: errno::EINVAL,
                        ..SysEffect::default()
                    }
                } else {
                    match self.net.accept() {
                        Some(idx) => {
                            self.stats.accepts += 1;
                            let fd = self.alloc_fd(Fd::Conn { idx });
                            SysEffect {
                                ret: fd,
                                ..SysEffect::default()
                            }
                        }
                        None => SysEffect {
                            ret: -1,
                            ..SysEffect::default()
                        },
                    }
                }
            }
            Sys::Select => self.sys_select(arg(0), arg(1), arg(2), mem)?,
            Sys::Mkdir => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                SysEffect {
                    ret: self.fs.mkdir(&path, arg(1)),
                    ..SysEffect::default()
                }
            }
            Sys::Mknod => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                SysEffect {
                    ret: self.fs.mknod(&path, arg(1), arg(2)),
                    ..SysEffect::default()
                }
            }
            Sys::Mkfifo => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                SysEffect {
                    ret: self.fs.mkfifo(&path, arg(1)),
                    ..SysEffect::default()
                }
            }
            Sys::Stat => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                SysEffect {
                    ret: self.fs.stat(&path),
                    ..SysEffect::default()
                }
            }
            Sys::Unlink => {
                let path = mem.mem_read_cstr(arg(0), 4096)?;
                SysEffect {
                    ret: self.fs.unlink(&path),
                    ..SysEffect::default()
                }
            }
            Sys::Getuid => SysEffect {
                ret: self.cfg.uid,
                ..SysEffect::default()
            },
            Sys::Time => {
                self.clock += 1 + (self.rng.gen::<u8>() % 3) as i64;
                SysEffect {
                    ret: self.clock,
                    ret_is_input: true,
                    ..SysEffect::default()
                }
            }
            Sys::Rand => SysEffect {
                ret: (self.rng.gen::<u16>() & 0x7fff) as i64,
                ret_is_input: true,
                ..SysEffect::default()
            },
        };
        self.check_signal_plan();
        Ok(eff)
    }

    fn close_fd(&mut self, fd: i64) -> i64 {
        match self.fds.get(fd as usize) {
            Some(Fd::Conn { idx }) => {
                let idx = *idx;
                if self.net.close(idx) {
                    self.stats.requests_completed += 1;
                }
                self.fds[fd as usize] = Fd::Closed;
                0
            }
            Some(Fd::Closed) | None => errno::EINVAL,
            Some(_) => {
                self.fds[fd as usize] = Fd::Closed;
                0
            }
        }
    }

    fn chunked(&mut self, want: usize) -> usize {
        if self.cfg.max_read_chunk == 0 || want <= 1 {
            return want;
        }
        let cap = self.cfg.max_read_chunk.min(want);
        1 + self.rng.gen_range(0..cap)
    }

    fn sys_read(&mut self, fd: i64, buf: i64, n: i64) -> Result<SysEffect, MemFault> {
        self.stats.reads += 1;
        let n = n.max(0) as usize;
        let take_n = self.chunked(n);
        let (ret, bytes, stream): (i64, Vec<u8>, Option<(StreamSource, usize)>) =
            match self.fds.get_mut(fd as usize) {
                Some(Fd::Stdin { pos }) => {
                    let data = &self.cfg.stdin;
                    let start = (*pos).min(data.len());
                    let take = take_n.min(data.len() - start);
                    *pos += take;
                    self.stdin_pos = *pos;
                    (
                        take as i64,
                        data[start..start + take].to_vec(),
                        Some((StreamSource::Stdin, start)),
                    )
                }
                Some(Fd::FileRead { path, data, pos }) => {
                    let start = (*pos).min(data.len());
                    let take = take_n.min(data.len() - start);
                    *pos += take;
                    (
                        take as i64,
                        data[start..start + take].to_vec(),
                        Some((StreamSource::File(path.clone()), start)),
                    )
                }
                Some(Fd::Conn { idx }) => {
                    let idx = *idx;
                    let start = self.net.conns[idx].consumed;
                    match self.net.conns[idx].read(take_n) {
                        Some(bytes) => (
                            bytes.len() as i64,
                            bytes,
                            Some((StreamSource::Conn(idx), start)),
                        ),
                        None => (-1, Vec::new(), None),
                    }
                }
                _ => (errno::EINVAL, Vec::new(), None),
            };
        let mut eff = SysEffect {
            ret,
            ret_is_input: true,
            ..SysEffect::default()
        };
        if !bytes.is_empty() {
            self.stats.bytes_read += bytes.len() as u64;
            eff.writes.push(CellWrite {
                addr: buf,
                values: bytes.iter().map(|b| *b as i64).collect(),
                is_input: true,
                stream,
            });
        }
        Ok(eff)
    }

    fn sys_write(
        &mut self,
        fd: i64,
        buf: i64,
        n: i64,
        mem: &impl MemAccess,
    ) -> Result<SysEffect, MemFault> {
        self.stats.writes += 1;
        let n = n.clamp(0, 1 << 20) as usize;
        let bytes = mem.mem_read_bytes(buf, n)?;
        self.stats.bytes_written += bytes.len() as u64;
        match self.fds.get_mut(fd as usize) {
            Some(Fd::Stdout) => Ok(SysEffect {
                ret: n as i64,
                stdout: Some(bytes),
                ..SysEffect::default()
            }),
            Some(Fd::Conn { idx }) => {
                let idx = *idx;
                self.net.conns[idx].outbox.extend_from_slice(&bytes);
                Ok(SysEffect {
                    ret: n as i64,
                    ..SysEffect::default()
                })
            }
            Some(Fd::FileWrite { path }) => {
                let path = path.clone();
                let ret = self.fs.append(&path, &bytes);
                Ok(SysEffect {
                    ret,
                    ..SysEffect::default()
                })
            }
            _ => Ok(SysEffect {
                ret: errno::EINVAL,
                ..SysEffect::default()
            }),
        }
    }

    fn sys_select(
        &mut self,
        fds_ptr: i64,
        nfds: i64,
        ready_ptr: i64,
        mem: &impl MemAccess,
    ) -> Result<SysEffect, MemFault> {
        self.stats.selects += 1;
        // Pump the network: arrivals + packet delivery happen "during the
        // wait".
        self.net.pump();
        let n = nfds.clamp(0, 64) as usize;
        let mut ready_flags = Vec::with_capacity(n);
        let mut count = 0i64;
        for i in 0..n {
            // fd numbers are full cells, not bytes; read them as cells via
            // read_bytes would truncate. Use a dedicated path below.
            let fd = self.read_cell(mem, fds_ptr + i as i64)?;
            let ready = self.fd_ready(fd);
            ready_flags.push(ready as i64);
            count += ready as i64;
        }
        self.check_signal_plan();
        Ok(SysEffect {
            ret: count,
            ret_is_input: true,
            writes: vec![CellWrite {
                addr: ready_ptr,
                values: ready_flags,
                is_input: true,
                stream: None,
            }],
            ..SysEffect::default()
        })
    }

    /// Reads a full (non-byte) cell through the byte interface.
    ///
    /// `MemAccess` exposes byte reads for buffer data; fd arrays store
    /// small non-negative integers, which survive the byte masking as
    /// long as fds stay below 256 (the fd table is far smaller).
    fn read_cell(&self, mem: &impl MemAccess, addr: i64) -> Result<i64, MemFault> {
        let b = mem.mem_read_bytes(addr, 1)?;
        Ok(b[0] as i64)
    }

    fn fd_ready(&self, fd: i64) -> bool {
        match self.fds.get(fd as usize) {
            Some(Fd::Listener {
                listening: true, ..
            }) => !self.net.arrived.is_empty(),
            Some(Fd::Conn { idx }) => self.net.conns[*idx].is_readable(),
            Some(Fd::Stdin { pos }) => *pos < self.cfg.stdin.len(),
            Some(Fd::FileRead { .. }) | Some(Fd::Stdout) | Some(Fd::FileWrite { .. }) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::memory::{Memory, ObjKind};

    fn mem_with_buf(n: usize) -> (Memory<()>, i64) {
        let mut m: Memory<()> = Memory::new();
        let obj = m.alloc(ObjKind::External, n);
        (m, minic::memory::pack(obj, 0))
    }

    #[test]
    fn open_read_missing_file_fails() {
        let mut k = Kernel::new(KernelConfig::default());
        let (mut m, buf) = mem_with_buf(64);
        m.write_bytes(buf, b"/nope\0").unwrap();
        let eff = k.dispatch(Sys::Open, &[buf, 0], &m).unwrap();
        assert_eq!(eff.ret, errno::ENOENT);
    }

    #[test]
    fn file_read_roundtrip() {
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/data", b"hello".to_vec());
        let mut k = Kernel::new(cfg);
        let (mut m, path) = mem_with_buf(16);
        m.write_bytes(path, b"/data\0").unwrap();
        let fd = k.dispatch(Sys::Open, &[path, 0], &m).unwrap().ret;
        assert!(fd >= 3);
        let (m2, buf) = mem_with_buf(16);
        let _ = m2;
        let eff = k.dispatch(Sys::Read, &[fd, buf, 16], &m).unwrap();
        assert_eq!(eff.ret, 5);
        assert_eq!(eff.writes.len(), 1);
        assert!(eff.writes[0].is_input);
        assert_eq!(eff.writes[0].values, vec![104, 101, 108, 108, 111]);
    }

    #[test]
    fn mkdir_via_dispatch() {
        let mut k = Kernel::new(KernelConfig::default());
        let (mut m, path) = mem_with_buf(16);
        m.write_bytes(path, b"/newdir\0").unwrap();
        assert_eq!(k.dispatch(Sys::Mkdir, &[path, 0o755], &m).unwrap().ret, 0);
        assert_eq!(
            k.dispatch(Sys::Mkdir, &[path, 0o755], &m).unwrap().ret,
            errno::EEXIST
        );
    }

    #[test]
    fn socket_lifecycle_and_accept() {
        let cfg = KernelConfig {
            clients: vec![ClientScript::oneshot(b"ping".to_vec())],
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let (m, _) = mem_with_buf(4);
        let sock = k.dispatch(Sys::Socket, &[], &m).unwrap().ret;
        assert_eq!(k.dispatch(Sys::Bind, &[sock, 8080], &m).unwrap().ret, 0);
        assert_eq!(k.dispatch(Sys::Listen, &[sock, 16], &m).unwrap().ret, 0);
        // Nothing arrived before the first select pump.
        assert_eq!(k.dispatch(Sys::Accept, &[sock], &m).unwrap().ret, -1);
        // Select pumps arrivals.
        let (mut m2, fds) = mem_with_buf(8);
        m2.store(fds, sock, ()).unwrap();
        let (m3, ready) = mem_with_buf(8);
        let _ = m3;
        let eff = k.dispatch(Sys::Select, &[fds, 1, ready], &m2).unwrap();
        assert_eq!(eff.ret, 1);
        let conn = k.dispatch(Sys::Accept, &[sock], &m2).unwrap().ret;
        assert!(conn >= 3);
    }

    #[test]
    fn signal_fires_after_all_served() {
        let cfg = KernelConfig {
            clients: vec![ClientScript::oneshot(b"x".to_vec())],
            signal_plan: Some(SignalPlan {
                sig: 11,
                after_all_conns_served: true,
                after_n_syscalls: None,
            }),
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let (m, buf) = mem_with_buf(8);
        let sock = k.dispatch(Sys::Socket, &[], &m).unwrap().ret;
        k.dispatch(Sys::Bind, &[sock, 80], &m).unwrap();
        k.dispatch(Sys::Listen, &[sock, 4], &m).unwrap();
        k.dispatch(Sys::Select, &[buf, 0, buf], &m).unwrap();
        let conn = k.dispatch(Sys::Accept, &[sock], &m).unwrap().ret;
        assert!(k.take_pending_signal().is_none());
        k.dispatch(Sys::Select, &[buf, 0, buf], &m).unwrap();
        k.dispatch(Sys::Read, &[conn, buf, 8], &m).unwrap();
        k.dispatch(Sys::Close, &[conn], &m).unwrap();
        // All clients served: next dispatch schedules the signal.
        k.dispatch(Sys::Getuid, &[], &m).unwrap();
        assert_eq!(k.take_pending_signal(), Some(11));
    }

    #[test]
    fn signal_fires_after_n_syscalls() {
        let cfg = KernelConfig {
            signal_plan: Some(SignalPlan {
                sig: 11,
                after_all_conns_served: false,
                after_n_syscalls: Some(3),
            }),
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let (m, _) = mem_with_buf(4);
        k.dispatch(Sys::Getuid, &[], &m).unwrap();
        k.dispatch(Sys::Getuid, &[], &m).unwrap();
        assert!(k.take_pending_signal().is_none());
        k.dispatch(Sys::Getuid, &[], &m).unwrap();
        assert_eq!(k.take_pending_signal(), Some(11));
    }

    #[test]
    fn reads_are_chunked_deterministically() {
        let mut cfg = KernelConfig::default();
        cfg.fs.install_file("/big", vec![b'a'; 100]);
        cfg.max_read_chunk = 10;
        cfg.seed = 7;
        let sizes1 = read_all(&cfg);
        let sizes2 = read_all(&cfg);
        assert_eq!(sizes1, sizes2, "same seed, same chunks");
        assert!(sizes1.iter().all(|s| *s >= 1 && *s <= 10));
        assert_eq!(sizes1.iter().sum::<i64>(), 100);
    }

    fn read_all(cfg: &KernelConfig) -> Vec<i64> {
        let mut k = Kernel::new(cfg.clone());
        let (mut m, path) = mem_with_buf(16);
        m.write_bytes(path, b"/big\0").unwrap();
        let fd = k.dispatch(Sys::Open, &[path, 0], &m).unwrap().ret;
        let (m2, buf) = mem_with_buf(128);
        let _ = m2;
        let mut sizes = Vec::new();
        loop {
            let r = k.dispatch(Sys::Read, &[fd, buf, 100], &m).unwrap().ret;
            if r <= 0 {
                break;
            }
            sizes.push(r);
        }
        sizes
    }

    #[test]
    fn stats_track_requests() {
        let cfg = KernelConfig {
            clients: vec![
                ClientScript::oneshot(b"a".to_vec()),
                ClientScript::oneshot(b"b".to_vec()),
            ],
            arrival_window: 1,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let (m, buf) = mem_with_buf(8);
        let sock = k.dispatch(Sys::Socket, &[], &m).unwrap().ret;
        k.dispatch(Sys::Bind, &[sock, 80], &m).unwrap();
        k.dispatch(Sys::Listen, &[sock, 4], &m).unwrap();
        for _ in 0..2 {
            k.dispatch(Sys::Select, &[buf, 0, buf], &m).unwrap();
            let conn = k.dispatch(Sys::Accept, &[sock], &m).unwrap().ret;
            k.dispatch(Sys::Select, &[buf, 0, buf], &m).unwrap();
            k.dispatch(Sys::Read, &[conn, buf, 8], &m).unwrap();
            k.dispatch(Sys::Close, &[conn], &m).unwrap();
        }
        assert_eq!(k.stats().requests_completed, 2);
        assert!(k.all_clients_served());
    }
}
