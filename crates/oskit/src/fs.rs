//! The simulated filesystem.
//!
//! A path-keyed tree of directories, regular files, FIFOs and device
//! nodes — enough POSIX surface for the coreutils benchmarks (`mkdir`,
//! `mknod`, `mkfifo`, `paste`) and the diff experiments. Errors are
//! returned as negative errno values so programs can branch on the same
//! error space real coreutils do.

use std::collections::BTreeMap;

/// Negative errno values returned by filesystem calls.
pub mod errno {
    /// No such file or directory.
    pub const ENOENT: i64 = -2;
    /// File exists.
    pub const EEXIST: i64 = -17;
    /// Not a directory.
    pub const ENOTDIR: i64 = -20;
    /// Is a directory.
    pub const EISDIR: i64 = -21;
    /// Invalid argument.
    pub const EINVAL: i64 = -22;
    /// Permission denied.
    pub const EACCES: i64 = -13;
}

/// What a filesystem node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsNode {
    /// A directory.
    Dir,
    /// A regular file with contents.
    File(Vec<u8>),
    /// A named pipe.
    Fifo,
    /// A device node with the given `dev` number.
    Device(i64),
}

/// The simulated filesystem state.
#[derive(Debug, Clone)]
pub struct SimFs {
    nodes: BTreeMap<String, FsNode>,
    /// When false, mutating operations fail with `EACCES` (models running
    /// as an unprivileged user where relevant for `mknod`).
    pub allow_mknod: bool,
}

impl Default for SimFs {
    fn default() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), FsNode::Dir);
        nodes.insert("/tmp".to_string(), FsNode::Dir);
        SimFs {
            nodes,
            allow_mknod: true,
        }
    }
}

fn normalize(path: &[u8]) -> Option<String> {
    if path.is_empty() || path.len() > 4096 {
        return None;
    }
    let s = String::from_utf8_lossy(path).to_string();
    let mut out = String::from("/");
    for comp in s.split('/') {
        if comp.is_empty() || comp == "." {
            continue;
        }
        if !out.ends_with('/') {
            out.push('/');
        }
        out.push_str(comp);
    }
    Some(out)
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

impl SimFs {
    /// Creates a filesystem with the default root layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a regular file (creating no intermediate directories —
    /// configure parents explicitly).
    pub fn install_file(&mut self, path: &str, data: Vec<u8>) {
        self.nodes.insert(path.to_string(), FsNode::File(data));
    }

    /// Installs a directory.
    pub fn install_dir(&mut self, path: &str) {
        self.nodes.insert(path.to_string(), FsNode::Dir);
    }

    /// Looks up a node.
    pub fn get(&self, path: &[u8]) -> Option<&FsNode> {
        let p = normalize(path)?;
        self.nodes.get(&p)
    }

    /// `mkdir` — 0 on success, negative errno otherwise.
    pub fn mkdir(&mut self, path: &[u8], _mode: i64) -> i64 {
        let Some(p) = normalize(path) else {
            return errno::EINVAL;
        };
        if self.nodes.contains_key(&p) {
            return errno::EEXIST;
        }
        match self.nodes.get(&parent_of(&p)) {
            Some(FsNode::Dir) => {
                self.nodes.insert(p, FsNode::Dir);
                0
            }
            Some(_) => errno::ENOTDIR,
            None => errno::ENOENT,
        }
    }

    /// `mknod` — creates a device node.
    pub fn mknod(&mut self, path: &[u8], _mode: i64, dev: i64) -> i64 {
        if !self.allow_mknod {
            return errno::EACCES;
        }
        let Some(p) = normalize(path) else {
            return errno::EINVAL;
        };
        if self.nodes.contains_key(&p) {
            return errno::EEXIST;
        }
        match self.nodes.get(&parent_of(&p)) {
            Some(FsNode::Dir) => {
                self.nodes.insert(p, FsNode::Device(dev));
                0
            }
            Some(_) => errno::ENOTDIR,
            None => errno::ENOENT,
        }
    }

    /// `mkfifo` — creates a named pipe.
    pub fn mkfifo(&mut self, path: &[u8], _mode: i64) -> i64 {
        let Some(p) = normalize(path) else {
            return errno::EINVAL;
        };
        if self.nodes.contains_key(&p) {
            return errno::EEXIST;
        }
        match self.nodes.get(&parent_of(&p)) {
            Some(FsNode::Dir) => {
                self.nodes.insert(p, FsNode::Fifo);
                0
            }
            Some(_) => errno::ENOTDIR,
            None => errno::ENOENT,
        }
    }

    /// `stat` — 0 if the path exists, `ENOENT` otherwise.
    pub fn stat(&self, path: &[u8]) -> i64 {
        match self.get(path) {
            Some(_) => 0,
            None => errno::ENOENT,
        }
    }

    /// `unlink` — removes a non-directory node.
    pub fn unlink(&mut self, path: &[u8]) -> i64 {
        let Some(p) = normalize(path) else {
            return errno::EINVAL;
        };
        match self.nodes.get(&p) {
            Some(FsNode::Dir) => errno::EISDIR,
            Some(_) => {
                self.nodes.remove(&p);
                0
            }
            None => errno::ENOENT,
        }
    }

    /// Opens for reading: returns the file contents.
    pub fn open_read(&self, path: &[u8]) -> Result<Vec<u8>, i64> {
        match self.get(path) {
            Some(FsNode::File(d)) => Ok(d.clone()),
            Some(FsNode::Dir) => Err(errno::EISDIR),
            Some(_) => Err(errno::EINVAL),
            None => Err(errno::ENOENT),
        }
    }

    /// Opens for writing: creates or truncates, returns 0 or errno.
    pub fn open_write(&mut self, path: &[u8]) -> Result<(), i64> {
        let Some(p) = normalize(path) else {
            return Err(errno::EINVAL);
        };
        match self.nodes.get(&parent_of(&p)) {
            Some(FsNode::Dir) => match self.nodes.get(&p) {
                Some(FsNode::Dir) => Err(errno::EISDIR),
                _ => {
                    self.nodes.insert(p, FsNode::File(Vec::new()));
                    Ok(())
                }
            },
            Some(_) => Err(errno::ENOTDIR),
            None => Err(errno::ENOENT),
        }
    }

    /// Appends bytes to an existing file.
    pub fn append(&mut self, path: &[u8], bytes: &[u8]) -> i64 {
        let Some(p) = normalize(path) else {
            return errno::EINVAL;
        };
        match self.nodes.get_mut(&p) {
            Some(FsNode::File(d)) => {
                d.extend_from_slice(bytes);
                bytes.len() as i64
            }
            Some(_) => errno::EINVAL,
            None => errno::ENOENT,
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the default layout exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_succeeds_and_detects_duplicates() {
        let mut fs = SimFs::new();
        assert_eq!(fs.mkdir(b"/a", 0o755), 0);
        assert_eq!(fs.mkdir(b"/a", 0o755), errno::EEXIST);
        assert_eq!(fs.mkdir(b"/a/b", 0o755), 0);
    }

    #[test]
    fn mkdir_requires_parent() {
        let mut fs = SimFs::new();
        assert_eq!(fs.mkdir(b"/no/such/dir", 0o755), errno::ENOENT);
    }

    #[test]
    fn mkdir_parent_must_be_dir() {
        let mut fs = SimFs::new();
        fs.install_file("/f", b"x".to_vec());
        assert_eq!(fs.mkdir(b"/f/sub", 0o755), errno::ENOTDIR);
    }

    #[test]
    fn mknod_respects_permission() {
        let mut fs = SimFs::new();
        assert_eq!(fs.mknod(b"/dev0", 0o644, 5), 0);
        fs.allow_mknod = false;
        assert_eq!(fs.mknod(b"/dev1", 0o644, 5), errno::EACCES);
    }

    #[test]
    fn mkfifo_and_stat() {
        let mut fs = SimFs::new();
        assert_eq!(fs.stat(b"/p"), errno::ENOENT);
        assert_eq!(fs.mkfifo(b"/p", 0o644), 0);
        assert_eq!(fs.stat(b"/p"), 0);
        assert_eq!(fs.mkfifo(b"/p", 0o644), errno::EEXIST);
    }

    #[test]
    fn unlink_removes_files_not_dirs() {
        let mut fs = SimFs::new();
        fs.install_file("/f", b"data".to_vec());
        assert_eq!(fs.unlink(b"/f"), 0);
        assert_eq!(fs.unlink(b"/f"), errno::ENOENT);
        assert_eq!(fs.unlink(b"/tmp"), errno::EISDIR);
    }

    #[test]
    fn open_read_write_roundtrip() {
        let mut fs = SimFs::new();
        fs.open_write(b"/out").unwrap();
        assert_eq!(fs.append(b"/out", b"hello"), 5);
        assert_eq!(fs.open_read(b"/out").unwrap(), b"hello");
    }

    #[test]
    fn path_normalization() {
        let mut fs = SimFs::new();
        assert_eq!(fs.mkdir(b"a", 0o755), 0); // relative = /a
        assert_eq!(fs.stat(b"/a"), 0);
        assert_eq!(fs.stat(b"//a/"), 0);
        assert_eq!(fs.stat(b"./a"), 0);
    }

    #[test]
    fn empty_path_is_invalid() {
        let mut fs = SimFs::new();
        assert_eq!(fs.mkdir(b"", 0o755), errno::EINVAL);
    }
}
