//! Abstract memory locations for the whole-program analyses.
//!
//! Field- and element-insensitive: one abstract location per variable,
//! string, or allocation site. This matches the precision class of the
//! paper's CIL-based points-to analysis ("the points-to analysis tends to
//! over-estimate the set of aliases", §2.2) — over-approximation is the
//! documented, intended bias of the static method.

use minic::ast::ExprId;
use minic::types::{FuncId, GlobalId, StrId};
use std::collections::HashMap;

/// An abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A global variable.
    Global(GlobalId),
    /// A local slot (parameter or declaration) of a function, by frame
    /// offset.
    Frame(FuncId, u32),
    /// A string literal object.
    Str(StrId),
    /// A heap allocation site (`malloc` call expression).
    Heap(ExprId),
    /// The argv pointer array.
    ArgvArr,
    /// The argv string bytes (all argument strings collapsed).
    ArgvStr,
}

/// A node of the points-to constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKey {
    /// The contents of an abstract location.
    Loc(AbsLoc),
    /// The value of an expression.
    Expr(ExprId),
    /// The return value of a function.
    Ret(FuncId),
}

/// Dense interning of [`NodeKey`]s and [`AbsLoc`]s.
#[derive(Debug, Default)]
pub struct Interner {
    nodes: HashMap<NodeKey, usize>,
    node_keys: Vec<NodeKey>,
    locs: HashMap<AbsLoc, usize>,
    loc_keys: Vec<AbsLoc>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dense id of a node (created on first use).
    pub fn node(&mut self, k: NodeKey) -> usize {
        if let Some(i) = self.nodes.get(&k) {
            return *i;
        }
        let i = self.node_keys.len();
        self.nodes.insert(k, i);
        self.node_keys.push(k);
        i
    }

    /// Dense id of an abstract location (created on first use).
    pub fn loc(&mut self, l: AbsLoc) -> usize {
        if let Some(i) = self.locs.get(&l) {
            return *i;
        }
        let i = self.loc_keys.len();
        self.locs.insert(l, i);
        self.loc_keys.push(l);
        i
    }

    /// The location behind a dense id.
    pub fn loc_key(&self, i: usize) -> AbsLoc {
        self.loc_keys[i]
    }

    /// The node behind a dense id.
    pub fn node_key(&self, i: usize) -> NodeKey {
        self.node_keys[i]
    }

    /// Number of interned nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of interned locations.
    pub fn n_locs(&self) -> usize {
        self.loc_keys.len()
    }

    /// Dense id of an existing node, if interned.
    pub fn node_id(&self, k: &NodeKey) -> Option<usize> {
        self.nodes.get(k).copied()
    }

    /// Dense id of an existing location, if interned.
    pub fn loc_id(&self, l: &AbsLoc) -> Option<usize> {
        self.locs.get(l).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut i = Interner::new();
        let a = i.node(NodeKey::Loc(AbsLoc::ArgvArr));
        let b = i.node(NodeKey::Ret(FuncId(0)));
        assert_eq!(i.node(NodeKey::Loc(AbsLoc::ArgvArr)), a);
        assert_ne!(a, b);
        assert_eq!(i.node_key(a), NodeKey::Loc(AbsLoc::ArgvArr));
    }

    #[test]
    fn locs_and_nodes_are_separate_spaces() {
        let mut i = Interner::new();
        let l = i.loc(AbsLoc::ArgvStr);
        let n = i.node(NodeKey::Loc(AbsLoc::ArgvStr));
        assert_eq!(l, 0);
        assert_eq!(n, 0);
        assert_eq!(i.n_locs(), 1);
        assert_eq!(i.n_nodes(), 1);
    }
}
