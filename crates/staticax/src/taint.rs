//! Interprocedural taint propagation — the paper's Algorithms 1 and 2.
//!
//! Identifies the *symbolic variables* (locations whose values may depend
//! on program input) by a whole-program fixed point, then labels a branch
//! symbolic when its condition may reference a symbolic variable.
//!
//! Sources match §2.2: `argv`, and the results of input-returning system
//! calls (`read` buffers and counts, `select` ready sets, clock, PRNG).
//! Propagation runs through assignments, calls (parameters and returns)
//! and pointer dereferences resolved by the points-to analysis. The
//! analysis is flow- and context-insensitive — strictly more
//! over-approximate than the paper's summary-based algorithm, which is
//! the right *direction* of imprecision for the static method ("all
//! symbolic branches are labeled symbolic, but some concrete branches may
//! also be labeled symbolic").

use crate::absloc::{AbsLoc, NodeKey};
use crate::pointsto::PointsTo;
use minic::ast::*;
use minic::check::{Callee, Program, Res};
use minic::types::{Builtin, FuncId, Sys, Type};
use minic::UnitId;
use std::collections::HashSet;

/// The result of the taint fixed point plus branch marking.
#[derive(Debug)]
pub struct TaintResult {
    /// Locations whose contents may depend on input.
    pub tainted: HashSet<AbsLoc>,
    /// Per function: may its return value depend on input?
    pub ret_tainted: Vec<bool>,
    /// Per branch location: labeled symbolic by the static analysis.
    /// Branches of excluded (library) units are `true` (§5.3: "All
    /// branches in the library are treated as symbolic").
    pub symbolic_branches: Vec<bool>,
    /// Fixed-point iterations until convergence.
    pub iterations: usize,
}

impl TaintResult {
    /// Number of branches labeled symbolic.
    pub fn n_symbolic(&self) -> usize {
        self.symbolic_branches.iter().filter(|b| **b).count()
    }
}

/// Runs taint propagation and branch marking.
pub fn analyze(prog: &Program, pts: &PointsTo, exclude_units: &[UnitId]) -> TaintResult {
    let mut t = Tainter {
        prog,
        pts,
        exclude_units,
        tainted: HashSet::new(),
        ret_tainted: vec![false; prog.funcs.len()],
        changed: false,
        cur_func: FuncId(0),
    };
    // Seed: argv contents, plus argc (the argument count is input too).
    t.tainted.insert(AbsLoc::ArgvStr);
    t.tainted.insert(AbsLoc::ArgvArr);
    if prog.funcs[prog.main.0 as usize].params.len() == 2 {
        t.tainted.insert(AbsLoc::Frame(prog.main, 0));
    }

    let mut iterations = 0;
    loop {
        iterations += 1;
        t.changed = false;
        for (fi, info) in prog.funcs.iter().enumerate() {
            if exclude_units.contains(&info.unit) {
                continue;
            }
            t.cur_func = FuncId(fi as u32);
            let def = &prog.ast.funcs[info.ast_index];
            t.block(&def.body);
        }
        if !t.changed || iterations > 100 {
            break;
        }
    }

    // Branch marking (Algorithm 2).
    let mut symbolic = vec![false; prog.ast.branches.len()];
    for (fi, info) in prog.funcs.iter().enumerate() {
        let excluded = exclude_units.contains(&info.unit);
        t.cur_func = FuncId(fi as u32);
        let def = &prog.ast.funcs[info.ast_index];
        let mut conds: Vec<(BranchId, TaintVal)> = Vec::new();
        collect_branches(&def.body, &mut |bid, cond| {
            let v = if excluded {
                TaintVal(true)
            } else {
                TaintVal(t.eval(cond))
            };
            conds.push((bid, v));
        });
        for (bid, v) in conds {
            symbolic[bid.0 as usize] = v.0;
        }
    }

    TaintResult {
        tainted: t.tainted,
        ret_tainted: t.ret_tainted,
        symbolic_branches: symbolic,
        iterations,
    }
}

struct TaintVal(bool);

/// Calls `f` with every branch id and its condition expression.
fn collect_branches<'a>(b: &'a Block, f: &mut impl FnMut(BranchId, &'a Expr)) {
    for s in &b.stmts {
        collect_stmt(s, f);
    }
}

fn collect_stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(BranchId, &'a Expr)) {
    // Expression-level branches (&&, ||, ?:) anywhere in the statement.
    walk_stmt_exprs(s, &mut |e| match &e.kind {
        ExprKind::Logical { branch, lhs, .. } => f(*branch, lhs),
        ExprKind::Ternary { branch, cond, .. } => f(*branch, cond),
        _ => {}
    });
    match &s.kind {
        StmtKind::If {
            branch,
            cond,
            then_b,
            else_b,
        } => {
            f(*branch, cond);
            collect_branches(then_b, f);
            if let Some(e) = else_b {
                collect_branches(e, f);
            }
        }
        StmtKind::While { branch, cond, body } => {
            f(*branch, cond);
            collect_branches(body, f);
        }
        StmtKind::DoWhile { branch, body, cond } => {
            f(*branch, cond);
            collect_branches(body, f);
        }
        StmtKind::For {
            branch,
            cond,
            init,
            body,
            ..
        } => {
            if let (Some(b), Some(c)) = (branch, cond) {
                f(*b, c);
            }
            if let Some(i) = init {
                collect_stmt(i, f);
            }
            collect_branches(body, f);
        }
        StmtKind::Switch {
            scrutinee,
            cases,
            default,
        } => {
            for c in cases {
                // Each case compares the scrutinee against a constant.
                f(c.branch, scrutinee);
                for st in &c.body {
                    collect_stmt(st, f);
                }
            }
            if let Some(d) = default {
                for st in d {
                    collect_stmt(st, f);
                }
            }
        }
        StmtKind::Block(b) => collect_branches(b, f),
        _ => {}
    }
}

#[derive(Clone, Copy)]
enum Place {
    Direct(AbsLoc),
    Indirect(ExprId),
    Unknown,
}

struct Tainter<'p> {
    prog: &'p Program,
    pts: &'p PointsTo,
    exclude_units: &'p [UnitId],
    tainted: HashSet<AbsLoc>,
    ret_tainted: Vec<bool>,
    changed: bool,
    cur_func: FuncId,
}

impl<'p> Tainter<'p> {
    fn taint(&mut self, l: AbsLoc) {
        if self.tainted.insert(l) {
            self.changed = true;
        }
    }

    fn is_tainted(&self, l: &AbsLoc) -> bool {
        self.tainted.contains(l)
    }

    fn ident_loc(&self, e: &Expr) -> Option<AbsLoc> {
        match self.prog.res[e.id.0 as usize] {
            Some(Res::Local { offset }) => Some(AbsLoc::Frame(self.cur_func, offset as u32)),
            Some(Res::Global(g)) => Some(AbsLoc::Global(g)),
            None => None,
        }
    }

    fn place(&self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Ident(_) => match self.ident_loc(e) {
                Some(l) => Place::Direct(l),
                None => Place::Unknown,
            },
            ExprKind::Deref(p) => Place::Indirect(p.id),
            ExprKind::Index { base, .. } => {
                if matches!(self.prog.ty(base), Type::Array(..)) {
                    self.place(base)
                } else {
                    Place::Indirect(base.id)
                }
            }
            ExprKind::Field { base, arrow, .. } => {
                if *arrow {
                    Place::Indirect(base.id)
                } else {
                    self.place(base)
                }
            }
            _ => Place::Unknown,
        }
    }

    /// Taint of the contents behind a place.
    fn read_taint(&self, p: Place) -> bool {
        match p {
            Place::Direct(a) => self.is_tainted(&a),
            Place::Indirect(pid) => self.pts_locs(pid).iter().any(|l| self.is_tainted(l)),
            Place::Unknown => true, // reading an unknown place: assume input
        }
    }

    fn pts_locs(&self, pid: ExprId) -> Vec<AbsLoc> {
        self.pts.points_to(NodeKey::Expr(pid))
    }

    fn taint_place(&mut self, p: Place) {
        match p {
            Place::Direct(a) => self.taint(a),
            Place::Indirect(pid) => {
                for l in self.pts_locs(pid) {
                    self.taint(l);
                }
            }
            Place::Unknown => {}
        }
    }

    /// Taints everything reachable through a pointer argument (library
    /// call with tainted input may store into any buffer it received).
    fn taint_pointees(&mut self, e: &Expr) {
        for l in self.pts_locs(e.id) {
            self.taint(l);
        }
    }

    /// Evaluates value taint, performing store/call side effects.
    fn eval(&mut self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Sizeof(_) => false,
            ExprKind::Ident(_) => {
                if matches!(self.prog.ty(e), Type::Array(..) | Type::Struct(_)) {
                    false // decayed address is concrete
                } else {
                    self.read_taint(self.place(e))
                }
            }
            ExprKind::Deref(p) => {
                let pt = self.eval(p);
                pt || self.read_taint(Place::Indirect(p.id))
            }
            ExprKind::Index { base, index } => {
                let bt = self.eval(base);
                let it = self.eval(index);
                if matches!(self.prog.ty(e), Type::Array(..) | Type::Struct(_)) {
                    return false;
                }
                bt || it || self.read_taint(self.place(e))
            }
            ExprKind::Field { base, .. } => {
                let bt = self.eval(base);
                if matches!(self.prog.ty(e), Type::Array(..) | Type::Struct(_)) {
                    return false;
                }
                bt || self.read_taint(self.place(e))
            }
            ExprKind::AddrOf(inner) => {
                // Evaluate for side effects (e.g. &arr[f(x)]).
                let _ = self.eval(inner);
                false
            }
            ExprKind::Unary { expr, .. } => self.eval(expr),
            ExprKind::Cast { expr, .. } => self.eval(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                a || b
            }
            ExprKind::Logical { lhs, rhs, .. } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                a || b
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                let c = self.eval(cond);
                let a = self.eval(then_e);
                let b = self.eval(else_e);
                c || a || b
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let mut t = self.eval(rhs);
                if op.is_some() {
                    t = t || self.read_taint(self.place(lhs));
                }
                // Evaluate lhs subexpressions (indices) for side effects.
                if let ExprKind::Index { index, .. } = &lhs.kind {
                    let it = self.eval(index);
                    t = t || it;
                }
                if t {
                    let p = self.place(lhs);
                    self.taint_place(p);
                }
                t
            }
            ExprKind::IncDec { expr, .. } => self.read_taint(self.place(expr)),
            ExprKind::Call { args, .. } => self.call(e, args),
        }
    }

    fn call(&mut self, e: &Expr, args: &[Expr]) -> bool {
        let arg_taints: Vec<bool> = args.iter().map(|a| self.eval(a)).collect();
        match self.prog.callee[e.id.0 as usize] {
            Some(Callee::Func(f)) => {
                let info = &self.prog.funcs[f.0 as usize];
                if self.exclude_units.contains(&info.unit) {
                    // Opaque library call: tainted args contaminate the
                    // return and every buffer passed in.
                    let any = arg_taints.iter().any(|t| *t);
                    if any {
                        for a in args {
                            self.taint_pointees(a);
                        }
                    }
                    any
                } else {
                    for (i, t) in arg_taints.iter().enumerate() {
                        if *t {
                            self.taint(AbsLoc::Frame(f, i as u32));
                        }
                    }
                    self.ret_tainted[f.0 as usize]
                }
            }
            Some(Callee::Builtin(b)) => match b {
                Builtin::Sys(Sys::Read) => {
                    if let Some(buf) = args.get(1) {
                        self.taint_pointees(buf);
                    }
                    true
                }
                Builtin::Sys(Sys::Select) => {
                    if let Some(ready) = args.get(2) {
                        self.taint_pointees(ready);
                    }
                    true
                }
                Builtin::Sys(s) => s.returns_input(),
                Builtin::Malloc
                | Builtin::Free
                | Builtin::Exit
                | Builtin::Abort
                | Builtin::Assert
                | Builtin::Printf => false,
            },
            None => true,
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    let t = self.eval(e);
                    if t {
                        if let Some(slot) = &self.prog.decl_slot[s.id.0 as usize] {
                            self.taint(AbsLoc::Frame(self.cur_func, slot.offset as u32));
                        }
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.eval(e);
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
                ..
            } => {
                self.eval(cond);
                self.block(then_b);
                if let Some(b) = else_b {
                    self.block(b);
                }
            }
            StmtKind::While { cond, body, .. } => {
                self.eval(cond);
                self.block(body);
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.block(body);
                self.eval(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.eval(c);
                }
                if let Some(st) = step {
                    self.eval(st);
                }
                self.block(body);
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                self.eval(scrutinee);
                for c in cases {
                    for st in &c.body {
                        self.stmt(st);
                    }
                }
                if let Some(d) = default {
                    for st in d {
                        self.stmt(st);
                    }
                }
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    let t = self.eval(e);
                    if t && !self.ret_tainted[self.cur_func.0 as usize] {
                        self.ret_tainted[self.cur_func.0 as usize] = true;
                        self.changed = true;
                    }
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto;
    use minic::check::check;
    use minic::parser::{parse, parse_units};

    fn run(src: &str) -> (Program, TaintResult) {
        let prog = check(parse(src).unwrap()).unwrap();
        let pts = pointsto::analyze(&prog, &[]);
        let t = analyze(&prog, &pts, &[]);
        (prog, t)
    }

    #[test]
    fn argv_branches_are_symbolic() {
        let src = r#"
            int main(int argc, char **argv) {
                if (argv[1][0] == 'a') { return 1; }   // symbolic
                if (argc == 0) { return 2; }           // symbolic (argc is input)
                int x = 5;
                if (x > 3) { return 3; }               // concrete
                return 0;
            }
        "#;
        let (_, t) = run(src);
        assert_eq!(t.symbolic_branches, vec![true, true, false]);
    }

    #[test]
    fn taint_flows_through_assignments_and_calls() {
        let src = r#"
            int twice(int v) { return v * 2; }
            int main(int argc, char **argv) {
                int a = argv[1][0];
                int b = twice(a);
                if (b > 100) { return 1; }   // symbolic via call return
                int c = twice(7);
                if (c > 10) { return 2; }    // context-insensitive: symbolic too
                return 0;
            }
        "#;
        let (_, t) = run(src);
        assert!(t.symbolic_branches[0]);
        // Context-insensitivity makes the second call's result tainted as
        // well — the documented over-approximation of the static method.
        assert!(t.symbolic_branches[1]);
    }

    #[test]
    fn syscall_reads_taint_buffers() {
        let src = r#"
            int main() {
                char buf[16];
                int n = sys_read(0, buf, 16);
                if (n < 0) { return -1; }          // symbolic: read count
                if (buf[0] == 'x') { return 1; }   // symbolic: read data
                return 0;
            }
        "#;
        let (_, t) = run(src);
        assert_eq!(t.symbolic_branches, vec![true, true]);
    }

    #[test]
    fn pure_computation_stays_concrete() {
        let src = r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() {
                int r = fib(10);
                if (r > 50) { return 1; }
                return 0;
            }
        "#;
        let (_, t) = run(src);
        assert_eq!(t.n_symbolic(), 0);
    }

    #[test]
    fn fibonacci_listing_one_shape() {
        // Listing 1 of the paper: only the two option tests are symbolic.
        let src = r#"
            int fibonacci(int n) {
                int a = 0;
                int b = 1;
                for (int i = 0; i < n; i++) {
                    int t = a + b;
                    a = b;
                    b = t;
                }
                return a;
            }
            int main(int argc, char **argv) {
                char option = argv[1][0];
                int result = 0;
                if (option == 'a') {
                    result = fibonacci(20);
                } else if (option == 'b') {
                    result = fibonacci(40);
                }
                printf("Result: %d\n", result);
                return 0;
            }
        "#;
        let (prog, t) = run(src);
        let sym: Vec<usize> = t
            .symbolic_branches
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(i, _)| i)
            .collect();
        // Exactly the two `option ==` tests.
        assert_eq!(sym.len(), 2, "branches: {:?}", prog.ast.branches);
        for i in sym {
            assert_eq!(prog.ast.branches[i].func, "main");
        }
    }

    #[test]
    fn taint_through_pointer_aliases() {
        let src = r#"
            int main(int argc, char **argv) {
                int x = 0;
                int *p = &x;
                *p = argv[1][0];
                if (x > 5) { return 1; }   // symbolic through the alias
                return 0;
            }
        "#;
        let (_, t) = run(src);
        assert_eq!(t.symbolic_branches, vec![true]);
    }

    #[test]
    fn excluded_units_are_fully_symbolic() {
        let lib = r#"
            int lib_check(int x) {
                if (x > 0) { return 1; }    // library branch
                return 0;
            }
        "#;
        let app = r#"
            int main() {
                int v = 3;
                if (lib_check(v)) { return 1; }  // app branch, concrete arg
                return 0;
            }
        "#;
        let prog = check(parse_units(&[("libc", lib), ("app", app)]).unwrap()).unwrap();
        let exclude = vec![minic::UnitId(0)];
        let pts = pointsto::analyze(&prog, &exclude);
        let t = analyze(&prog, &pts, &exclude);
        // Library branch forced symbolic; app branch calls an opaque
        // library function with a concrete arg: not tainted.
        assert_eq!(t.symbolic_branches, vec![true, false]);
    }

    #[test]
    fn opaque_library_contaminates_buffers() {
        let lib = "int lib_copy(char *dst, char *src) { dst[0] = src[0]; return 0; }";
        let app = r#"
            int main(int argc, char **argv) {
                char buf[8];
                lib_copy(buf, argv[1]);
                if (buf[0] == 'x') { return 1; }
                return 0;
            }
        "#;
        let prog = check(parse_units(&[("libc", lib), ("app", app)]).unwrap()).unwrap();
        let exclude = vec![minic::UnitId(0)];
        let pts = pointsto::analyze(&prog, &exclude);
        let t = analyze(&prog, &pts, &exclude);
        // The app branch on buf[0] must be symbolic: the opaque call
        // received tainted argv and a pointer to buf.
        assert!(*t.symbolic_branches.last().unwrap());
    }

    #[test]
    fn static_is_superset_of_truth_on_overapprox_example() {
        // x is copied from input but the branch tests a constant: the
        // static method may still flag it (flow-insensitive) while the
        // dynamic method would not. We only require: every truly
        // symbolic branch is flagged.
        let src = r#"
            int main(int argc, char **argv) {
                int x = argv[1][0];
                x = 7;                      // kills the taint dynamically
                if (x > 3) { return 1; }    // dynamically concrete
                return 0;
            }
        "#;
        let (_, t) = run(src);
        // Flow-insensitive: stays tainted. This is the intended bias.
        assert_eq!(t.symbolic_branches, vec![true]);
    }

    #[test]
    fn ternary_and_logical_branches_are_collected() {
        let src = r#"
            int main(int argc, char **argv) {
                int a = argv[1][0];
                int b = 1;
                int r = (a > 0 && a < 10) ? 1 : 0;   // &&: symbolic, ?: symbolic
                int s = (b > 0 || b < 5) ? 1 : 0;    // ||: concrete, ?: concrete
                return r + s;
            }
        "#;
        let (prog, t) = run(src);
        assert_eq!(prog.ast.branches.len(), 4);
        let by_kind: Vec<(BranchKind, bool)> = prog
            .ast
            .branches
            .iter()
            .map(|b| (b.kind, t.symbolic_branches[b.id.0 as usize]))
            .collect();
        assert!(by_kind.contains(&(BranchKind::LogicalAnd, true)));
        assert!(by_kind.contains(&(BranchKind::LogicalOr, false)));
    }
}
