//! Andersen-style inclusion-based points-to analysis.
//!
//! Flow- and context-insensitive subset constraints over
//! [`AbsLoc`] values, solved with the classic worklist
//! algorithm. The taint analysis (Algorithm 1 of the paper) consumes its
//! results to resolve indirect loads and stores.

use crate::absloc::{AbsLoc, Interner, NodeKey};
use minic::ast::*;
use minic::check::{Callee, Program, Res};
use minic::types::{Builtin, FuncId, Sys, Type};
use minic::UnitId;
use std::collections::HashSet;

/// Where an assignment writes, abstractly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// Directly into a known abstract location.
    Direct(AbsLoc),
    /// Through the pointer value of this expression.
    Indirect(ExprId),
    /// Unknown (e.g. write through an unanalyzed value); ignored, which
    /// is sound for points-to because no pointer can be *read back* from
    /// an unknown place either (reads from unknown places return ⊤ taint
    /// in the taint analysis instead).
    Unknown,
}

/// The solved points-to relation.
#[derive(Debug)]
pub struct PointsTo {
    /// Interner shared with downstream analyses.
    pub interner: Interner,
    /// Points-to set per node (dense ids; values are dense loc ids).
    pub pts: Vec<HashSet<usize>>,
    /// Functions that were analyzed (not excluded as "library").
    pub analyzed_funcs: Vec<bool>,
}

impl PointsTo {
    /// The points-to set of a node, as abstract locations.
    pub fn points_to(&self, key: NodeKey) -> Vec<AbsLoc> {
        match self.interner.node_id(&key) {
            Some(n) => {
                let mut v: Vec<AbsLoc> = self.pts[n]
                    .iter()
                    .map(|l| self.interner.loc_key(*l))
                    .collect();
                v.sort();
                v
            }
            None => Vec::new(),
        }
    }

    /// Dense points-to set of a node id.
    pub fn pts_of(&self, n: usize) -> &HashSet<usize> {
        &self.pts[n]
    }
}

/// Runs the analysis. Functions defined in `exclude_units` are treated
/// as an opaque library (no constraints generated from their bodies).
pub fn analyze(prog: &Program, exclude_units: &[UnitId]) -> PointsTo {
    let mut b = Builder {
        prog,
        interner: Interner::new(),
        addr: Vec::new(),
        copies: Vec::new(),
        loads: Vec::new(),
        stores: Vec::new(),
        cur_func: FuncId(0),
    };
    let mut analyzed = vec![false; prog.funcs.len()];
    for (fi, info) in prog.funcs.iter().enumerate() {
        if exclude_units.contains(&info.unit) {
            continue;
        }
        analyzed[fi] = true;
        b.cur_func = FuncId(fi as u32);
        let def = &prog.ast.funcs[info.ast_index];
        b.block(&def.body);
    }
    // argv seeding: main's argv parameter points to the argv array whose
    // cells point to the argv strings.
    let main = prog.main;
    if prog.funcs[main.0 as usize].params.len() == 2 {
        let argv_param = b.interner.node(NodeKey::Loc(AbsLoc::Frame(main, 1)));
        let arr = b.interner.loc(AbsLoc::ArgvArr);
        b.addr.push((argv_param, arr));
        let arr_node = b.interner.node(NodeKey::Loc(AbsLoc::ArgvArr));
        let strs = b.interner.loc(AbsLoc::ArgvStr);
        b.addr.push((arr_node, strs));
    }
    b.solve(analyzed)
}

struct Builder<'p> {
    prog: &'p Program,
    interner: Interner,
    /// pts\[n\] ⊇ {loc}
    addr: Vec<(usize, usize)>,
    /// pts\[dst\] ⊇ pts\[src\]
    copies: Vec<(usize, usize)>,
    /// dst ⊇ *src
    loads: Vec<(usize, usize)>,
    /// *dst ⊇ src
    stores: Vec<(usize, usize)>,
    cur_func: FuncId,
}

impl<'p> Builder<'p> {
    fn node(&mut self, k: NodeKey) -> usize {
        self.interner.node(k)
    }

    fn expr_node(&mut self, e: &Expr) -> usize {
        self.node(NodeKey::Expr(e.id))
    }

    fn ident_loc(&mut self, e: &Expr) -> Option<AbsLoc> {
        match self.prog.res[e.id.0 as usize] {
            Some(Res::Local { offset }) => Some(AbsLoc::Frame(self.cur_func, offset as u32)),
            Some(Res::Global(g)) => Some(AbsLoc::Global(g)),
            None => None,
        }
    }

    /// Resolves an lvalue expression to an abstract place.
    fn place(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Ident(_) => match self.ident_loc(e) {
                Some(l) => Place::Direct(l),
                None => Place::Unknown,
            },
            ExprKind::Deref(p) => {
                self.value(p);
                Place::Indirect(p.id)
            }
            ExprKind::Index { base, index } => {
                self.value(index);
                let base_ty = self.prog.ty(base);
                if matches!(base_ty, Type::Array(..)) {
                    self.place(base)
                } else {
                    self.value(base);
                    Place::Indirect(base.id)
                }
            }
            ExprKind::Field { base, arrow, .. } => {
                if *arrow {
                    self.value(base);
                    Place::Indirect(base.id)
                } else {
                    self.place(base)
                }
            }
            _ => Place::Unknown,
        }
    }

    /// Reads a place's contents into `dst`.
    fn read_place(&mut self, p: Place, dst: usize) {
        match p {
            Place::Direct(a) => {
                let src = self.node(NodeKey::Loc(a));
                self.copies.push((dst, src));
            }
            Place::Indirect(pid) => {
                let src = self.node(NodeKey::Expr(pid));
                self.loads.push((dst, src));
            }
            Place::Unknown => {}
        }
    }

    /// Writes `src` into a place.
    fn write_place(&mut self, p: Place, src: usize) {
        match p {
            Place::Direct(a) => {
                let dst = self.node(NodeKey::Loc(a));
                self.copies.push((dst, src));
            }
            Place::Indirect(pid) => {
                let dst = self.node(NodeKey::Expr(pid));
                self.stores.push((dst, src));
            }
            Place::Unknown => {}
        }
    }

    /// Generates constraints for an expression, returning its value node.
    fn value(&mut self, e: &Expr) -> usize {
        let n = self.expr_node(e);
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::Sizeof(_) => {}
            ExprKind::StrLit(_) => {
                if let Some(sid) = self.prog.str_id[e.id.0 as usize] {
                    let l = self.interner.loc(AbsLoc::Str(sid));
                    self.addr.push((n, l));
                }
            }
            ExprKind::Ident(_) => {
                // Arrays and structs decay to their own address.
                let ty = self.prog.ty(e).clone();
                match (self.ident_loc(e), ty) {
                    (Some(l), Type::Array(..) | Type::Struct(_)) => {
                        let li = self.interner.loc(l);
                        self.addr.push((n, li));
                    }
                    (Some(l), _) => {
                        let src = self.node(NodeKey::Loc(l));
                        self.copies.push((n, src));
                    }
                    (None, _) => {}
                }
            }
            ExprKind::Unary { expr, .. } => {
                let s = self.value(expr);
                self.copies.push((n, s));
            }
            ExprKind::Deref(_) | ExprKind::Index { .. } | ExprKind::Field { .. } => {
                // As a value: read through the place. Arrays decay.
                let ty = self.prog.ty(e).clone();
                let p = self.place(e);
                if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    // The "value" is the address of the sub-object; with
                    // field/element insensitivity that is the same
                    // abstract object.
                    match p {
                        Place::Direct(a) => {
                            let li = self.interner.loc(a);
                            self.addr.push((n, li));
                        }
                        Place::Indirect(pid) => {
                            let src = self.node(NodeKey::Expr(pid));
                            self.copies.push((n, src));
                        }
                        Place::Unknown => {}
                    }
                } else {
                    self.read_place(p, n);
                }
            }
            ExprKind::AddrOf(inner) => {
                let p = self.place(inner);
                match p {
                    Place::Direct(a) => {
                        let li = self.interner.loc(a);
                        self.addr.push((n, li));
                    }
                    Place::Indirect(pid) => {
                        // &*p == p, &p[i] == p + i.
                        let src = self.node(NodeKey::Expr(pid));
                        self.copies.push((n, src));
                    }
                    Place::Unknown => {}
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                // Pointer arithmetic flows pointers through.
                let a = self.value(lhs);
                let b = self.value(rhs);
                self.copies.push((n, a));
                self.copies.push((n, b));
            }
            ExprKind::Logical { lhs, rhs, .. } => {
                self.value(lhs);
                self.value(rhs);
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                self.value(cond);
                let a = self.value(then_e);
                let b = self.value(else_e);
                self.copies.push((n, a));
                self.copies.push((n, b));
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                let r = self.value(rhs);
                let p = self.place(lhs);
                self.write_place(p, r);
                self.copies.push((n, r));
            }
            ExprKind::IncDec { expr, .. } => {
                // p++ keeps pointing into the same objects.
                let p = self.place(expr);
                self.read_place(p, n);
            }
            ExprKind::Call { args, .. } => {
                let arg_nodes: Vec<usize> = args.iter().map(|a| self.value(a)).collect();
                match self.prog.callee[e.id.0 as usize] {
                    Some(Callee::Func(f)) => {
                        for (i, an) in arg_nodes.iter().enumerate() {
                            let pn = self.node(NodeKey::Loc(AbsLoc::Frame(f, i as u32)));
                            self.copies.push((pn, *an));
                        }
                        let rn = self.node(NodeKey::Ret(f));
                        self.copies.push((n, rn));
                    }
                    Some(Callee::Builtin(Builtin::Malloc)) => {
                        let l = self.interner.loc(AbsLoc::Heap(e.id));
                        self.addr.push((n, l));
                    }
                    Some(Callee::Builtin(Builtin::Sys(Sys::Read | Sys::Select)))
                    | Some(Callee::Builtin(_))
                    | None => {}
                }
            }
            ExprKind::Cast { expr, .. } => {
                let s = self.value(expr);
                self.copies.push((n, s));
            }
        }
        n
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    let r = self.value(e);
                    if let Some(slot) = &self.prog.decl_slot[s.id.0 as usize] {
                        let loc = AbsLoc::Frame(self.cur_func, slot.offset as u32);
                        let dst = self.node(NodeKey::Loc(loc));
                        self.copies.push((dst, r));
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.value(e);
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
                ..
            } => {
                self.value(cond);
                self.block(then_b);
                if let Some(b) = else_b {
                    self.block(b);
                }
            }
            StmtKind::While { cond, body, .. } => {
                self.value(cond);
                self.block(body);
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.block(body);
                self.value(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.value(c);
                }
                if let Some(st) = step {
                    self.value(st);
                }
                self.block(body);
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                self.value(scrutinee);
                for c in cases {
                    for st in &c.body {
                        self.stmt(st);
                    }
                }
                if let Some(d) = default {
                    for st in d {
                        self.stmt(st);
                    }
                }
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    let r = self.value(e);
                    let rn = self.node(NodeKey::Ret(self.cur_func));
                    self.copies.push((rn, r));
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// Standard Andersen worklist solver.
    fn solve(mut self, analyzed_funcs: Vec<bool>) -> PointsTo {
        let n = self.interner.n_nodes();
        let mut pts: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut load_edges: Vec<Vec<usize>> = vec![Vec::new(); n]; // src -> dsts
        let mut store_edges: Vec<Vec<usize>> = vec![Vec::new(); n]; // dst -> srcs
        let mut worklist: Vec<usize> = Vec::new();

        for (node, loc) in &self.addr {
            if pts[*node].insert(*loc) {
                worklist.push(*node);
            }
        }
        for (dst, src) in &self.copies {
            succs[*src].push(*dst);
        }
        for (dst, src) in &self.loads {
            load_edges[*src].push(*dst);
        }
        for (dst, src) in &self.stores {
            store_edges[*dst].push(*src);
        }

        while let Some(node) = worklist.pop() {
            let node_pts: Vec<usize> = pts[node].iter().copied().collect();
            // Complex constraints: resolve loads/stores through this node.
            let mut new_copies: Vec<(usize, usize)> = Vec::new();
            for t in &node_pts {
                let loc_node = self.interner.node(NodeKey::Loc(self.interner.loc_key(*t)));
                // Growing the node table means growing the side tables.
                if loc_node >= pts.len() {
                    pts.resize_with(loc_node + 1, HashSet::new);
                    succs.resize_with(loc_node + 1, Vec::new);
                    load_edges.resize_with(loc_node + 1, Vec::new);
                    store_edges.resize_with(loc_node + 1, Vec::new);
                }
                for dst in &load_edges[node] {
                    new_copies.push((*dst, loc_node));
                }
                for src in &store_edges[node] {
                    new_copies.push((loc_node, *src));
                }
            }
            for (dst, src) in new_copies {
                if !succs[src].contains(&dst) {
                    succs[src].push(dst);
                    // Propagate immediately.
                    let add: Vec<usize> = pts[src].iter().copied().collect();
                    let mut grew = false;
                    for l in add {
                        grew |= pts[dst].insert(l);
                    }
                    if grew {
                        worklist.push(dst);
                    }
                }
            }
            // Simple copy propagation.
            let succ_list = succs[node].clone();
            for dst in succ_list {
                let add: Vec<usize> = pts[node].iter().copied().collect();
                let mut grew = false;
                for l in add {
                    grew |= pts[dst].insert(l);
                }
                if grew {
                    worklist.push(dst);
                }
            }
        }

        PointsTo {
            interner: self.interner,
            pts,
            analyzed_funcs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::check::check;
    use minic::parser::parse;

    fn pts_of(src: &str) -> (Program, PointsTo) {
        let prog = check(parse(src).unwrap()).unwrap();
        let pt = analyze(&prog, &[]);
        (prog, pt)
    }

    /// Finds the frame offset of a named local in a function.
    fn local(prog: &Program, func: &str, decl_index: usize) -> AbsLoc {
        let fid = prog.func_id(func).unwrap();
        let slots: Vec<_> = prog.decl_slot.iter().flatten().collect();
        AbsLoc::Frame(fid, slots[decl_index].offset as u32)
    }

    #[test]
    fn address_of_local() {
        let src = r#"
            int main() {
                int x;
                int *p = &x;
                return *p;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let p_loc = local(&prog, "main", 1);
        let x_loc = local(&prog, "main", 0);
        let set = pt.points_to(NodeKey::Loc(p_loc));
        assert_eq!(set, vec![x_loc]);
    }

    #[test]
    fn array_decay_points_to_array() {
        let src = r#"
            int main() {
                char buf[8];
                char *p = buf;
                return *p;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let buf = local(&prog, "main", 0);
        let p = local(&prog, "main", 1);
        assert_eq!(pt.points_to(NodeKey::Loc(p)), vec![buf]);
    }

    #[test]
    fn pointer_flows_through_call() {
        let src = r#"
            int g;
            int *id(int *q) { return q; }
            int main() {
                int *p = id(&g);
                return *p;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let p = local(&prog, "main", 0);
        assert_eq!(
            pt.points_to(NodeKey::Loc(p)),
            vec![AbsLoc::Global(minic::GlobalId(0))]
        );
    }

    #[test]
    fn store_through_pointer_aliases() {
        let src = r#"
            int a;
            int b;
            int main() {
                int *p;
                int **pp = &p;
                *pp = &a;
                int *q = p;
                return *q;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let q = local(&prog, "main", 2);
        assert_eq!(
            pt.points_to(NodeKey::Loc(q)),
            vec![AbsLoc::Global(minic::GlobalId(0))]
        );
    }

    #[test]
    fn malloc_sites_are_distinct() {
        let src = r#"
            int main() {
                int *a = (int*)malloc(2);
                int *b = (int*)malloc(2);
                return a == b;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let a = local(&prog, "main", 0);
        let b = local(&prog, "main", 1);
        let pa = pt.points_to(NodeKey::Loc(a));
        let pb = pt.points_to(NodeKey::Loc(b));
        assert_eq!(pa.len(), 1);
        assert_eq!(pb.len(), 1);
        assert_ne!(pa, pb);
    }

    #[test]
    fn argv_is_seeded() {
        let src = r#"
            int main(int argc, char **argv) {
                char *first = argv[0];
                return first[0];
            }
        "#;
        let (prog, pt) = pts_of(src);
        let first = local(&prog, "main", 0);
        assert_eq!(pt.points_to(NodeKey::Loc(first)), vec![AbsLoc::ArgvStr]);
    }

    #[test]
    fn ternary_merges_both_arms() {
        let src = r#"
            int a;
            int b;
            int main() {
                int c = 1;
                int *p = c ? &a : &b;
                return *p;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let p = local(&prog, "main", 1);
        let set = pt.points_to(NodeKey::Loc(p));
        assert_eq!(set.len(), 2, "both arms must be in the set: {set:?}");
    }

    #[test]
    fn imprecision_is_an_over_approximation() {
        // Flow-insensitivity: p points to both a and b even though the
        // program only ever reads it while it points to b.
        let src = r#"
            int a;
            int b;
            int main() {
                int *p = &a;
                p = &b;
                return *p;
            }
        "#;
        let (prog, pt) = pts_of(src);
        let p = local(&prog, "main", 0);
        assert_eq!(pt.points_to(NodeKey::Loc(p)).len(), 2);
    }

    #[test]
    fn struct_fields_collapse_to_the_object() {
        let src = r#"
            struct s { int *x; int *y; };
            int g;
            int main() {
                struct s st;
                st.x = &g;
                int *p = st.y;
                return p == 0;
            }
        "#;
        // Field-insensitive: reading .y sees what was stored into .x.
        let (prog, pt) = pts_of(src);
        let p = local(&prog, "main", 1);
        assert_eq!(
            pt.points_to(NodeKey::Loc(p)),
            vec![AbsLoc::Global(minic::GlobalId(0))]
        );
    }
}
