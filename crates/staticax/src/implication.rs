//! Branch-implication analysis: which branch outcomes are *implied* by
//! the outcome of an earlier, dominating branch.
//!
//! The instrumentation plans log one bit per instrumented branch
//! execution. Some of those bits carry no information: a re-test of an
//! unmodified variable (`if (p) ... if (p)`), or the structural negation
//! of a condition just evaluated (`if (x < n) ... if (x >= n)`), always
//! repeats (or inverts) the earlier outcome. This pass finds such pairs
//! so the plan can *suppress* the implied branch's log bit and replay can
//! reconstruct it from the implying branch's already-replayed outcome.
//!
//! An implication `b -> Implied { by: a, negated }` is emitted only when
//! it holds on **every** execution, not just the recorded one:
//!
//! 1. `a`'s condition node strictly dominates `b`'s in the function's
//!    CFG — whenever `b` executes, some execution of `a` preceded it;
//! 2. the two conditions are structurally equal up to negation
//!    (comparison operators are canonicalized, so `x < n` pairs with
//!    `n > x`, `x >= n`, `!(x < n)`, …);
//! 3. the conditions are pure: only integer literals, scalar variables
//!    and pure operators — no calls, loads through pointers, array or
//!    field accesses, assignments, or short-circuit operators;
//! 4. every variable read by the condition is a local (or parameter)
//!    declared exactly once in the function, shadowing no global, and
//!    never address-taken anywhere in the function — so no call or
//!    pointer store can modify it behind the analysis's back;
//! 5. no CFG node that may write one of those variables lies on any
//!    path from `a` to `b` that does not pass through `a` again (the
//!    value observed at `b` is the value the *most recent* execution of
//!    `a` observed).
//!
//! The invariant replay relies on: at every execution of `b`, the most
//! recent execution of `a` (which exists, by dominance) had outcome `o`,
//! and `b`'s outcome is exactly `o ^ negated` — in the recorded run *and
//! in every candidate run the search tries*, which is why reconstructing
//! the bit can never steer replay differently than the logged bit would
//! have.

use minic::ast::{walk_expr, Ast, Block, Expr, ExprKind, FuncDef, Stmt, StmtKind, UnOp};
use minic::cfg::{build_cfg, Cfg, NodeId, NodeKind};
use minic::BranchId;
use std::collections::{BTreeMap, BTreeSet};

/// One implication edge: the branch this entry is keyed under always
/// takes the same direction as `by`'s most recent execution (inverted
/// when `negated`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Implied {
    /// The dominating branch whose outcome determines this one.
    pub by: BranchId,
    /// Whether the implied outcome is the opposite direction.
    pub negated: bool,
}

/// Per-program implication table, indexed by [`BranchId`].
#[derive(Debug, Clone, Default)]
pub struct ImplicationMap {
    implied: Vec<Option<Implied>>,
}

impl ImplicationMap {
    /// An empty map over `n_branches` locations (nothing implied).
    pub fn empty(n_branches: usize) -> Self {
        ImplicationMap {
            implied: vec![None; n_branches],
        }
    }

    /// The implication for branch `b`, if one was found.
    pub fn get(&self, b: BranchId) -> Option<Implied> {
        self.implied.get(b.0 as usize).copied().flatten()
    }

    /// Number of branch locations with an implication.
    pub fn n_implied(&self) -> usize {
        self.implied.iter().filter(|i| i.is_some()).count()
    }

    /// All `(branch, implication)` pairs, in `BranchId` order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, Implied)> + '_ {
        self.implied
            .iter()
            .enumerate()
            .filter_map(|(i, imp)| imp.map(|imp| (BranchId(i as u32), imp)))
    }

    /// Total branch locations covered (implied or not).
    pub fn len(&self) -> usize {
        self.implied.len()
    }

    /// True when no location has an implication.
    pub fn is_empty(&self) -> bool {
        self.n_implied() == 0
    }
}

/// Runs the implication analysis over a whole program.
pub fn analyze(ast: &Ast) -> ImplicationMap {
    let mut map = ImplicationMap::empty(ast.n_branches());
    // A condition variable that resolves to a global (or names a
    // function) is off-limits: calls between the two branches could
    // rewrite it.
    let mut global_names: BTreeSet<&str> = ast.globals.iter().map(|g| g.name.as_str()).collect();
    global_names.extend(ast.funcs.iter().map(|f| f.name.as_str()));
    for f in &ast.funcs {
        analyze_func(f, &global_names, &mut map);
    }
    map
}

/// The set of variable names a statement's *header* expressions may
/// write. Nested bodies own their own CFG nodes, so only the
/// expressions evaluated *at* this node are charged here.
#[derive(Debug, Default, Clone)]
struct Writes {
    names: BTreeSet<String>,
    /// A store through a pointer, array element, or field — may alias
    /// anything, so it invalidates every implication crossing it.
    wild: bool,
}

impl Writes {
    fn hits(&self, vars: &BTreeSet<String>) -> bool {
        self.wild || vars.iter().any(|v| self.names.contains(v))
    }
}

fn expr_writes(e: &Expr, w: &mut Writes) {
    walk_expr(e, &mut |x| match &x.kind {
        ExprKind::Assign { lhs, .. } => match &lhs.kind {
            ExprKind::Ident(n) => {
                w.names.insert(n.clone());
            }
            _ => w.wild = true,
        },
        ExprKind::IncDec { expr, .. } => match &expr.kind {
            ExprKind::Ident(n) => {
                w.names.insert(n.clone());
            }
            _ => w.wild = true,
        },
        // Calls cannot write a never-address-taken local (the only
        // variables an implication is allowed to read).
        _ => {}
    });
}

fn header_writes(s: &Stmt) -> Writes {
    let mut w = Writes::default();
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                expr_writes(e, &mut w);
            }
            w.names.insert(name.clone());
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => expr_writes(e, &mut w),
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. } => expr_writes(cond, &mut w),
        StmtKind::For { cond, step, .. } => {
            // The condition node and the step node share this StmtId;
            // charging both expressions to both nodes is conservative.
            if let Some(c) = cond {
                expr_writes(c, &mut w);
            }
            if let Some(st) = step {
                expr_writes(st, &mut w);
            }
        }
        StmtKind::Switch { scrutinee, .. } => expr_writes(scrutinee, &mut w),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Block(_) => {}
    }
    w
}

/// Visits every statement of a block, recursing into all nested bodies
/// (including `for` initializers and `switch` arms).
fn visit_stmts<'a>(b: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &b.stmts {
        visit_stmt(s, f);
    }
}

fn visit_stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::If { then_b, else_b, .. } => {
            visit_stmts(then_b, f);
            if let Some(e) = else_b {
                visit_stmts(e, f);
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => visit_stmts(body, f),
        StmtKind::For { init, body, .. } => {
            if let Some(i) = init {
                visit_stmt(i, f);
            }
            visit_stmts(body, f);
        }
        StmtKind::Switch { cases, default, .. } => {
            for c in cases {
                for st in &c.body {
                    visit_stmt(st, f);
                }
            }
            if let Some(d) = default {
                for st in d {
                    visit_stmt(st, f);
                }
            }
        }
        StmtKind::Block(b) => visit_stmts(b, f),
        _ => {}
    }
}

/// A normalized condition: canonical structural key, overall negation
/// parity, and the variables it reads. `None` when the condition is not
/// pure (or uses constructs the canonicalizer does not model).
fn norm_cond(e: &Expr) -> Option<(String, bool, BTreeSet<String>)> {
    let mut idents = BTreeSet::new();
    let mut pure = true;
    walk_expr(e, &mut |x| match &x.kind {
        ExprKind::IntLit(_) => {}
        ExprKind::Ident(n) => {
            idents.insert(n.clone());
        }
        ExprKind::Unary { .. } | ExprKind::Binary { .. } => {}
        _ => pure = false,
    });
    if !pure {
        return None;
    }
    // Strip `!` chains: each one flips the branch outcome exactly
    // (mini-C comparisons and `!` produce 0/1).
    let mut core = e;
    let mut neg = false;
    while let ExprKind::Unary {
        op: UnOp::Not,
        expr,
    } = &core.kind
    {
        neg = !neg;
        core = expr;
    }
    // Canonicalize the comparison layer so `x < n`, `n > x`, `x >= n`
    // and `n <= x` all share a key (with the right parity).
    use minic::ast::BinOp::*;
    let (key, cmp_neg) = match &core.kind {
        ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
            let (l, r) = (ser(lhs), ser(rhs));
            match op {
                Eq | Ne => {
                    let (a, b) = if l <= r { (l, r) } else { (r, l) };
                    (format!("(eq {a} {b})"), *op == Ne)
                }
                Lt => (format!("(lt {l} {r})"), false),
                Gt => (format!("(lt {r} {l})"), false),
                Ge => (format!("(lt {l} {r})"), true),
                Le => (format!("(lt {r} {l})"), true),
                _ => unreachable!("is_comparison covers exactly these"),
            }
        }
        _ => (ser(core), false),
    };
    Some((key, neg ^ cmp_neg, idents))
}

/// Deterministic structural serialization of a pure condition subtree.
fn ser(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => format!("#{v}"),
        ExprKind::Ident(n) => format!("${n}"),
        ExprKind::Unary { op, expr } => format!("({op:?} {})", ser(expr)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({op:?} {} {})", ser(lhs), ser(rhs))
        }
        _ => unreachable!("purity was checked before serialization"),
    }
}

/// Forward reachability from `starts`, never entering `banned`.
fn reach_avoiding(cfg: &Cfg, starts: &[NodeId], banned: NodeId) -> Vec<bool> {
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack: Vec<NodeId> = starts.iter().copied().filter(|s| *s != banned).collect();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut seen[n.0 as usize], true) {
            continue;
        }
        for s in &cfg.nodes[n.0 as usize].succs {
            if *s != banned && !seen[s.0 as usize] {
                stack.push(*s);
            }
        }
    }
    seen
}

fn analyze_func(f: &FuncDef, global_names: &BTreeSet<&str>, map: &mut ImplicationMap) {
    // Statement-level conditions only: `&&`/`||`/`?:` live inside
    // expressions (no CFG condition node of their own) and a `case`
    // comparison's outcome is never a pure function of an earlier one.
    let mut conds: Vec<(BranchId, &Expr)> = Vec::new();
    let mut decl_counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut addr_taken: BTreeSet<&str> = BTreeSet::new();
    let mut stmt_writes: BTreeMap<u32, Writes> = BTreeMap::new();
    for p in &f.params {
        *decl_counts.entry(p.name.as_str()).or_insert(0) += 1;
    }
    visit_stmts(&f.body, &mut |s| {
        match &s.kind {
            StmtKind::If { branch, cond, .. }
            | StmtKind::While { branch, cond, .. }
            | StmtKind::DoWhile { branch, cond, .. } => conds.push((*branch, cond)),
            StmtKind::For {
                branch: Some(b),
                cond: Some(c),
                ..
            } => conds.push((*b, c)),
            StmtKind::Decl { name, .. } => {
                *decl_counts.entry(name.as_str()).or_insert(0) += 1;
            }
            _ => {}
        }
        stmt_writes.insert(s.id.0, header_writes(s));
        walk_stmt_header_exprs(s, &mut |e| {
            if let ExprKind::AddrOf(inner) = &e.kind {
                if let Some(n) = base_ident(inner) {
                    addr_taken.insert(n);
                }
            }
        });
    });
    if conds.len() < 2 {
        return;
    }

    let cfg = build_cfg(f);
    let dom = cfg.dominators();
    let empty = Writes::default();
    let node_writes: Vec<&Writes> = cfg
        .nodes
        .iter()
        .map(|n| match n.kind {
            NodeKind::Stmt(sid) | NodeKind::Cond(_, sid) => {
                stmt_writes.get(&sid.0).unwrap_or(&empty)
            }
            NodeKind::Entry | NodeKind::Exit => &empty,
        })
        .collect();

    // Resolve each statement condition to its CFG node and normal form.
    struct Cand {
        bid: BranchId,
        node: NodeId,
        key: String,
        neg: bool,
        vars: BTreeSet<String>,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (bid, cond) in conds {
        let Some(node) = cfg.cond_node(bid) else {
            continue;
        };
        let Some((key, neg, vars)) = norm_cond(cond) else {
            continue;
        };
        // Every variable read must be a unique, never-address-taken
        // local — the only identities a call or store cannot touch.
        let safe = vars.iter().all(|v| {
            decl_counts.get(v.as_str()) == Some(&1)
                && !global_names.contains(v.as_str())
                && !addr_taken.contains(v.as_str())
        });
        if safe {
            cands.push(Cand {
                bid,
                node,
                key,
                neg,
                vars,
            });
        }
    }
    cands.sort_by_key(|c| c.bid);

    for bi in 0..cands.len() {
        if map.get(cands[bi].bid).is_some() {
            continue;
        }
        // Among all valid impliers, the smallest BranchId wins: the
        // earliest equivalent branch, which roots chains directly.
        for ai in 0..cands.len() {
            if ai == bi {
                continue;
            }
            let (a, b) = (&cands[ai], &cands[bi]);
            if a.key != b.key || !dom.strictly_dominates(a.node, b.node) {
                continue;
            }
            // Rule 5: no interfering write on any a-avoiding path a→b.
            let fwd = reach_avoiding(&cfg, &cfg.nodes[a.node.0 as usize].succs, a.node);
            let bwd = {
                // Backward reachability from b in the graph minus a.
                let preds = cfg.preds();
                let mut seen = vec![false; cfg.nodes.len()];
                let mut stack = vec![b.node];
                while let Some(n) = stack.pop() {
                    if std::mem::replace(&mut seen[n.0 as usize], true) {
                        continue;
                    }
                    for p in &preds[n.0 as usize] {
                        if *p != a.node && !seen[p.0 as usize] {
                            stack.push(*p);
                        }
                    }
                }
                seen
            };
            let interfered =
                (0..cfg.nodes.len()).any(|w| fwd[w] && bwd[w] && node_writes[w].hits(&a.vars));
            if interfered {
                continue;
            }
            map.implied[b.bid.0 as usize] = Some(Implied {
                by: a.bid,
                negated: a.neg != b.neg,
            });
            break;
        }
    }
}

/// Walks only the expressions evaluated *at* this statement's own CFG
/// node(s) plus nothing nested — but for address-taken detection we must
/// see every expression in the function, so this recursion mirrors
/// `walk_stmt_exprs` over headers while `visit_stmt` supplies the
/// nesting.
fn walk_stmt_header_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. } => walk_expr(cond, f),
        StmtKind::For { cond, step, .. } => {
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(st) = step {
                walk_expr(st, f);
            }
        }
        StmtKind::Switch { scrutinee, .. } => walk_expr(scrutinee, f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Block(_) => {}
    }
}

/// The identifier at the bottom of an lvalue chain (`&x`, `&x[i]`,
/// `&x.f`, `&*p` all mark the chain's base).
fn base_ident(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Ident(n) => Some(n),
        ExprKind::Index { base, .. } | ExprKind::Field { base, .. } => base_ident(base),
        ExprKind::Deref(inner) | ExprKind::AddrOf(inner) => base_ident(inner),
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => base_ident(expr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn imap(src: &str) -> ImplicationMap {
        let ast = parse(src).unwrap();
        analyze(&ast)
    }

    #[test]
    fn retest_of_unmodified_local_is_implied() {
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                if (p) { sys_getuid(); }
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(
            m.get(BranchId(1)),
            Some(Implied {
                by: BranchId(0),
                negated: false
            })
        );
        assert_eq!(m.get(BranchId(0)), None, "the root is never implied");
    }

    #[test]
    fn negated_retest_is_implied_with_parity() {
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int x = argc;
                int n = 4;
                if (x < n) { sys_getuid(); }
                if (x >= n) { sys_time(); }
                if (!(x < n)) { sys_getuid(); }
                if (n > x) { sys_time(); }
                return 0;
            }
        "#,
        );
        let root = BranchId(0);
        assert_eq!(
            m.get(BranchId(1)),
            Some(Implied {
                by: root,
                negated: true
            })
        );
        assert_eq!(
            m.get(BranchId(2)),
            Some(Implied {
                by: root,
                negated: true
            })
        );
        assert_eq!(
            m.get(BranchId(3)),
            Some(Implied {
                by: root,
                negated: false
            })
        );
    }

    #[test]
    fn write_between_tests_blocks_the_implication() {
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                if (p) { sys_getuid(); }
                p = p - 1;
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)), None);
    }

    #[test]
    fn write_on_one_arm_blocks_the_implication() {
        // The write sits inside the first branch's then-arm: some paths
        // to the re-test carry it, so the implication must not fire.
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                if (p) { p = 0; }
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)), None);
    }

    #[test]
    fn loop_body_write_blocks_but_loop_exit_retest_holds() {
        // `while (p) { p = p - 1; } if (p)`: at the `if`, the most
        // recent `while` evaluation was the exit check on the *final*
        // value — but the body write can sit between two evaluations of
        // the `while` itself, so only the `if` (which always runs after
        // the final, write-free exit check) is implied.
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                while (p) { p = p - 1; }
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(
            m.get(BranchId(1)),
            Some(Implied {
                by: BranchId(0),
                negated: false
            })
        );
    }

    #[test]
    fn address_taken_variable_is_never_implied() {
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                int *q = &p;
                if (p) { *q = 0; }
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)), None);
    }

    #[test]
    fn global_variable_is_never_implied() {
        let m = imap(
            r#"
            int g = 1;
            int poke() { g = 0; return 0; }
            int main(int argc, char **argv) {
                if (g) { poke(); }
                if (g) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)), None);
    }

    #[test]
    fn impure_conditions_are_skipped() {
        let m = imap(
            r#"
            int f(int x) { return x; }
            int main(int argc, char **argv) {
                if (f(argc)) { sys_getuid(); }
                if (f(argc)) { sys_time(); }
                if (argv[0]) { sys_getuid(); }
                if (argv[0]) { sys_time(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.n_implied(), 0);
    }

    #[test]
    fn non_dominating_same_condition_is_not_implied() {
        // Both `if (p)` tests live on sibling arms: neither dominates
        // the other, so no implication either way.
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                int q = argc + 1;
                if (q) { if (p) { sys_getuid(); } } else { if (p) { sys_time(); } }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)), None);
        assert_eq!(m.get(BranchId(2)), None);
    }

    #[test]
    fn chain_roots_at_the_earliest_branch() {
        let m = imap(
            r#"
            int main(int argc, char **argv) {
                int p = argc;
                if (p) { sys_getuid(); }
                if (p) { sys_time(); }
                if (p) { sys_getuid(); }
                return 0;
            }
        "#,
        );
        assert_eq!(m.get(BranchId(1)).unwrap().by, BranchId(0));
        assert_eq!(m.get(BranchId(2)).unwrap().by, BranchId(0));
        assert_eq!(m.n_implied(), 2);
    }

    #[test]
    fn same_name_in_other_function_does_not_confuse() {
        let m = imap(
            r#"
            int helper(int p) {
                if (p) { return 1; }
                return 0;
            }
            int main(int argc, char **argv) {
                int p = argc;
                if (p) { helper(p); }
                if (p) { sys_time(); }
                return 0;
            }
        "#,
        );
        // helper's `if (p)` (b0) is in another function; main's re-test
        // (b2) is implied by main's first test (b1) only.
        assert_eq!(m.get(BranchId(0)), None);
        assert_eq!(
            m.get(BranchId(2)),
            Some(Implied {
                by: BranchId(1),
                negated: false
            })
        );
    }
}
