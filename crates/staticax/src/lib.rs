//! `staticax` — whole-program static analysis (paper §2.2).
//!
//! Replaces the paper's CIL-based dataflow + points-to pipeline:
//! an Andersen-style inclusion-based points-to analysis feeds an
//! interprocedural taint fixed point that identifies every branch whose
//! condition *may* depend on program input (argv, `read` data, `select`
//! results, clock, PRNG). The result over-approximates the true symbolic
//! set — the intended bias: the static method trades instrumentation
//! overhead for guaranteed-complete symbolic-branch coverage.

pub mod absloc;
pub mod analysis;
pub mod implication;
pub mod literals;
pub mod pointsto;
pub mod taint;

pub use absloc::{AbsLoc, Interner, NodeKey};
pub use analysis::{analyze, analyze_program, StaticConfig, StaticResult};
pub use implication::{ImplicationMap, Implied};
pub use literals::{literal_clusters, LiteralCluster};
pub use pointsto::PointsTo;
pub use taint::TaintResult;
