//! String-literal cluster extraction, feeding the multi-byte forcing
//! escalation rule.
//!
//! The adaptive loop's second named rule (see `instrument::escalate`)
//! needs to know, per branch-location cluster, which string literals the
//! program compares input against: when replay reports a repair burst at
//! a `strcmp`/scan-loop cluster, the next plan generation forces the
//! whole literal as one priority set instead of letting the search
//! re-derive it byte by byte.
//!
//! The scan is purely syntactic: every call that passes a string literal
//! of length ≥ 2 to a *defined* function (the scan loop must be visible
//! for its branches to cluster) contributes that literal to the callee's
//! cluster, whose branch set is simply every branch location inside the
//! callee. Library string routines (`strcmp`, `strncmp`, hand-rolled
//! scanners) all fit this shape; a false positive only ever costs a few
//! UNSAT priority solves at replay time, never deployment overhead.

use minic::ast::{walk_block_exprs, ExprKind};
use minic::CompiledProgram;

/// One callee's literal cluster: the branch locations of its body and
/// the string literals call sites pass into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteralCluster {
    /// The function whose body contains the comparison branches.
    pub callee: String,
    /// Branch locations inside `callee`, ascending.
    pub branches: Vec<u32>,
    /// Distinct literals (length ≥ 2) passed to `callee`, in first-seen
    /// order.
    pub literals: Vec<Vec<u8>>,
}

/// Scans the whole program for calls passing string literals into
/// defined functions; one cluster per such callee with at least one
/// branch location. Deterministic: callees appear in definition order.
pub fn literal_clusters(cp: &CompiledProgram) -> Vec<LiteralCluster> {
    let ast = &cp.prog.ast;
    // Collect (callee → literals) over every function body.
    let mut found: Vec<(String, Vec<Vec<u8>>)> = Vec::new();
    for func in &ast.funcs {
        walk_block_exprs(&func.body, &mut |e| {
            let ExprKind::Call { callee, args } = &e.kind else {
                return;
            };
            if ast.func(callee).is_none() {
                return;
            }
            for a in args {
                let ExprKind::StrLit(bytes) = &a.kind else {
                    continue;
                };
                if bytes.len() < 2 {
                    continue;
                }
                let slot = match found.iter_mut().find(|(c, _)| c == callee) {
                    Some(s) => s,
                    None => {
                        found.push((callee.clone(), Vec::new()));
                        found.last_mut().expect("just pushed")
                    }
                };
                if !slot.1.contains(bytes) {
                    slot.1.push(bytes.clone());
                }
            }
        });
    }
    // Order clusters by callee definition order and attach branch sets.
    let mut clusters = Vec::new();
    for func in &ast.funcs {
        let Some((_, literals)) = found.iter().find(|(c, _)| *c == func.name) else {
            continue;
        };
        let branches: Vec<u32> = ast
            .branches
            .iter()
            .filter(|b| b.func == func.name)
            .map(|b| b.id.0)
            .collect();
        if branches.is_empty() {
            continue;
        }
        clusters.push(LiteralCluster {
            callee: func.name.clone(),
            branches,
            literals: literals.clone(),
        });
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledProgram {
        let ast = minic::parse(src).expect("parses");
        let prog = minic::check(ast).expect("checks");
        minic::bytecode::compile(prog).expect("compiles")
    }

    #[test]
    fn strcmp_style_call_clusters_the_callee_branches() {
        let cp = compile(
            r#"
            int eq(char *a, char *b) {
                int i;
                for (i = 0; a[i] != 0 && b[i] != 0; i = i + 1) {
                    if (a[i] != b[i]) { return 0; }
                }
                return a[i] == b[i];
            }
            int main(int argc, char **argv) {
                if (argc > 1 && eq(argv[1], "GET /")) { return 1; }
                return 0;
            }
            "#,
        );
        let clusters = literal_clusters(&cp);
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.callee, "eq");
        assert_eq!(c.literals, vec![b"GET /".to_vec()]);
        // eq's for-loop guard and body-if both cluster; main's branches
        // do not.
        assert!(!c.branches.is_empty());
        for b in &c.branches {
            assert_eq!(cp.branch(minic::BranchId(*b)).func, "eq");
        }
    }

    #[test]
    fn short_literals_and_branchless_callees_are_skipped() {
        let cp = compile(
            r#"
            int id(char *s) { return s[0]; }
            int pick(char *s) { if (s[0] > 32) { return 1; } return 0; }
            int main(int argc, char **argv) {
                int n;
                n = id("ab");
                n = n + pick("x");
                return n;
            }
            "#,
        );
        // `id` receives "ab" (long enough) but has no branches; `pick`
        // has a branch but only ever receives the too-short "x".
        assert!(literal_clusters(&cp).is_empty());
    }
}
