//! The public static-analysis entry point.
//!
//! Combines points-to and taint into one call, producing the set of
//! branch locations the *static* instrumentation method logs (§2.2 +
//! §2.3 of the paper).

use crate::implication::{self, ImplicationMap};
use crate::pointsto::{self, PointsTo};
use crate::taint::{self, TaintResult};
use minic::check::Program;
use minic::{BranchId, CompiledProgram, UnitId};

/// Configuration of a static-analysis run.
#[derive(Debug, Clone, Default)]
pub struct StaticConfig {
    /// Units to treat as an opaque library: their bodies are not
    /// analyzed and *all* their branches are labeled symbolic — the
    /// paper's uServer setup, where merging uClibc into the points-to
    /// analysis did not scale (§5.3, footnote 2).
    pub exclude_units: Vec<UnitId>,
}

/// The static analysis verdict for a whole program.
#[derive(Debug)]
pub struct StaticResult {
    /// Underlying points-to relation (for inspection/tests).
    pub points_to: PointsTo,
    /// Underlying taint result. The per-branch symbolic labels live
    /// here — [`StaticResult::symbolic`] borrows them, so the two views
    /// cannot disagree.
    pub taint: TaintResult,
    /// Branch-implication table: which branch outcomes are determined
    /// by an earlier, dominating branch (log-bit suppression input).
    pub implications: ImplicationMap,
}

impl StaticResult {
    /// Per branch location: does the static analysis label it symbolic?
    /// A view into the taint result — the single source of the labels.
    pub fn symbolic(&self) -> &[bool] {
        &self.taint.symbolic_branches
    }

    /// Branch ids labeled symbolic.
    pub fn symbolic_branches(&self) -> Vec<BranchId> {
        self.symbolic()
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(i, _)| BranchId(i as u32))
            .collect()
    }

    /// Number of branches labeled symbolic.
    pub fn n_symbolic(&self) -> usize {
        let n = self.taint.n_symbolic();
        debug_assert_eq!(
            n,
            self.symbolic().iter().filter(|s| **s).count(),
            "the count and the labels come from the same taint result"
        );
        n
    }
}

/// Runs the full static analysis on a checked program.
pub fn analyze_program(prog: &Program, cfg: &StaticConfig) -> StaticResult {
    let points_to = pointsto::analyze(prog, &cfg.exclude_units);
    let taint = taint::analyze(prog, &points_to, &cfg.exclude_units);
    let implications = implication::analyze(&prog.ast);
    StaticResult {
        points_to,
        taint,
        implications,
    }
}

/// Convenience wrapper over a compiled program.
pub fn analyze(cp: &CompiledProgram, cfg: &StaticConfig) -> StaticResult {
    analyze_program(&cp.prog, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::build;

    #[test]
    fn end_to_end_on_compiled_program() {
        let src = r#"
            int main(int argc, char **argv) {
                if (argv[1][0] == 'x') { return 1; }
                if (2 > 1) { return 2; }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let r = analyze(&cp, &StaticConfig::default());
        assert_eq!(r.symbolic(), &[true, false]);
        assert_eq!(r.symbolic_branches(), vec![minic::BranchId(0)]);
    }

    #[test]
    fn symbolic_views_agree_by_construction() {
        let src = r#"
            int main(int argc, char **argv) {
                if (argv[1][0]) { return 1; }
                if (argc > 1) { return 2; }
                if (3 > 2) { return 3; }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let r = analyze(&cp, &StaticConfig::default());
        assert_eq!(r.symbolic(), r.taint.symbolic_branches.as_slice());
        assert_eq!(r.n_symbolic(), r.symbolic().iter().filter(|s| **s).count());
        assert_eq!(r.n_symbolic(), r.symbolic_branches().len());
    }

    #[test]
    fn excluding_a_unit_marks_its_branches() {
        let lib = "int lib_abs(int x) { if (x < 0) { return -x; } return x; }";
        let app = r#"
            int main() {
                if (lib_abs(5) == 5) { return 1; }
                return 0;
            }
        "#;
        let cp = build(&[("libc", lib), ("app", app)]).unwrap();
        let cfg = StaticConfig {
            exclude_units: vec![minic::UnitId(0)],
        };
        let r = analyze(&cp, &cfg);
        assert!(r.symbolic()[0], "library branch forced symbolic");
    }
}
