//! The replay host: log-guided symbolic execution (§3.1).
//!
//! A concolic host (like the analysis engine's) that additionally follows
//! the shipped branch log. At every executed branch the four cases of
//! §3.1 apply:
//!
//! 1. **symbolic, not instrumented** — record the constraint, keep going
//!    (the engine may later negate it: pending set);
//! 2. **symbolic, instrumented** — compare against the next log bit; on
//!    mismatch, abort the run and queue the prefix plus the constraint
//!    *forcing the recorded direction*;
//! 3. **concrete, instrumented** — compare; mismatch aborts (an earlier
//!    uninstrumented symbolic branch went the wrong way);
//! 4. **concrete, not instrumented** — proceed, log untouched.
//!
//! "The next log bit" depends on the report's [`TraceLog`] format: the
//! flat bitvector advances one global position; the per-location format
//! advances the executing branch location's own cursor, so a trip-count
//! error at an unlogged loop surfaces as a *local* mismatch at the first
//! affected location instead of hundreds of coincidentally-agreeing bits
//! downstream.

use crate::env::{ReplayEnv, SyscallDivergence};
use concolic::{
    concretization_step, map_binop, map_unop, Concretization, InputVars, PathStep, PtrComponent,
    StepOrigin, SymV,
};
use instrument::{CursorTable, Plan, TraceLog};
use minic::ast::{BinOp, UnOp};
use minic::cost::Meter;
use minic::memory::Memory;
use minic::types::Sys;
use minic::vm::{CrashKind, Host, HostStop, PtrRegion};
use minic::{BranchId, Loc};
use solver::{ExprArena, ExprRef, Lit, Op, VarId, VarInfo};
use std::collections::BTreeSet;

/// Host abort reason marking successful arrival at the crash site.
pub const REACHED_CRASH_SITE: &str = "__reached_crash_site__";

/// Host abort reason for branch-direction divergence (cases 2b/3b).
pub const BRANCH_DIVERGENCE: &str = "branch direction diverges from log";

/// Host abort reason for syscall-order divergence.
pub const SYSCALL_DIVERGENCE: &str = "syscall order diverges from log";

/// Host abort reason for a per-location stream overrun: an instrumented
/// branch executed more times than its recorded stream holds while other
/// locations still have unconsumed bits. The recorded run executed that
/// location exactly stream-length times in its *entire* execution, so a
/// candidate that overruns is structurally wrong — usually an unlogged
/// loop exit taken the wrong way. Only the per-location format can see
/// this; the flat format must read exhaustion as "recording stopped".
pub const CURSOR_OVERRUN: &str = "per-location stream overrun";

/// Host abort reason for a violated branch implication: a suppressed
/// branch executed before the branch that implies it. The static pass
/// proves strict dominance, so on a sound analysis this cannot happen;
/// like [`CURSOR_OVERRUN`] it is surfaced as its own abort string so a
/// soundness bug is never misread as an ordinary log divergence.
pub const IMPLICATION_VIOLATION: &str = "branch implication violated";

/// Host abort reason for a syscall-anchored checkpoint divergence: at a
/// logged syscall boundary some location's cursor position differs from
/// the snapshot the recording run took at the same boundary. The
/// candidate is structurally off the recorded path *right here* — the
/// escalated report pins where every cursor stood between divergences,
/// so replay resynchronizes locally instead of deriving the mistake
/// byte by byte downstream. Only escalated plans
/// ([`instrument::Plan::checkpoints`]) ship the snapshots.
pub const CHECKPOINT_DIVERGENCE: &str = "cursor checkpoint diverges at syscall boundary";

/// Per-run statistics of a replay attempt.
#[derive(Debug, Clone, Default)]
pub struct ReplayRunStats {
    /// Log bits consumed.
    pub bits_consumed: u64,
    /// Symbolic branch executions that were instrumented.
    pub sym_logged_execs: u64,
    /// Symbolic branch executions that were not instrumented (each one
    /// is a potential fork point for the search).
    pub sym_unlogged_execs: u64,
    /// Concrete instrumented executions (consume bits, catch divergence).
    pub concrete_logged_execs: u64,
    /// Whether the run ended in a 2(b) forced-direction abort.
    pub forced_abort: bool,
    /// The branch the run diverged at, with whether its condition was
    /// symbolic (`true` = case 2(b), `false` = case 3(b)).
    pub divergent_branch: Option<(u32, bool)>,
    /// Under the per-location format: the (location, bit index) that
    /// diverged — the mismatching bit on a 2(b)/3(b), or one past the
    /// recorded stream on an overrun. `None` under flat (or no
    /// divergence). This keys the forced-set repair per location.
    pub divergent_cursor: Option<(u32, u64)>,
    /// Whether the run aborted on a per-location stream overrun.
    pub cursor_overrun: bool,
    /// Concretizations emitted as offset-generalizing ranges this run.
    pub concretization_ranges: u64,
    /// Concretizations pinned at emission this run.
    pub concretization_pins: u64,
    /// Suppressed-branch executions whose recorded bit was reconstructed
    /// from the implying branch's outcome instead of the shipped log
    /// (deployment paid nothing for these).
    pub reconstructed_bits: u64,
    /// Whether the run aborted on [`IMPLICATION_VIOLATION`].
    pub implication_violation: bool,
    /// Whether the run aborted on [`CHECKPOINT_DIVERGENCE`].
    pub checkpoint_divergence: bool,
    /// Branch locations whose shipped log bits this run consumed — the
    /// escalation loop drops instrumented locations no run ever reads.
    pub consulted: BTreeSet<u32>,
}

/// The replay host.
pub struct ReplayHost {
    /// Expression arena (session-wide).
    pub arena: ExprArena,
    /// The developer-site environment.
    pub env: ReplayEnv,
    /// The instrumentation plan (retained by the developer).
    pub plan: Plan,
    /// The shipped branch log (flat or per-location).
    pub trace: TraceLog,
    /// Consumption positions: one flat position, or one cursor per
    /// branch location.
    pub cursors: CursorTable,
    /// Input variable tables.
    pub vars: InputVars,
    /// Path condition of this run.
    pub path: Vec<PathStep>,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Run statistics.
    pub stats: ReplayRunStats,
    /// How symbolic address components are concretized.
    pub concretization: Concretization,
    /// The crash site to reach.
    pub crash_loc: Loc,
    /// Most recent outcome of every executed branch location this run —
    /// the source the implication reconstruction reads from when a
    /// suppressed branch executes.
    pub last_taken: Vec<Option<bool>>,
    /// Syscall-anchored cursor snapshots from the report (empty unless
    /// the plan's checkpoint escalation rule was active). `checkpoints
    /// [k]` is every location's recorded stream length right after the
    /// `k`-th logged syscall; set by the engine after construction.
    pub checkpoints: Vec<Vec<(u32, u64)>>,
    /// Logged syscalls executed so far this run (indexes `checkpoints`).
    pub logged_syscalls: usize,
}

impl ReplayHost {
    /// Creates a replay host for one run.
    pub fn new(
        arena: ExprArena,
        env: ReplayEnv,
        plan: Plan,
        mut trace: TraceLog,
        vars: InputVars,
        crash_loc: Loc,
    ) -> Self {
        // The report may have been deserialized from external JSON; the
        // cursor lookups rely on the sorted-unique stream invariant.
        trace.normalize();
        let last_taken = vec![None; plan.instrumented.len()];
        ReplayHost {
            arena,
            env,
            plan,
            trace,
            cursors: CursorTable::new(),
            vars,
            path: Vec::new(),
            stdout: Vec::new(),
            stats: ReplayRunStats::default(),
            concretization: Concretization::default(),
            crash_loc,
            last_taken,
            checkpoints: Vec::new(),
            logged_syscalls: 0,
        }
    }

    fn lift(&mut self, v: i64, s: &SymV) -> ExprRef {
        match s {
            Some(e) => *e,
            None => self.arena.constant(v),
        }
    }

    fn next_bit(&mut self, bid: BranchId) -> Option<bool> {
        let b = self.trace.next_bit(&mut self.cursors, bid.0)?;
        self.stats.bits_consumed += 1;
        self.stats.consulted.insert(bid.0);
        Some(b)
    }

    /// Records where a divergence happened: under the per-location
    /// format, the (location, cursor) of the offending bit index.
    /// `consumed` distinguishes a mismatch (the cursor advanced past
    /// the bit, so it sits at position − 1) from an overrun (nothing
    /// was consumed: the offending index IS the current position, one
    /// past the recorded stream) — without it the two stall identities
    /// would collide at the stream's final bit.
    fn note_divergence(&mut self, bid: BranchId, symbolic: bool, consumed: bool) {
        self.stats.divergent_branch = Some((bid.0, symbolic));
        if matches!(self.trace, TraceLog::Cursors(_)) {
            let pos = self.cursors.position(bid.0);
            let pos = if consumed { pos.saturating_sub(1) } else { pos };
            self.stats.divergent_cursor = Some((bid.0, pos));
        }
    }

    /// True once every shipped bit has been consumed.
    pub fn log_exhausted(&self) -> bool {
        self.trace.exhausted(&self.cursors)
    }

    /// True when a per-location stream just ran out while the rest of
    /// the log still holds bits — the overrun divergence signal. Always
    /// false under the flat format (one stream: its end IS the log's).
    fn overrun(&self) -> bool {
        matches!(self.trace, TraceLog::Cursors(_)) && !self.log_exhausted()
    }

    /// The solver variable backing model event `k` (allocated on first
    /// use; event order is stable across runs with a common prefix, which
    /// gives the variables cross-run identity).
    fn model_var(&mut self, k: usize, lo: i64, hi: i64) -> ExprRef {
        let idx = self.vars.n_controllable as usize + k;
        while self.arena.n_vars() <= idx {
            self.arena.fresh_var(VarInfo::range(lo, hi));
        }
        self.arena.var_expr(VarId(idx as u32))
    }

    fn divergence(&self) -> HostStop {
        HostStop::Abort(BRANCH_DIVERGENCE.to_string())
    }

    /// Verifies the next syscall-anchored cursor checkpoint (no-op when
    /// the report ships none). At the `k`-th logged syscall every
    /// location's cursor must sit exactly where the recording run's
    /// snapshot says it sat; any difference means the candidate is off
    /// the recorded path *at this boundary*, so the run aborts with a
    /// local stall identity instead of coincidentally-agreeing onward.
    fn check_checkpoint(&mut self) -> Result<(), HostStop> {
        if self.checkpoints.is_empty() {
            return Ok(());
        }
        let k = self.logged_syscalls;
        self.logged_syscalls += 1;
        let Some(snapshot) = self.checkpoints.get(k) else {
            // More logged syscalls than the recording run: recording
            // stopped at the crash, explore freely (mirrors the flat
            // log's end-of-log semantics).
            return Ok(());
        };
        for i in 0..snapshot.len() {
            let (loc, expected) = self.checkpoints[k][i];
            let got = self.cursors.position(loc);
            if got != expected {
                self.stats.checkpoint_divergence = true;
                // Stall identity: the first bit index the two runs
                // disagree about at this location.
                self.stats.divergent_cursor = Some((loc, expected.min(got)));
                self.stats.divergent_branch = Some((loc, false));
                return Err(HostStop::Abort(CHECKPOINT_DIVERGENCE.to_string()));
            }
        }
        Ok(())
    }
}

impl Host for ReplayHost {
    type V = SymV;

    fn shadow_binop(&mut self, op: BinOp, a: (i64, &SymV), b: (i64, &SymV), _out: i64) -> SymV {
        if a.1.is_none() && b.1.is_none() {
            return None;
        }
        let ea = self.lift(a.0, a.1);
        let eb = self.lift(b.0, b.1);
        Some(self.arena.bin(map_binop(op), ea, eb))
    }

    fn shadow_unop(&mut self, op: UnOp, a: (i64, &SymV), _out: i64) -> SymV {
        let e = (*a.1)?;
        Some(self.arena.un(map_unop(op), e))
    }

    fn shadow_mask_char(&mut self, a: (i64, &SymV), _out: i64) -> SymV {
        let e = (*a.1)?;
        Some(self.arena.mask_char(e))
    }

    fn shadow_bool(&mut self, a: (i64, &SymV), _out: i64) -> SymV {
        let e = (*a.1)?;
        Some(self.arena.boolify(e))
    }

    fn shadow_ptr_add(
        &mut self,
        ptr: (i64, &SymV),
        idx: (i64, &SymV),
        stride: u32,
        _out: i64,
        region: Option<PtrRegion>,
    ) -> SymV {
        for (component, (val, sh), other) in [
            (PtrComponent::Base, ptr, idx.0),
            (PtrComponent::Index, idx, ptr.0),
        ] {
            if let Some(e) = sh {
                let step = concretization_step(
                    &mut self.arena,
                    self.concretization,
                    *e,
                    val,
                    component,
                    stride,
                    other,
                    region,
                );
                if step.range.is_some() {
                    self.stats.concretization_ranges += 1;
                } else {
                    self.stats.concretization_pins += 1;
                }
                self.path.push(step);
            }
        }
        None
    }

    fn shadow_ptr_diff(
        &mut self,
        a: (i64, &SymV),
        b: (i64, &SymV),
        stride: u32,
        _out: i64,
    ) -> SymV {
        if a.1.is_none() && b.1.is_none() {
            return None;
        }
        let ea = self.lift(a.0, a.1);
        let eb = self.lift(b.0, b.1);
        let diff = self.arena.bin(Op::Sub, ea, eb);
        let s = self.arena.constant(stride.max(1) as i64);
        Some(self.arena.bin(Op::Div, diff, s))
    }

    fn on_branch(
        &mut self,
        bid: BranchId,
        cond: (i64, &SymV),
        taken: bool,
        _loc: Loc,
    ) -> Result<u64, HostStop> {
        // Every executed branch records its outcome: a later suppressed
        // branch may reconstruct from it (chains stay sound because a
        // suppressed implier got ITS outcome reconstructed first).
        let idx = bid.0 as usize;
        if idx >= self.last_taken.len() {
            self.last_taken.resize(idx + 1, None);
        }
        self.last_taken[idx] = Some(taken);

        // Suppressed branch: deployment paid no log bit here, so no bit
        // is consumed — the recorded outcome is reconstructed from the
        // implying branch's most recent execution instead.
        if let Some(sup) = self.plan.suppresses(bid) {
            let by_taken = match self.last_taken.get(sup.by.0 as usize).copied().flatten() {
                Some(t) => t,
                None => {
                    self.stats.implication_violation = true;
                    return Err(HostStop::Abort(IMPLICATION_VIOLATION.to_string()));
                }
            };
            let implied = by_taken ^ sup.negated;
            self.stats.reconstructed_bits += 1;
            if taken == implied {
                // Agreement (the only outcome a sound implication can
                // produce, since it holds on EVERY execution). A
                // symbolic condition still joins the path condition so
                // candidate inputs keep satisfying it.
                if let Some(e) = cond.1 {
                    self.path.push(PathStep {
                        lit: Lit {
                            expr: *e,
                            positive: taken,
                        },
                        range: None,
                        origin: StepOrigin::Branch(bid),
                        taken,
                    });
                }
                return Ok(0);
            }
            // Defensive mismatch handling, mirroring cases 2(b)/3(b).
            // There is no recorded stream for this location, so
            // `divergent_cursor` stays `None` — the per-location repair
            // machinery has nothing to key on here.
            self.stats.divergent_branch = Some((bid.0, cond.1.is_some()));
            if let Some(e) = cond.1 {
                self.path.push(PathStep {
                    lit: Lit {
                        expr: *e,
                        positive: implied,
                    },
                    range: None,
                    origin: StepOrigin::Branch(bid),
                    taken: implied,
                });
                self.stats.forced_abort = true;
            }
            return Err(self.divergence());
        }

        let symbolic = cond.1.is_some();
        let instrumented = self.plan.covers(bid);
        match (symbolic, instrumented) {
            // Case 1: symbolic, not instrumented.
            (true, false) => {
                self.stats.sym_unlogged_execs += 1;
                let e = cond.1.expect("symbolic condition has a shadow");
                self.path.push(PathStep {
                    lit: Lit {
                        expr: e,
                        positive: taken,
                    },
                    range: None,
                    origin: StepOrigin::Branch(bid),
                    taken,
                });
                Ok(0)
            }
            // Case 2: symbolic, instrumented.
            (true, true) => {
                self.stats.sym_logged_execs += 1;
                let e = *cond.1.as_ref().expect("symbolic condition has a shadow");
                match self.next_bit(bid) {
                    // This location's bits ran out. Whole log exhausted
                    // (recording stopped at the crash): explore freely.
                    // One stream overrun while others still hold bits:
                    // the candidate executes this location more often
                    // than the recorded run ever did — abort, and let
                    // the engine flip the most recent unlogged decision
                    // (usually the loop exit that overshot).
                    None => {
                        if self.overrun() {
                            self.stats.cursor_overrun = true;
                            self.note_divergence(bid, true, false);
                            return Err(HostStop::Abort(CURSOR_OVERRUN.to_string()));
                        }
                        self.path.push(PathStep {
                            lit: Lit {
                                expr: e,
                                positive: taken,
                            },
                            range: None,
                            origin: StepOrigin::Branch(bid),
                            taken,
                        });
                        Ok(0)
                    }
                    Some(recorded) if recorded == taken => {
                        // Case 2(a): agreement.
                        self.path.push(PathStep {
                            lit: Lit {
                                expr: e,
                                positive: taken,
                            },
                            range: None,
                            origin: StepOrigin::Branch(bid),
                            taken,
                        });
                        Ok(0)
                    }
                    Some(recorded) => {
                        // Case 2(b): mismatch — append the constraint
                        // forcing the *recorded* direction and abort; the
                        // engine queues this path as a pending set.
                        self.path.push(PathStep {
                            lit: Lit {
                                expr: e,
                                positive: recorded,
                            },
                            range: None,
                            origin: StepOrigin::Branch(bid),
                            taken: recorded,
                        });
                        self.stats.forced_abort = true;
                        self.note_divergence(bid, true, true);
                        Err(self.divergence())
                    }
                }
            }
            // Case 3: concrete, instrumented.
            (false, true) => {
                self.stats.concrete_logged_execs += 1;
                match self.next_bit(bid) {
                    None => {
                        if self.overrun() {
                            self.stats.cursor_overrun = true;
                            self.note_divergence(bid, false, false);
                            return Err(HostStop::Abort(CURSOR_OVERRUN.to_string()));
                        }
                        Ok(0)
                    }
                    Some(recorded) if recorded == taken => Ok(0),
                    Some(_) => {
                        // Case 3(b): an earlier uninstrumented symbolic
                        // branch went the wrong way — abort, backtrack.
                        self.note_divergence(bid, false, true);
                        Err(self.divergence())
                    }
                }
            }
            // Case 4: concrete, not instrumented.
            (false, false) => Ok(0),
        }
    }

    fn on_watch_loc(&mut self, _loc: Loc) -> Result<(), HostStop> {
        // Reaching the crash site with the whole branch log AND syscall
        // log consumed is the success criterion for externally crashed
        // executions (the crash happened after the last logged event).
        if self.log_exhausted() && self.env.log_exhausted() {
            Err(HostStop::Abort(REACHED_CRASH_SITE.to_string()))
        } else {
            Ok(())
        }
    }

    fn syscall(
        &mut self,
        sys: Sys,
        args: &[(i64, SymV)],
        mem: &mut Memory<SymV>,
        _meter: &mut Meter,
    ) -> Result<(i64, SymV), HostStop> {
        let a = |i: usize| args.get(i).map(|x| x.0).unwrap_or(0);
        let div = |_e: SyscallDivergence| HostStop::Abort(SYSCALL_DIVERGENCE.to_string());
        let mem_fault = |f: minic::memory::MemFault| HostStop::Crash(CrashKind::Mem(f));
        match sys {
            Sys::Read => {
                let r = self.env.read(a(0), a(2)).map_err(div)?;
                self.check_checkpoint()?;
                if let Some((kind, start)) = &r.stream {
                    for (i, b) in r.bytes.iter().enumerate() {
                        let shadow: SymV = self
                            .vars
                            .var_for(kind, start + i)
                            .map(|vid| self.arena.var_expr(vid));
                        mem.store(a(1).wrapping_add(i as i64), *b as i64, shadow)
                            .map_err(mem_fault)?;
                    }
                }
                let ret_shadow: SymV = r.model_event.map(|(k, lo, hi)| self.model_var(k, lo, hi));
                Ok((r.ret, ret_shadow))
            }
            Sys::Select => {
                let n = a(1).clamp(0, 64) as usize;
                let mut fds = Vec::with_capacity(n);
                for i in 0..n {
                    let (v, _) = mem.load(a(0).wrapping_add(i as i64)).map_err(mem_fault)?;
                    fds.push(v);
                }
                let r = self.env.select(&fds).map_err(div)?;
                self.check_checkpoint()?;
                for (i, flag) in r.flags.iter().enumerate() {
                    let shadow: SymV = r
                        .flag_events
                        .get(i)
                        .copied()
                        .flatten()
                        .map(|(k, lo, hi)| self.model_var(k, lo, hi));
                    mem.store(a(2).wrapping_add(i as i64), *flag, shadow)
                        .map_err(mem_fault)?;
                }
                let ret_shadow: SymV = r.ret_event.map(|(k, lo, hi)| self.model_var(k, lo, hi));
                Ok((r.ret, ret_shadow))
            }
            Sys::Accept => {
                let fd = self.env.accept().map_err(div)?;
                self.check_checkpoint()?;
                Ok((fd, None))
            }
            Sys::Socket => Ok((self.env.socket(), None)),
            Sys::Bind | Sys::Listen => Ok((0, None)),
            Sys::Open => {
                let path = mem.read_cstr(a(0), 4096).map_err(mem_fault)?;
                Ok((self.env.open(&path, a(1)), None))
            }
            Sys::Close => Ok((self.env.close(a(0)), None)),
            Sys::Write => {
                let n = a(2).clamp(0, 1 << 20) as usize;
                let bytes = mem.read_bytes(a(1), n).map_err(mem_fault)?;
                Ok((self.env.write(a(0), &bytes), None))
            }
            Sys::Mkdir | Sys::Mknod | Sys::Mkfifo | Sys::Stat | Sys::Unlink => {
                let path = mem.read_cstr(a(0), 4096).map_err(mem_fault)?;
                Ok((self.env.fs_call(sys, &path, a(1), a(2)), None))
            }
            Sys::Getuid => Ok((self.env.getuid(), None)),
            Sys::Time => {
                let (v, ev) = self.env.time().map_err(div)?;
                self.check_checkpoint()?;
                let sh: SymV = ev.map(|(k, lo, hi)| self.model_var(k, lo, hi));
                Ok((v, sh))
            }
            Sys::Rand => {
                let (v, ev) = self.env.rand().map_err(div)?;
                self.check_checkpoint()?;
                let sh: SymV = ev.map(|(k, lo, hi)| self.model_var(k, lo, hi));
                Ok((v, sh))
            }
        }
    }

    fn output(&mut self, bytes: &[u8]) {
        self.stdout.extend_from_slice(bytes);
    }
}
