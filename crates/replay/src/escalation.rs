//! Escalation hints: what a replay (or a whole triage fleet) teaches
//! the next instrumentation plan generation.
//!
//! Every replay run already measures, per branch location, where the
//! search burned its budget — forced-set UNSAT bursts, per-location
//! cursor overruns, syscall divergences, repair-ladder activations —
//! and which instrumented locations it actually consulted bits from.
//! [`EscalationReport`] collects those signals; the plan side
//! (`instrument::EscalationHints`, produced by [`EscalationReport::
//! hints`]) consumes them to add bits exactly where replay said they
//! pay and drop bits where it never looked.

use std::collections::{BTreeMap, BTreeSet};

/// Per-branch-location escalation evidence from one or more replay
/// sessions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocationEscalation {
    /// Repair-ladder activations keyed to this location's cursor
    /// stalls: each one is a burst of UNSAT forced sets the search
    /// spent real solver budget on.
    pub repair_bursts: u64,
    /// Per-location stream overrun aborts at this location (including
    /// syscall-anchored checkpoint divergences, which are the same
    /// resynchronization signal caught earlier).
    pub cursor_overruns: u64,
    /// Syscall-order divergences whose prime suspect (the most recent
    /// unlogged symbolic decision) was this location.
    pub syscall_divergences: u64,
    /// UNSAT verdicts on forced sets keyed to this location.
    pub forced_failures: u64,
}

impl LocationEscalation {
    /// True when any counter fired — the "hot location" predicate.
    pub fn is_hot(&self) -> bool {
        self.repair_bursts + self.cursor_overruns + self.syscall_divergences + self.forced_failures
            > 0
    }
}

/// The escalation evidence of one replay session (or several, merged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EscalationReport {
    /// Evidence per branch location; only locations with at least one
    /// signal appear.
    pub per_loc: BTreeMap<u32, LocationEscalation>,
    /// Locations whose shipped log bits were consumed by at least one
    /// run — the complement (instrumented but never consulted) is what
    /// the next generation drops.
    pub consulted: BTreeSet<u32>,
    /// Replay runs the evidence was gathered over.
    pub runs: usize,
}

impl EscalationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no signal of any kind was recorded (consulted-set
    /// knowledge alone is not an escalation signal: with zero runs
    /// observed there is nothing to act on).
    pub fn is_empty(&self) -> bool {
        self.per_loc.values().all(|l| !l.is_hot()) && self.consulted.is_empty() && self.runs == 0
    }

    /// The mutable per-location slot for `loc`.
    pub fn loc_mut(&mut self, loc: u32) -> &mut LocationEscalation {
        self.per_loc.entry(loc).or_default()
    }

    /// Folds another report in (fleet aggregation across triage
    /// classes: counters add, consulted sets union).
    pub fn merge(&mut self, other: &EscalationReport) {
        for (loc, e) in &other.per_loc {
            let slot = self.per_loc.entry(*loc).or_default();
            slot.repair_bursts += e.repair_bursts;
            slot.cursor_overruns += e.cursor_overruns;
            slot.syscall_divergences += e.syscall_divergences;
            slot.forced_failures += e.forced_failures;
        }
        self.consulted.extend(other.consulted.iter().copied());
        self.runs += other.runs;
    }

    /// Locations with at least one escalation signal, ascending.
    pub fn hot_locations(&self) -> Vec<u32> {
        self.per_loc
            .iter()
            .filter(|(_, e)| e.is_hot())
            .map(|(loc, _)| *loc)
            .collect()
    }

    /// Lowers the replay-side evidence into the plan-side hint type
    /// consumed by `instrument`'s escalation entry point. (Two types,
    /// one shape: `replay` depends on `instrument`, not the other way
    /// around, so the plan layer defines its own input.)
    pub fn hints(&self) -> instrument::EscalationHints {
        let mut h = instrument::EscalationHints::default();
        for (loc, e) in &self.per_loc {
            h.per_loc.insert(
                *loc,
                instrument::LocationHint {
                    repair_bursts: e.repair_bursts,
                    cursor_overruns: e.cursor_overruns,
                    syscall_divergences: e.syscall_divergences,
                    forced_failures: e.forced_failures,
                },
            );
        }
        h.consulted = self.consulted.clone();
        h.observed_runs = self.runs as u64;
        h
    }

    /// One-line rendering for traces and table footers.
    pub fn summary(&self) -> String {
        let (mut rb, mut co, mut sd, mut ff) = (0u64, 0u64, 0u64, 0u64);
        for e in self.per_loc.values() {
            rb += e.repair_bursts;
            co += e.cursor_overruns;
            sd += e.syscall_divergences;
            ff += e.forced_failures;
        }
        format!(
            "{} hot locs over {} runs ({} bursts, {} overruns, {} sysdivs, {} forced-unsat), {} consulted",
            self.hot_locations().len(),
            self.runs,
            rb,
            co,
            sd,
            ff,
            self.consulted.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_empty_and_merge_accumulates() {
        let mut a = EscalationReport::new();
        assert!(a.is_empty());
        let mut b = EscalationReport::new();
        b.loc_mut(3).cursor_overruns = 2;
        b.consulted.insert(1);
        b.runs = 5;
        assert!(!b.is_empty());
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.per_loc[&3].cursor_overruns, 4);
        assert_eq!(a.runs, 10);
        assert_eq!(a.hot_locations(), vec![3]);
        assert!(a.consulted.contains(&1));
    }

    #[test]
    fn hints_mirror_every_counter() {
        let mut r = EscalationReport::new();
        let e = r.loc_mut(7);
        e.repair_bursts = 1;
        e.syscall_divergences = 2;
        e.forced_failures = 3;
        r.consulted.insert(7);
        r.runs = 9;
        let h = r.hints();
        assert_eq!(h.per_loc[&7].repair_bursts, 1);
        assert_eq!(h.per_loc[&7].syscall_divergences, 2);
        assert_eq!(h.per_loc[&7].forced_failures, 3);
        assert!(h.consulted.contains(&7));
        assert_eq!(h.observed_runs, 9);
    }

    #[test]
    fn summary_counts_hot_locations_only() {
        let mut r = EscalationReport::new();
        r.per_loc.insert(4, LocationEscalation::default());
        r.loc_mut(5).repair_bursts = 1;
        assert!(r.summary().starts_with("1 hot locs"));
    }
}
