//! `replay` — bug reproduction from partial branch logs (paper §3).
//!
//! The developer-site half of the system: given the retained
//! instrumentation [`Plan`](instrument::Plan) and a shipped
//! [`BugReport`](instrument::BugReport), the [`ReplayEngine`] drives a
//! modified concolic engine whose runs are *guided* by the recorded
//! bitvector. Non-deterministic syscalls replay from the report's syscall
//! log when present, or from symbolic models (§3.3) when not.
//!
//! Reproduction = finding an input that drives execution to the recorded
//! crash site along a path consistent with the log.
//!
//! # Run tracing (`RETRACE_REPLAY_TRACE`)
//!
//! Set the `RETRACE_REPLAY_TRACE` environment variable (any value) to
//! make [`ReplayEngine::reproduce`] print one diagnostic line per run to
//! stderr: the outcome, bits consumed, logged/unlogged symbolic
//! execution counts, path length, the divergent branch (if any), the
//! per-location cursor positions (empty for flat logs — the `bits`
//! count is the flat position), and the candidate connection payloads.
//! Repair-ladder offers are traced too. This is the first tool to reach
//! for when a replay row goes ∞: a misalignment hunt starts by looking
//! at which location's cursor stopped advancing.
//!
//! ```text
//! RETRACE_REPLAY_TRACE=1 cargo run --release -p retrace-bench \
//!     --bin table3_userver_replay 2>trace.log
//! ```

pub mod engine;
pub mod env;
pub mod escalation;
pub mod host;
pub mod stats;

pub use engine::{ReplayBudget, ReplayConfig, ReplayEngine, ReplayResult};
pub use env::{realize_streams, ReplayEnv, Streams, SyscallMode};
pub use escalation::{EscalationReport, LocationEscalation};
pub use host::{
    ReplayHost, ReplayRunStats, BRANCH_DIVERGENCE, CHECKPOINT_DIVERGENCE, CURSOR_OVERRUN,
    IMPLICATION_VIOLATION, REACHED_CRASH_SITE,
};
pub use stats::{assignment_from_input, InputParts, LogStats};

#[cfg(test)]
mod e2e {
    //! End-to-end record→ship→replay tests over small programs.

    use crate::engine::{ReplayConfig, ReplayEngine};
    use crate::stats::{assignment_from_input, InputParts};
    use concolic::{realize, BranchLabel, Engine, InputSpec, InputVars, SessionConfig};
    use instrument::{BugReport, DynLabel, LoggingHost, Method, Plan};
    use minic::vm::Vm;
    use minic::{build, CompiledProgram};
    use oskit::{Kernel, KernelConfig};
    use proptest::prelude::*;
    use solver::ExprArena;

    fn to_dyn_labels(cp: &CompiledProgram, labels: &concolic::LabelMap) -> Vec<DynLabel> {
        (0..cp.n_branches())
            .map(|i| match labels.get(minic::BranchId(i as u32)) {
                BranchLabel::Unvisited => DynLabel::Unvisited,
                BranchLabel::Concrete => DynLabel::Concrete,
                BranchLabel::Symbolic => DynLabel::Symbolic,
            })
            .collect()
    }

    /// Full pipeline: analyze → plan → deploy on `true_parts` → capture
    /// the crash → replay.
    fn record_and_replay(
        src: &str,
        spec: InputSpec,
        true_parts: InputParts,
        method: Method,
        log_syscalls: bool,
        analysis_runs: usize,
        replay_runs: usize,
    ) -> (CompiledProgram, BugReport, crate::ReplayResult) {
        let cp = build(&[("main", src)]).unwrap();

        // Dynamic analysis.
        let mut scfg = SessionConfig::new(spec.clone());
        scfg.budget.max_runs = analysis_runs;
        let analysis = Engine::new(&cp, scfg).analyze();
        let dyn_labels = to_dyn_labels(&cp, &analysis.labels);

        // Static analysis.
        let sres = staticax::analyze(&cp, &staticax::StaticConfig::default());

        // Plan.
        let mut plan = Plan::build(method, &dyn_labels, sres.symbolic(), cp.n_branches());
        plan.log_syscalls = log_syscalls;

        // Deployment run on the true input.
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &true_parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let outcome = vm.run(&argv);
        let crash = outcome.crash().expect("deployment run must crash").clone();
        let report = BugReport::capture(vm.host, crash);

        // Replay at the developer site.
        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = replay_runs;
        let result = ReplayEngine::new(&cp, plan, report.clone(), rcfg).reproduce();
        (cp, report, result)
    }

    const GUARDED_CRASH: &str = r#"
        int main(int argc, char **argv) {
            char *s = argv[1];
            if (s[0] == 'c') {
                if (s[1] == 'r') {
                    if (s[2] == '8') {
                        int *p = 0;
                        return *p;
                    }
                }
            }
            return 0;
        }
    "#;

    fn guarded_spec() -> InputSpec {
        InputSpec::argv_symbolic("prog", 1, 3)
    }

    fn guarded_parts() -> InputParts {
        InputParts {
            argv_sym: vec![b"cr8".to_vec()],
            ..InputParts::default()
        }
    }

    #[test]
    fn all_branches_reproduces_in_few_runs() {
        let (_, report, res) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            64,
        );
        assert!(res.reproduced, "all-branches replay must succeed: {res:?}");
        assert!(report.trace.len() >= 3, "three guards were logged");
        // The witness must re-derive the magic input.
        let w = res.witness_argv.expect("witness");
        assert_eq!(&w[1][..3], b"cr8");
        // With a complete log the search needs very few runs.
        assert!(
            res.runs <= 8,
            "full log keeps search short, took {}",
            res.runs
        );
    }

    #[test]
    fn static_method_reproduces() {
        let (_, _, res) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::Static,
            true,
            16,
            64,
        );
        assert!(res.reproduced);
        assert_eq!(&res.witness_argv.unwrap()[1][..3], b"cr8");
    }

    /// Retest-shaped program: the inner `if (c == 'c')` is implied by
    /// the outer one, so the static pass lets the plan suppress its
    /// log bit and replay reconstructs it.
    const RETEST_CRASH: &str = r#"
        int main(int argc, char **argv) {
            char *s = argv[1];
            int c = s[0];
            if (c == 'c') {
                if (c == 'c') {
                    if (s[1] == '8') {
                        int *p = 0;
                        return *p;
                    }
                }
            }
            return 0;
        }
    "#;

    #[test]
    fn suppressed_plan_reconstructs_bits_and_reproduces() {
        let cp = build(&[("main", RETEST_CRASH)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 2);
        let true_parts = InputParts {
            argv_sym: vec![b"c8".to_vec()],
            ..InputParts::default()
        };

        let sres = staticax::analyze(&cp, &staticax::StaticConfig::default());
        assert_eq!(sres.implications.n_implied(), 1, "inner retest is implied");
        let dyn_labels = vec![DynLabel::Unvisited; cp.n_branches()];
        let full = Plan::build(
            Method::Static,
            &dyn_labels,
            sres.symbolic(),
            cp.n_branches(),
        );
        let sup_plan = instrument::PlanBuilder::new(
            Method::Static,
            &dyn_labels,
            sres.symbolic(),
            cp.n_branches(),
        )
        .suppress(sres.implications.iter().map(|(b, i)| (b, i.by, i.negated)))
        .build();
        assert_eq!(sup_plan.n_suppressed(), 1);

        // Deploy both plans on the true crashing input.
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &true_parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let deploy = |plan: &Plan| {
            let host = LoggingHost::new(Kernel::new(kcfg.clone()), plan.clone());
            let mut vm = Vm::new(&cp, host);
            let outcome = vm.run(&argv);
            let crash = outcome.crash().expect("true input crashes").clone();
            (vm.host.suppressed_execs, BugReport::capture(vm.host, crash))
        };
        let (full_sup_execs, full_report) = deploy(&full);
        let (sup_execs, sup_report) = deploy(&sup_plan);
        assert_eq!(full_sup_execs, 0, "the full plan suppresses nothing");
        assert_eq!(sup_execs, 1, "the retest executed once, unlogged");
        assert_eq!(
            full_report.trace.len(),
            sup_report.trace.len() + 1,
            "exactly the suppressed bit left the shipped log"
        );

        // Replay both: identical search behavior, and the suppressed
        // run reconstructs the missing bit instead of consuming one.
        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = 64;
        let res_full = ReplayEngine::new(&cp, full, full_report, rcfg.clone()).reproduce();
        let res_sup = ReplayEngine::new(&cp, sup_plan, sup_report, rcfg).reproduce();
        assert!(res_full.reproduced && res_sup.reproduced);
        assert_eq!(res_full.runs, res_sup.runs, "suppression is search-neutral");
        assert_eq!(&res_sup.witness_argv.unwrap()[1][..2], b"c8");
        assert!(
            res_sup.last_run_stats.reconstructed_bits >= 1,
            "the winning run reconstructed the suppressed bit: {:?}",
            res_sup.last_run_stats
        );
        assert!(!res_sup.last_run_stats.implication_violation);
        assert_eq!(res_full.last_run_stats.reconstructed_bits, 0);
    }

    #[test]
    fn dynamic_method_reproduces_when_coverage_is_good() {
        let (_, _, res) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::Dynamic,
            true,
            64, // enough exploration to label all three guards
            64,
        );
        assert!(res.reproduced);
    }

    #[test]
    fn combined_method_reproduces() {
        let (_, _, res) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::DynamicStatic,
            true,
            8, // poor dynamic coverage: static fills the gaps
            64,
        );
        assert!(res.reproduced);
    }

    #[test]
    fn witness_input_actually_crashes_the_program() {
        let (cp, report, res) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            64,
        );
        let witness = res.witness_argv.expect("witness");
        // Run the witness concretely through a fresh kernel.
        let host = oskit::OsHost::new(Kernel::new(KernelConfig::default()));
        let mut vm = Vm::new(&cp, host);
        let out = vm.run(&witness);
        let crash = out.crash().expect("witness input crashes");
        assert_eq!(crash.loc, report.crash.loc);
        assert_eq!(crash.kind, report.crash.kind);
    }

    #[test]
    fn uninstrumented_replay_times_out_on_search_explosion() {
        // A 6-byte exact match. With NO logging at all, blind search
        // within a tiny budget must fail — the paper's "an approach that
        // does not instrument the code at all would result in even longer
        // bug reproduction times".
        let src = r#"
            int main(int argc, char **argv) {
                char *s = argv[1];
                int i = 0;
                int ok = 1;
                while (i < 6) {
                    if (s[i] != "secret"[i]) { ok = 0; }
                    i++;
                }
                if (ok) {
                    int *p = 0;
                    return *p;
                }
                return 0;
            }
        "#;
        let spec = InputSpec::argv_symbolic("prog", 1, 6);
        let parts = InputParts {
            argv_sym: vec![b"secret".to_vec()],
            ..InputParts::default()
        };
        let cp = build(&[("main", src)]).unwrap();
        let plan = Plan::none(cp.n_branches());
        // Deployment.
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("crash").clone();
        let report = BugReport::capture(vm.host, crash);
        assert_eq!(report.trace.len(), 0, "nothing was logged");
        // Replay with a small budget: must fail. (The solver *can* crack
        // this via inversion given enough runs; the point here is that
        // zero logging gives a search problem instead of a lookup.)
        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = 3;
        rcfg.solve.max_iters = 50;
        let res = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        assert!(!res.reproduced);
        assert!(res.timed_out);
    }

    #[test]
    fn syscall_logging_pins_read_results() {
        // The program branches on how many bytes read() returned; with
        // syscall logging the replay knows the count exactly.
        let src = r#"
            int main(int argc, char **argv) {
                char buf[16];
                int fd = sys_open("/data", 0);
                int n = sys_read(fd, buf, 16);
                if (n == 5) {
                    if (buf[0] == 'k') {
                        int *p = 0;
                        return *p;
                    }
                }
                return 0;
            }
        "#;
        let spec = InputSpec {
            argv: vec![concolic::ArgSpec::Fixed(b"prog".to_vec())],
            files: vec![concolic::FileSpec {
                path: "/data".into(),
                len: 5,
            }],
            ..InputSpec::default()
        };
        let parts = InputParts {
            files: vec![b"kxyzw".to_vec()],
            ..InputParts::default()
        };
        for log_syscalls in [true, false] {
            let (_, report, res) = record_and_replay(
                src,
                spec.clone(),
                parts.clone(),
                Method::AllBranches,
                log_syscalls,
                8,
                128,
            );
            if log_syscalls {
                assert!(!report.syscalls.is_empty(), "read was logged");
            } else {
                assert!(report.syscalls.is_empty());
            }
            assert!(res.reproduced, "log_syscalls={log_syscalls} must reproduce");
            assert!(res.witness_argv.is_some());
        }
    }

    #[test]
    fn syscall_divergence_recovery_reproduces() {
        // The syscall ORDER depends on an unlogged symbolic branch: the
        // first candidate takes the wrong side, issues the wrong syscall,
        // and diverges from the syscall log before any branch log can
        // catch it. The recovery set (path so far with the most recent
        // unlogged decision flipped, on the priority lane) lets the log
        // keep guiding — previously a syscall mismatch was a dead run.
        let src = r#"
            int main(int argc, char **argv) {
                char buf[4];
                if (argv[1][0] == 'k') {
                    int fd = sys_open("/cfg", 0);
                    sys_read(fd, buf, 4);
                    sys_close(fd);
                } else {
                    sys_time();
                }
                if (argv[1][1] == 'z') {
                    int *p = 0;
                    return *p;
                }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 2);
        // No branch instrumented, syscall results logged.
        let mut plan = Plan::none(cp.n_branches());
        plan.log_syscalls = true;
        // Deployment: /cfg exists at the user site.
        let mut kcfg = KernelConfig::default();
        kcfg.fs.install_file("/cfg", b"abcd".to_vec());
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let parts = InputParts {
            argv_sym: vec![b"kz".to_vec()],
            ..InputParts::default()
        };
        let assignment = assignment_from_input(&spec, &parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &kcfg);
        let host = LoggingHost::new(Kernel::new(kcfg.clone()), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("kz crashes").clone();
        let report = BugReport::capture(vm.host, crash);
        assert!(
            !report.syscalls.is_empty(),
            "the read on the true path was logged"
        );
        assert_eq!(report.trace.len(), 0, "no branch was instrumented");

        for policy in [
            search::SearchPolicy::default(),
            search::SearchPolicy::explorer(),
        ] {
            let mut rcfg = ReplayConfig::new(spec.clone());
            rcfg.base_fs = kcfg.fs.clone();
            rcfg.budget.max_runs = 64;
            rcfg.budget.policy = policy.clone();
            let res = ReplayEngine::new(&cp, plan.clone(), report.clone(), rcfg).reproduce();
            assert!(
                res.syscall_divergences >= 1,
                "{policy:?}: reproduction must survive a syscall mismatch"
            );
            assert!(
                res.frontier.recovery_sets >= 1,
                "{policy:?}: the guided recovery set was queued"
            );
            assert!(res.reproduced, "{policy:?}: replay failed: {res:?}");
            assert_eq!(&res.witness_argv.unwrap()[1][..2], b"kz");
        }
    }

    #[test]
    fn recovery_suspect_skips_logged_branches() {
        // A LOGGED symbolic branch executes between the unlogged suspect
        // and the divergent syscall. The recovery set must flip the
        // unlogged decision, not the logged one (which already agreed
        // with the recorded bit — negating it would only buy a 2(b)
        // abort at that spot).
        let src = r#"
            int main(int argc, char **argv) {
                char buf[4];
                int mode = 0;
                if (argv[1][0] == 'k') { mode = 1; }
                if (argv[1][2] == 'x') { mode = mode + 0; }
                if (mode == 1) {
                    int fd = sys_open("/cfg", 0);
                    sys_read(fd, buf, 4);
                    sys_close(fd);
                } else {
                    sys_time();
                }
                if (argv[1][1] == 'z') {
                    int *p = 0;
                    return *p;
                }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 3);
        // Cover ONLY the (argv[1][2] == 'x') branch (source order: id 1).
        let mut instrumented = vec![false; cp.n_branches()];
        instrumented[1] = true;
        let plan = Plan {
            method: Method::Dynamic,
            instrumented,
            log_syscalls: true,
            ..Plan::none(0)
        };
        let mut kcfg = KernelConfig::default();
        kcfg.fs.install_file("/cfg", b"abcd".to_vec());
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let parts = InputParts {
            argv_sym: vec![b"kzq".to_vec()],
            ..InputParts::default()
        };
        let assignment = assignment_from_input(&spec, &parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &kcfg);
        let host = LoggingHost::new(Kernel::new(kcfg.clone()), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("kzq crashes").clone();
        let report = BugReport::capture(vm.host, crash);
        assert_eq!(report.trace.len(), 1, "one logged branch execution");

        let mut rcfg = ReplayConfig::new(spec);
        rcfg.base_fs = kcfg.fs.clone();
        rcfg.budget.max_runs = 16;
        let res = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        assert!(
            res.syscall_divergences >= 1,
            "the first candidate must diverge at the syscall: {res:?}"
        );
        assert!(
            res.frontier.recovery_sets >= 1,
            "recovery set queued despite the deeper logged step"
        );
        assert!(
            res.reproduced,
            "flipping the unlogged suspect must recover within a tight \
             budget: {res:?}"
        );
        assert_eq!(&res.witness_argv.unwrap()[1][..2], b"kz");
    }

    #[test]
    fn earliest_suspect_repair_converges_where_deepest_first_thrashed() {
        // The combined-plan pathology in miniature: an early UNLOGGED
        // symbolic branch (s[0] == 'Q') decides which way a later LOGGED
        // branch on the SAME condition must go. The first candidate takes
        // the early branch the wrong way; at the logged twin the recorded
        // bit forces the opposite direction, so every 2(b) forced set
        // carries `!(s0=='Q') && (s0=='Q')` — UNSAT. A long unlogged
        // byte-scan loop sits between the two, so with a small per-run
        // scheduling cap the deepest-first standard sets only ever negate
        // loop bytes: the search thrashes without repair, and converges
        // once the earliest-unlogged-suspect repair flips the corrupted
        // decision.
        let src = r#"
            int main(int argc, char **argv) {
                char *s = argv[1];
                int flag = 0;
                if (s[0] == 'Q') { flag = 1; }
                int acc = 0;
                for (int i = 1; i < 40; i++) {
                    if (s[i] > 'a') { acc++; }
                }
                if (s[0] == 'Q') {
                    int *p = 0;
                    return *p;
                }
                return acc;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 40);
        // Log ONLY the second s[0]=='Q' branch (source order: branch 0 is
        // the first if, 1 the for condition, 2 the loop-body if, 3 the
        // crash guard).
        let mut instrumented = vec![false; cp.n_branches()];
        instrumented[3] = true;
        let plan = Plan {
            method: Method::Dynamic,
            instrumented,
            log_syscalls: true,
            ..Plan::none(0)
        };
        let mut true_input = vec![b'b'; 40];
        true_input[0] = b'Q';
        let parts = InputParts {
            argv_sym: vec![true_input],
            ..InputParts::default()
        };
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("Q... crashes").clone();
        let report = BugReport::capture(vm.host, crash);
        assert_eq!(report.trace.len(), 1, "one logged branch execution");

        let run = |repair: search::ForcedSetRepair| {
            let mut rcfg = ReplayConfig::new(spec.clone());
            rcfg.budget.max_runs = 48;
            // Small cap: deepest-first offers only deep loop negations,
            // starving the shallow suspect — the thrash precondition.
            rcfg.budget.max_pendings_per_run = 4;
            // UNSAT forced sets should fail fast, not burn a full proof
            // budget (the repair path is what is under test).
            rcfg.solve.max_iters = 2000;
            rcfg.budget.policy.forced_repair = repair;
            ReplayEngine::new(&cp, plan.clone(), report.clone(), rcfg).reproduce()
        };

        let thrashed = run(search::ForcedSetRepair::disabled());
        assert!(
            !thrashed.reproduced,
            "without repair the search must thrash within the budget: {:?}",
            (thrashed.runs, &thrashed.frontier),
        );

        let repaired = run(search::ForcedSetRepair::default());
        assert!(
            repaired.reproduced,
            "earliest-suspect repair must converge: {:?}",
            (repaired.runs, &repaired.frontier),
        );
        assert!(
            repaired.frontier.repairs_scheduled >= 1,
            "the repair lane did the work: {:?}",
            repaired.frontier,
        );
        assert_eq!(&repaired.witness_argv.unwrap()[1][..1], b"Q");
    }

    /// Record `src` on `parts` under a fully-instrumented plan in the
    /// given log format, then replay. Returns (report, result).
    fn record_replay_full(
        src: &str,
        spec: &InputSpec,
        parts: &InputParts,
        format: instrument::LogFormat,
        replay_runs: usize,
    ) -> (BugReport, crate::ReplayResult) {
        let cp = build(&[("main", src)]).unwrap();
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        )
        .with_format(format);
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, spec);
        let assignment = assignment_from_input(spec, parts);
        let (argv, kcfg) = realize(spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("deployment crashes").clone();
        let report = BugReport::capture(vm.host, crash);
        let mut rcfg = ReplayConfig::new(spec.clone());
        rcfg.budget.max_runs = replay_runs;
        let res = ReplayEngine::new(&cp, plan, report.clone(), rcfg).reproduce();
        (report, res)
    }

    #[test]
    fn fully_logged_replay_is_bit_identical_flat_vs_cursors() {
        // A fully-instrumented plan leaves no unlogged symbolic branch,
        // so the two formats record the same directions and must guide
        // the search identically: same run count, same solver calls,
        // same witness.
        let spec = guarded_spec();
        let parts = guarded_parts();
        let (flat_rep, flat) = record_replay_full(
            GUARDED_CRASH,
            &spec,
            &parts,
            instrument::LogFormat::Flat,
            64,
        );
        let (cur_rep, cur) = record_replay_full(
            GUARDED_CRASH,
            &spec,
            &parts,
            instrument::LogFormat::PerLocation,
            64,
        );
        assert_eq!(flat_rep.trace.len(), cur_rep.trace.len());
        assert!(flat.reproduced && cur.reproduced);
        assert_eq!(flat.runs, cur.runs);
        assert_eq!(flat.solver_calls, cur.solver_calls);
        assert_eq!(flat.witness_argv, cur.witness_argv);
        assert_eq!(
            flat.last_run_stats.bits_consumed,
            cur.last_run_stats.bits_consumed
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        // Any fully-logged program replays bit-identically under flat
        // vs. per-location cursor logs: with every branch instrumented
        // there is nothing for misalignment to exploit, so the formats
        // must be behaviorally indistinguishable end to end.
        #[test]
        fn fully_logged_formats_replay_identically(
            magic in proptest::collection::vec(0x21u8..0x7f, 2..4),
        ) {
            let src = format!(
                r#"
                int main(int argc, char **argv) {{
                    char *s = argv[1];
                    int ok = 1;
                    for (int i = 0; i < {n}; i++) {{
                        if (s[i] != "{lit}"[i]) {{ ok = 0; }}
                    }}
                    if (ok) {{ int *p = 0; return *p; }}
                    return 0;
                }}
                "#,
                n = magic.len(),
                lit = magic.iter().map(|b| *b as char).collect::<String>(),
            );
            let spec = InputSpec::argv_symbolic("prog", 1, magic.len());
            let parts = InputParts {
                argv_sym: vec![magic.clone()],
                ..InputParts::default()
            };
            let (flat_rep, flat) = record_replay_full(
                &src, &spec, &parts, instrument::LogFormat::Flat, 128,
            );
            let (cur_rep, cur) = record_replay_full(
                &src, &spec, &parts, instrument::LogFormat::PerLocation, 128,
            );
            prop_assert_eq!(flat_rep.trace.len(), cur_rep.trace.len());
            prop_assert!(flat.reproduced);
            prop_assert!(cur.reproduced);
            prop_assert_eq!(flat.runs, cur.runs);
            prop_assert_eq!(flat.solver_calls, cur.solver_calls);
            prop_assert_eq!(flat.witness_argv, cur.witness_argv);
        }
    }

    #[test]
    fn cursor_log_localizes_loop_misalignment() {
        // The combined-row pathology in miniature. The scan loop's exit
        // (b0) is NOT logged; the loop-body branch (b1) and the crash
        // guard (b2) are. Under the flat format a candidate with the
        // wrong trip count shifts b2's bit into b1's stretch of
        // low-entropy loop bits, so structurally wrong candidates keep
        // "agreeing"; under per-location cursors b2 always reads ITS OWN
        // recorded bit, so the forced set pins the crash guard on the
        // first divergence — a local mismatch instead of a downstream
        // one.
        let src = r#"
            int main(int argc, char **argv) {
                char *s = argv[1];
                int acc = 0;
                int i = 0;
                while (s[i] != '.') {
                    if (s[i] > 'm') { acc++; }
                    i = i + 1;
                }
                if (s[19] == 'Z') {
                    int *p = 0;
                    return *p;
                }
                return acc;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 20);
        // Source order: b0 = while, b1 = loop-body if, b2 = crash guard.
        let mut instrumented = vec![false; cp.n_branches()];
        instrumented[1] = true;
        instrumented[2] = true;
        let base_plan = Plan {
            method: Method::DynamicStatic,
            instrumented,
            log_syscalls: true,
            ..Plan::none(0)
        };
        // The true input: 8 loop iterations, then the crash guard.
        let mut true_input = vec![b'b'; 20];
        true_input[8] = b'.';
        true_input[19] = b'Z';
        let parts = InputParts {
            argv_sym: vec![true_input],
            ..InputParts::default()
        };
        let run = |format: instrument::LogFormat, max_runs: usize, hint: Option<Vec<i64>>| {
            let plan = base_plan.clone().with_format(format);
            let mut arena = ExprArena::new();
            let vars = InputVars::alloc(&mut arena, &spec);
            let assignment = assignment_from_input(&spec, &parts);
            let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
            let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
            let mut vm = Vm::new(&cp, host);
            let crash = vm.run(&argv).crash().expect("crashes").clone();
            let report = BugReport::capture(vm.host, crash);
            let mut rcfg = ReplayConfig::new(spec.clone());
            rcfg.budget.max_runs = max_runs;
            rcfg.initial_hint = hint;
            ReplayEngine::new(&cp, plan, report, rcfg).reproduce()
        };
        // A candidate with the WRONG trip count (dot at 4, not 8) but
        // the right guard byte — the misaligned shape an unlogged loop
        // exit produces. One run each, and look at the diagnostics:
        let mut misaligned = vec![b'b' as i64; 20];
        misaligned[4] = b'.' as i64;
        misaligned[19] = b'Z' as i64;
        let flat_probe = run(instrument::LogFormat::Flat, 1, Some(misaligned.clone()));
        assert!(!flat_probe.reproduced);
        assert_eq!(
            flat_probe.last_run_stats.divergent_branch,
            Some((2, true)),
            "flat: the guard reads a shifted LOOP bit (0) and 'diverges' — \
             the forced set will pin the guard the WRONG way"
        );
        let cursor_probe = run(
            instrument::LogFormat::PerLocation,
            1,
            Some(misaligned.clone()),
        );
        assert!(!cursor_probe.reproduced, "under-consumed streams fail 3(a)");
        assert_eq!(
            cursor_probe.last_run_stats.divergent_branch, None,
            "cursors: the guard reads its OWN bit and agrees; only the \
             loop stream is short"
        );
        assert_eq!(
            cursor_probe.last_run_stats.bits_consumed, 5,
            "4 loop-body bits + the guard's own bit"
        );
        // And end to end, the cursor format converges from that
        // misaligned start within a small budget.
        let budget = 64;
        let cursors = run(instrument::LogFormat::PerLocation, budget, Some(misaligned));
        assert!(
            cursors.reproduced,
            "per-location cursors must converge within {budget} runs: {:?}",
            (cursors.runs, &cursors.frontier),
        );
        let w = cursors.witness_argv.unwrap();
        assert_eq!(w[1][19], b'Z');
    }

    #[test]
    fn initial_hint_skips_the_search() {
        // A developer-supplied starting candidate that is already the
        // true input must reproduce on the first run with no solving.
        let (cp, report, _) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            64,
        );
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        let mut rcfg = ReplayConfig::new(guarded_spec());
        rcfg.budget.max_runs = 4;
        rcfg.initial_hint = Some(crate::stats::assignment_from_input(
            &guarded_spec(),
            &guarded_parts(),
        ));
        let res = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        assert!(res.reproduced);
        assert_eq!(res.runs, 1, "the hint is the witness");
        assert_eq!(res.solver_calls, 0);
    }

    #[test]
    fn drained_search_reports_exhaustion_not_timeout() {
        // An unsatisfiable guard: the crash needs argv[1][0] both 'a' and
        // 'b'. The log forces the recorded direction, every pending set is
        // UNSAT, and the frontier drains long before the run budget.
        let src = r#"
            int main(int argc, char **argv) {
                if (argv[1][0] == 'a') {
                    if (argv[1][0] == 'b') { return 1; }
                    int *p = 0;
                    return *p;
                }
                return 0;
            }
        "#;
        let (_, report, _) = record_and_replay(
            src,
            InputSpec::argv_symbolic("prog", 1, 1),
            InputParts {
                argv_sym: vec![b"a".to_vec()],
                ..InputParts::default()
            },
            Method::AllBranches,
            true,
            8,
            64,
        );
        // Corrupt the trace so the forced direction contradicts the
        // reachable paths: bit 0 flipped sends every candidate into a
        // forced set that cannot be satisfied together with a re-visit.
        let cp = build(&[("main", src)]).unwrap();
        let mut bad = report;
        bad.trace = bad.trace.corrupted(0);
        bad.crash.loc = minic::Loc {
            unit: minic::UnitId(0),
            line: 9999,
            col: 0,
        };
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        let mut rcfg = ReplayConfig::new(InputSpec::argv_symbolic("prog", 1, 1));
        rcfg.budget.max_runs = 4096;
        let res = ReplayEngine::new(&cp, plan, bad, rcfg).reproduce();
        assert!(!res.reproduced);
        assert!(
            res.exhausted && !res.timed_out,
            "a drained frontier is exhaustion, not the paper's ∞ timeout: {res:?}"
        );
    }

    #[test]
    fn replay_of_signal_injected_server_crash() {
        // A tiny request loop crashed externally via the signal plan;
        // replay must find input reaching the same syscall site with the
        // log exhausted.
        let src = r#"
            int main(int argc, char **argv) {
                char buf[32];
                int fds[2];
                int ready[2];
                int sock = sys_socket();
                sys_bind(sock, 80);
                sys_listen(sock, 4);
                int served = 0;
                while (served < 2) {
                    fds[0] = sock;
                    if (sys_select(fds, 1, ready) < 1) { continue; }
                    int conn = sys_accept(sock);
                    if (conn < 0) { continue; }
                    int got = 0;
                    while (got <= 0) {
                        fds[1] = conn;
                        sys_select(fds, 2, ready);
                        got = sys_read(conn, buf, 32);
                    }
                    if (buf[0] == 'G') {
                        sys_write(conn, "OK", 2);
                    } else {
                        sys_write(conn, "NO", 2);
                    }
                    sys_close(conn);
                    served++;
                }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec {
            argv: vec![concolic::ArgSpec::Fixed(b"srv".to_vec())],
            clients: vec![
                concolic::ClientSpec {
                    packet_lens: vec![4],
                    close_after: true,
                },
                concolic::ClientSpec {
                    packet_lens: vec![4],
                    close_after: true,
                },
            ],
            ..InputSpec::default()
        };
        let parts = InputParts {
            conns: vec![b"GET/".to_vec(), b"HEAD".to_vec()],
            ..InputParts::default()
        };
        // Plan: all branches + syscall log.
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        // Deployment with SEGFAULT after both clients served.
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &parts);
        let base = KernelConfig {
            arrival_window: 1,
            signal_plan: Some(oskit::SignalPlan {
                sig: 11,
                after_all_conns_served: true,
                after_n_syscalls: None,
            }),
            ..KernelConfig::default()
        };
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &base);
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let out = vm.run(&argv);
        let crash = out.crash().expect("signal crash").clone();
        assert_eq!(crash.kind, minic::CrashKind::Signal(11));
        let report = BugReport::capture(vm.host, crash);
        assert!(!report.trace.is_empty());
        assert!(!report.syscalls.is_empty());

        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = 128;
        let res = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        assert!(res.reproduced, "server crash replay failed: {res:?}");
    }

    #[test]
    fn corrupted_log_is_detected_not_miscredited() {
        let (cp, report, _) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            64,
        );
        // Corrupt the first bit: replay must still terminate (it may
        // search more or fail), and must never panic.
        let mut bad = report.clone();
        bad.trace = bad.trace.corrupted(0);
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        let mut rcfg = ReplayConfig::new(guarded_spec());
        rcfg.budget.max_runs = 16;
        let res = ReplayEngine::new(&cp, plan, bad, rcfg).reproduce();
        // A corrupted first guard bit sends the search to the wrong side:
        // with the strict crash-site criterion this cannot "succeed"
        // through the true path (bits diverge), so it times out.
        assert!(!res.reproduced);
    }

    #[test]
    fn truncated_log_still_reproduces_with_search() {
        let (cp, report, _) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            64,
        );
        let mut shorter = report.clone();
        shorter.trace = shorter.trace.truncated(1);
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        let mut rcfg = ReplayConfig::new(guarded_spec());
        rcfg.budget.max_runs = 256;
        let res = ReplayEngine::new(&cp, plan, shorter, rcfg).reproduce();
        // One guard bit remains; the other two guards must be found by
        // search. Budget is ample for a 2-guard search.
        assert!(res.reproduced, "truncated-log replay failed: {res:?}");
    }

    /// Everything the invariance suite compares, in order: reproduced,
    /// runs, solver calls, witness argv, witness assignment, the ordered
    /// (signature, verdict) stream, committed pops, popped-minus-
    /// restored (the consumed count), and the prefix-cache ledger
    /// (hits, misses, literals saved).
    type InvarianceObservation = (
        bool,
        usize,
        usize,
        Option<Vec<Vec<u8>>>,
        Option<Vec<i64>>,
        Vec<(u128, bool)>,
        u64,
        u64,
        (u64, u64, u64),
    );

    /// Replays the guarded crash with a partially instrumented plan
    /// (search-heavy) at the given worker count, returning every field
    /// the invariance suite compares.
    fn replay_with_workers(workers: usize) -> InvarianceObservation {
        replay_with_workers_cache(workers, true)
    }

    /// [`replay_with_workers`] with the prefix cache switchable.
    fn replay_with_workers_cache(workers: usize, cache: bool) -> InvarianceObservation {
        let src = GUARDED_CRASH;
        let cp = build(&[("main", src)]).unwrap();
        let spec = guarded_spec();
        // Log ONLY the middle guard: the outer and inner guards must be
        // found by search, so the frontier sees real UNSAT streaks —
        // the work the parallel engine speculates on.
        let mut instrumented = vec![false; cp.n_branches()];
        instrumented[1] = true;
        let plan = Plan {
            method: Method::Dynamic,
            instrumented,
            log_syscalls: true,
            ..Plan::none(0)
        };
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &guarded_parts());
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("crash").clone();
        let report = BugReport::capture(vm.host, crash);
        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = 128;
        rcfg.budget.workers = workers;
        rcfg.budget.prefix_cache = cache;
        let res = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        (
            res.reproduced,
            res.runs,
            res.solver_calls,
            res.witness_argv,
            res.witness_assignment,
            res.frontier.solved_sigs.clone(),
            res.frontier.committed,
            res.frontier.popped - res.frontier.restored,
            (res.cache_hits, res.cache_misses, res.prefix_len_saved),
        )
    }

    #[test]
    fn replay_is_worker_count_invariant() {
        // The tentpole property, stronger than mere set equality: the
        // parallel engine commits speculative verdicts strictly in pop
        // order, so the ENTIRE decision sequence — run count, solver
        // calls, the ordered (signature, verdict) stream, the committed
        // pop count, and the final reproduced input — is bit-identical
        // for every worker count. (Raw `popped` is NOT compared:
        // speculation pops more and restores the excess; `popped -
        // restored` is the consumed count and must match.)
        let serial = replay_with_workers(1);
        assert!(serial.0, "the serial baseline must reproduce");
        assert!(!serial.5.is_empty(), "the search must actually solve sets");
        for workers in [2, 4] {
            let par = replay_with_workers(workers);
            assert_eq!(
                serial, par,
                "workers={workers} diverged from the serial engine"
            );
        }
    }

    #[test]
    fn replay_prefix_cache_on_off_is_bit_identical() {
        // Every cache shortcut is provably outcome-identical, so the
        // whole search — verdict stream, witness, consumed pops — must
        // match with the cache disabled, at every worker count. Only
        // the ledger itself may differ (zeroed when off).
        let on = replay_with_workers_cache(1, true);
        assert!(on.0, "the cached baseline must reproduce");
        let (hits, misses, saved) = on.8;
        assert!(hits > 0, "guided replay re-derives prefixes: must hit");
        assert!(saved >= hits, "every hit saves at least one literal");
        assert_eq!(
            hits + misses,
            on.2 as u64,
            "ledger: hits + misses == solves"
        );
        let strip = |o: &InvarianceObservation| {
            (
                o.0,
                o.1,
                o.2,
                o.3.clone(),
                o.4.clone(),
                o.5.clone(),
                o.6,
                o.7,
            )
        };
        for workers in [1usize, 2, 4] {
            let off = replay_with_workers_cache(workers, false);
            let (off_hits, off_misses, off_saved) = off.8;
            assert_eq!(off_hits, 0, "disabled cache cannot hit");
            assert_eq!(off_saved, 0);
            assert_eq!(off_misses, off.2 as u64, "ledger still counts every solve");
            assert_eq!(
                strip(&on),
                strip(&off),
                "cache=off workers={workers} diverged"
            );
        }
    }

    #[test]
    fn parallel_replay_accounting_balances() {
        // Every speculatively popped set is either committed or restored
        // — the lost-candidate invariant the stress suite also checks.
        // (`replay_with_workers` returns committed and popped-restored;
        // their equality IS the balance popped == committed + restored.)
        let r = replay_with_workers(4);
        assert_eq!(r.6, r.7, "popped != committed + restored");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        // Randomized magic-string programs under a PARTIAL plan (only
        // even-indexed branches logged): replay must produce the same
        // solved-set sequence and the same witness at 1, 2 and 4
        // workers. Partial logging keeps real search pressure on the
        // frontier, so speculation actually happens and must stay
        // transparent.
        #[test]
        fn replay_worker_invariance_holds_on_random_programs(
            magic in proptest::collection::vec(0x21u8..0x7f, 2..5),
        ) {
            let src = format!(
                r#"
                int main(int argc, char **argv) {{
                    char *s = argv[1];
                    int ok = 1;
                    for (int i = 0; i < {n}; i++) {{
                        if (s[i] != "{lit}"[i]) {{ ok = 0; }}
                    }}
                    if (ok) {{ int *p = 0; return *p; }}
                    return 0;
                }}
                "#,
                n = magic.len(),
                lit = magic.iter().map(|b| *b as char).collect::<String>(),
            );
            let cp = build(&[("main", &src)]).unwrap();
            let spec = InputSpec::argv_symbolic("prog", 1, magic.len());
            let parts = InputParts {
                argv_sym: vec![magic.clone()],
                ..InputParts::default()
            };
            let mut instrumented = vec![false; cp.n_branches()];
            for (i, slot) in instrumented.iter_mut().enumerate() {
                *slot = i % 2 == 0;
            }
            let plan = Plan {
                method: Method::Dynamic,
                instrumented,
                log_syscalls: true,
                ..Plan::none(0)
            };
            let mut arena = ExprArena::new();
            let vars = InputVars::alloc(&mut arena, &spec);
            let assignment = assignment_from_input(&spec, &parts);
            let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
            let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
            let mut vm = Vm::new(&cp, host);
            let crash = vm.run(&argv).crash().expect("crash").clone();
            let report = BugReport::capture(vm.host, crash);
            let run = |workers: usize| {
                let mut rcfg = ReplayConfig::new(spec.clone());
                rcfg.budget.max_runs = 128;
                rcfg.budget.workers = workers;
                let res =
                    ReplayEngine::new(&cp, plan.clone(), report.clone(), rcfg).reproduce();
                (
                    res.reproduced,
                    res.runs,
                    res.solver_calls,
                    res.witness_argv,
                    res.witness_assignment,
                    res.frontier.solved_sigs.clone(),
                )
            };
            let serial = run(1);
            for workers in [2usize, 4] {
                let par = run(workers);
                prop_assert_eq!(
                    &serial, &par,
                    "workers={} diverged from serial", workers
                );
            }
        }
    }

    #[test]
    fn parallel_wall_timeout_is_reported_as_timeout_not_exhaustion() {
        // The latent concurrency hazard in failure reporting: when the
        // wall cap expires during a speculative commit phase the engine
        // restores the unconsumed tail and leaves the frontier
        // non-empty, so a naive drain epilogue could classify the stop
        // as exhaustion (or worse, keep popping). The epilogue must pin
        // the precedence: wall expiry → `timed_out`, never `exhausted`,
        // at every worker count. A heavy concrete loop makes a single
        // run outlast the 1 ms cap.
        let src = r#"
            int main(int argc, char **argv) {
                char *s = argv[1];
                int acc = 0;
                for (int i = 0; i < 200000; i++) { acc = acc + i; }
                if (s[0] == 'c') {
                    if (s[1] == 'r') {
                        int *p = 0;
                        return *p;
                    }
                }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let spec = InputSpec::argv_symbolic("prog", 1, 2);
        let parts = InputParts {
            argv_sym: vec![b"cr".to_vec()],
            ..InputParts::default()
        };
        let plan = Plan::build(
            Method::AllBranches,
            &vec![DynLabel::Unvisited; cp.n_branches()],
            &vec![false; cp.n_branches()],
            cp.n_branches(),
        );
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &parts);
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("cr crashes").clone();
        let report = BugReport::capture(vm.host, crash);
        for workers in [1usize, 2] {
            let mut rcfg = ReplayConfig::new(spec.clone());
            rcfg.budget.max_runs = 100_000;
            rcfg.budget.max_wall_ms = 1;
            rcfg.budget.workers = workers;
            let res = ReplayEngine::new(&cp, plan.clone(), report.clone(), rcfg).reproduce();
            if res.reproduced {
                continue; // a fast machine may win before the cap fires
            }
            assert!(
                res.timed_out,
                "workers={workers}: the 1 ms wall cap must report a timeout: \
                 {} runs",
                res.runs
            );
            assert!(
                !res.exhausted,
                "workers={workers}: a wall expiry is never exhaustion"
            );
            assert!(
                res.runs < 100_000,
                "workers={workers}: the run budget was not the stopper"
            );
        }
    }

    #[test]
    fn replay_work_grows_as_logging_shrinks() {
        // Compare total replay work between full logging and no logging
        // on a moderate search problem — the tradeoff of the whole paper.
        let (_, _, full) = record_and_replay(
            GUARDED_CRASH,
            guarded_spec(),
            guarded_parts(),
            Method::AllBranches,
            true,
            16,
            512,
        );
        let cp = build(&[("main", GUARDED_CRASH)]).unwrap();
        let plan = Plan::none(cp.n_branches());
        let spec = guarded_spec();
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &spec);
        let assignment = assignment_from_input(&spec, &guarded_parts());
        let (argv, kcfg) = realize(&spec, &vars, &assignment, &KernelConfig::default());
        let host = LoggingHost::new(Kernel::new(kcfg), plan.clone());
        let mut vm = Vm::new(&cp, host);
        let crash = vm.run(&argv).crash().expect("crash").clone();
        let report = BugReport::capture(vm.host, crash);
        let mut rcfg = ReplayConfig::new(spec);
        rcfg.budget.max_runs = 512;
        let none = ReplayEngine::new(&cp, plan, report, rcfg).reproduce();
        if none.reproduced {
            assert!(
                none.runs >= full.runs,
                "unlogged search ({}) must not beat guided replay ({})",
                none.runs,
                full.runs
            );
        }
    }
}
