//! The replay environment: syscall semantics at the developer site.
//!
//! During replay there is no real kernel — the developer re-creates the
//! environment from the bug report plus a *candidate input* proposed by
//! the solver. Two modes per §3.3:
//!
//! - **Logged**: calls with logged results "always return exactly the
//!   recorded value"; `read` delivers exactly the logged byte count from
//!   the candidate stream, `select` returns the recorded ready set.
//! - **Modeled**: the results become symbolic model variables ("a
//!   symbolic variable for the return value that determines how much
//!   input is read … constrained to be between −1 and the amount
//!   requested"); the engine searches over their values across runs.
//!
//! Deterministic filesystem calls (`open`, `mkdir`, `stat`, …) replay
//! against a candidate filesystem directly — their results are functions
//! of the input, not non-determinism.

use concolic::{InputSpec, InputVars};
use instrument::{SysRecord, SyscallLog};
use minic::types::Sys;
use oskit::{errno, SimFs, StreamSource};
use solver::VarId;
use std::collections::HashMap;

/// Result of a nondeterminism-returning call: the concrete value plus,
/// in modeled mode, the `(model_index, lo, hi)` of its model variable.
pub type ModeledResult = Result<(i64, Option<(usize, i64, i64)>), SyscallDivergence>;

/// Concrete candidate input streams realized from a solver assignment.
#[derive(Debug, Clone, Default)]
pub struct Streams {
    /// argv strings (argv\[0\] included).
    pub argv: Vec<Vec<u8>>,
    /// stdin bytes.
    pub stdin: Vec<u8>,
    /// File contents keyed by normalized path.
    pub files: HashMap<Vec<u8>, Vec<u8>>,
    /// Per-connection byte streams (packets flattened: pacing comes from
    /// the log or the models, not from the candidate).
    pub conns: Vec<Vec<u8>>,
}

/// Builds candidate streams from an assignment (replay-side counterpart
/// of `concolic::realize`).
pub fn realize_streams(spec: &InputSpec, vars: &InputVars, assignment: &[i64]) -> Streams {
    let byte = |v: &VarId| (assignment.get(v.0 as usize).copied().unwrap_or(0) & 0xff) as u8;
    let mut argv = Vec::new();
    for (i, a) in spec.argv.iter().enumerate() {
        match a {
            concolic::ArgSpec::Fixed(bytes) => argv.push(bytes.clone()),
            concolic::ArgSpec::Symbolic(n) => {
                argv.push((0..*n).map(|j| byte(&vars.argv[i][j])).collect())
            }
        }
    }
    let stdin = vars.stdin.iter().map(&byte).collect();
    let mut files = HashMap::new();
    for (path, fvars) in &vars.files {
        files.insert(path.clone(), fvars.iter().map(&byte).collect());
    }
    let conns = vars
        .clients
        .iter()
        .map(|c| c.iter().map(&byte).collect())
        .collect();
    Streams {
        argv,
        stdin,
        files,
        conns,
    }
}

/// How syscall non-determinism is resolved.
#[derive(Debug, Clone)]
pub enum SyscallMode {
    /// Follow the shipped syscall log.
    Logged(SyscallLog),
    /// Use symbolic models; concrete values come from `nondet_assign`.
    Modeled,
}

#[derive(Debug, Clone)]
enum RFd {
    Closed,
    Stdin { pos: usize },
    Stdout,
    File { path: Vec<u8>, pos: usize },
    Listener,
    Conn { idx: usize, pos: usize },
}

/// What a replayed `read` produced.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The return value.
    pub ret: i64,
    /// Bytes delivered with their stream origin (for input shadows).
    pub bytes: Vec<u8>,
    /// Stream source + starting offset of the delivered bytes.
    pub stream: Option<(StreamSource, usize)>,
    /// Model variable index for the return value (modeled mode only):
    /// the k-th non-determinism event of the run.
    pub model_event: Option<(usize, i64, i64)>,
}

/// A replayed `select` result.
#[derive(Debug, Clone)]
pub struct SelectResult {
    /// Return value (ready count).
    pub ret: i64,
    /// Per-fd 0/1 readiness flags.
    pub flags: Vec<i64>,
    /// Model events backing each flag (modeled mode only): (event index,
    /// lo, hi).
    pub flag_events: Vec<Option<(usize, i64, i64)>>,
    /// Model event for the return value.
    pub ret_event: Option<(usize, i64, i64)>,
}

/// Divergence detected by the environment (wrong syscall order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallDivergence {
    /// Which call the program made.
    pub got: Sys,
}

/// The developer-site environment for one replay run.
#[derive(Debug)]
pub struct ReplayEnv {
    streams: Streams,
    fs: SimFs,
    fds: Vec<RFd>,
    mode: SyscallMode,
    log_pos: usize,
    /// Sequential non-determinism event counter (stable across runs with
    /// identical prefixes, giving model variables cross-run identity).
    nondet_seq: usize,
    /// Concrete values for model variables, by event index.
    nondet_assign: Vec<i64>,
    next_conn: usize,
    uid: i64,
    clock: i64,
}

impl ReplayEnv {
    /// Creates an environment over candidate streams.
    ///
    /// `base_fs` replicates the deployment filesystem (concrete parts);
    /// candidate file contents are layered on top.
    pub fn new(
        streams: Streams,
        base_fs: SimFs,
        mode: SyscallMode,
        nondet_assign: Vec<i64>,
    ) -> Self {
        let mut fs = base_fs;
        for (path, content) in &streams.files {
            let p = String::from_utf8_lossy(path).to_string();
            // Ensure parents exist for candidate files.
            let mut acc = String::new();
            for comp in p.split('/').filter(|c| !c.is_empty()) {
                acc.push('/');
                acc.push_str(comp);
                if acc != p {
                    fs.install_dir(&acc);
                }
            }
            fs.install_file(&p, content.clone());
        }
        ReplayEnv {
            streams,
            fs,
            fds: vec![RFd::Stdin { pos: 0 }, RFd::Stdout, RFd::Stdout],
            mode,
            log_pos: 0,
            nondet_seq: 0,
            nondet_assign,
            next_conn: 0,
            uid: 1000,
            clock: 1_300_000_000,
        }
    }

    /// The candidate argv.
    pub fn argv(&self) -> &[Vec<u8>] {
        &self.streams.argv
    }

    /// Takes the next logged record if it matches; `Err` on divergence,
    /// `Ok(None)` when the log is exhausted (fall back to models).
    fn next_log(&mut self, sys: Sys) -> Result<Option<SysRecord>, SyscallDivergence> {
        let SyscallMode::Logged(log) = &self.mode else {
            return Ok(None);
        };
        match log.records.get(self.log_pos) {
            None => Ok(None),
            Some(rec) if rec.sys == sys => {
                self.log_pos += 1;
                Ok(Some(rec.clone()))
            }
            Some(_) => Err(SyscallDivergence { got: sys }),
        }
    }

    /// Allocates/looks up the next model event and its concrete value.
    fn model_event(&mut self, default: i64, lo: i64, hi: i64) -> (usize, i64) {
        let k = self.nondet_seq;
        self.nondet_seq += 1;
        let v = self
            .nondet_assign
            .get(k)
            .copied()
            .unwrap_or(default)
            .clamp(lo, hi);
        (k, v)
    }

    fn alloc_fd(&mut self, fd: RFd) -> i64 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if matches!(slot, RFd::Closed) {
                *slot = fd;
                return i as i64;
            }
        }
        self.fds.push(fd);
        (self.fds.len() - 1) as i64
    }

    /// `open` — deterministic against the candidate filesystem.
    pub fn open(&mut self, path: &[u8], flags: i64) -> i64 {
        if flags == 0 {
            match self.fs.open_read(path) {
                Ok(_) => self.alloc_fd(RFd::File {
                    path: normalize(path),
                    pos: 0,
                }),
                Err(e) => e,
            }
        } else {
            match self.fs.open_write(path) {
                Ok(()) => self.alloc_fd(RFd::File {
                    path: normalize(path),
                    pos: 0,
                }),
                Err(e) => e,
            }
        }
    }

    /// `close`.
    pub fn close(&mut self, fd: i64) -> i64 {
        match self.fds.get_mut(fd as usize) {
            Some(slot) if !matches!(slot, RFd::Closed) => {
                *slot = RFd::Closed;
                0
            }
            _ => errno::EINVAL,
        }
    }

    /// `socket`/`bind`/`listen` — trivially succeed; the listener is
    /// implied by the report's workload shape.
    pub fn socket(&mut self) -> i64 {
        self.alloc_fd(RFd::Listener)
    }

    /// `accept` — logged: recorded fd result; modeled: next conn if any.
    pub fn accept(&mut self) -> Result<i64, SyscallDivergence> {
        let logged = self.next_log(Sys::Accept)?;
        match logged {
            Some(rec) => {
                if rec.ret >= 0 {
                    let idx = self.next_conn;
                    self.next_conn += 1;
                    let fd = self.alloc_fd(RFd::Conn { idx, pos: 0 });
                    // The recorded fd number may differ from ours if fd
                    // allocation interleaved differently; ours is
                    // deterministic, so use ours (the program only passes
                    // it back opaquely).
                    Ok(fd)
                } else {
                    Ok(rec.ret)
                }
            }
            None => {
                if self.next_conn < self.streams.conns.len() {
                    let idx = self.next_conn;
                    self.next_conn += 1;
                    Ok(self.alloc_fd(RFd::Conn { idx, pos: 0 }))
                } else {
                    Ok(-1)
                }
            }
        }
    }

    /// `read` — the heart of §3.3.
    pub fn read(&mut self, fd: i64, n: i64) -> Result<ReadResult, SyscallDivergence> {
        let n = n.max(0) as usize;
        let logged = self.next_log(Sys::Read)?;
        let (stream_kind, pos, available): (Option<StreamSource>, usize, usize) =
            match self.fds.get(fd as usize) {
                Some(RFd::Stdin { pos }) => (
                    Some(StreamSource::Stdin),
                    *pos,
                    self.streams.stdin.len().saturating_sub(*pos),
                ),
                Some(RFd::File { path, pos }) => {
                    let len = self
                        .streams
                        .files
                        .get(path)
                        .map(|d| d.len())
                        .or_else(|| self.fs.open_read(path).ok().map(|d| d.len()))
                        .unwrap_or(0);
                    (
                        Some(StreamSource::File(path.clone())),
                        *pos,
                        len.saturating_sub(*pos),
                    )
                }
                Some(RFd::Conn { idx, pos }) => (
                    Some(StreamSource::Conn(*idx)),
                    *pos,
                    self.streams
                        .conns
                        .get(*idx)
                        .map(|c| c.len())
                        .unwrap_or(0)
                        .saturating_sub(*pos),
                ),
                _ => (None, 0, 0),
            };
        let Some(kind) = stream_kind else {
            return Ok(ReadResult {
                ret: errno::EINVAL,
                bytes: Vec::new(),
                stream: None,
                model_event: None,
            });
        };

        let (ret, model_event) = match logged {
            Some(rec) => (rec.ret, None),
            None => match self.mode {
                SyscallMode::Logged(_) => {
                    // Log exhausted: behave like the kernel would (drain).
                    (available.min(n) as i64, None)
                }
                SyscallMode::Modeled => {
                    let default = available.min(n) as i64;
                    let (k, v) = self.model_event(default, -1, n as i64);
                    (v, Some((k, -1, n as i64)))
                }
            },
        };
        let deliver = ret.clamp(0, available.min(n) as i64) as usize;
        let bytes = self.stream_bytes(&kind, pos, deliver);
        self.advance_fd(fd, deliver);
        Ok(ReadResult {
            ret,
            bytes,
            stream: Some((kind, pos)),
            model_event,
        })
    }

    fn stream_bytes(&self, kind: &StreamSource, pos: usize, n: usize) -> Vec<u8> {
        let src: &[u8] = match kind {
            StreamSource::Stdin => &self.streams.stdin,
            StreamSource::File(path) => match self.streams.files.get(path) {
                Some(d) => d,
                None => {
                    return self.fs.open_read(path).ok().map_or(Vec::new(), |d| {
                        d.iter().skip(pos).take(n).copied().collect()
                    })
                }
            },
            StreamSource::Conn(idx) => match self.streams.conns.get(*idx) {
                Some(d) => d,
                None => return Vec::new(),
            },
        };
        src.iter().skip(pos).take(n).copied().collect()
    }

    fn advance_fd(&mut self, fd: i64, n: usize) {
        match self.fds.get_mut(fd as usize) {
            Some(RFd::Stdin { pos })
            | Some(RFd::File { pos, .. })
            | Some(RFd::Conn { pos, .. }) => *pos += n,
            _ => {}
        }
    }

    /// `select` — logged flags or per-fd model variables.
    pub fn select(&mut self, fds: &[i64]) -> Result<SelectResult, SyscallDivergence> {
        let logged = self.next_log(Sys::Select)?;
        match logged {
            Some(rec) => {
                let mut flags = rec.flags.clone();
                flags.resize(fds.len(), 0);
                Ok(SelectResult {
                    ret: rec.ret,
                    flags,
                    flag_events: vec![None; fds.len()],
                    ret_event: None,
                })
            }
            None => {
                let modeled = matches!(self.mode, SyscallMode::Modeled);
                let mut flags = Vec::with_capacity(fds.len());
                let mut flag_events = Vec::with_capacity(fds.len());
                for fd in fds {
                    let natural = self.natural_ready(*fd) as i64;
                    if modeled {
                        let (k, v) = self.model_event(natural, 0, 1);
                        flags.push(v);
                        flag_events.push(Some((k, 0, 1)));
                    } else {
                        flags.push(natural);
                        flag_events.push(None);
                    }
                }
                let ret: i64 = flags.iter().sum();
                Ok(SelectResult {
                    ret,
                    flags,
                    flag_events,
                    ret_event: None,
                })
            }
        }
    }

    fn natural_ready(&self, fd: i64) -> bool {
        match self.fds.get(fd as usize) {
            Some(RFd::Listener) => self.next_conn < self.streams.conns.len(),
            Some(RFd::Conn { idx, pos }) => self
                .streams
                .conns
                .get(*idx)
                .map(|c| *pos <= c.len())
                .unwrap_or(false),
            Some(RFd::Stdin { pos }) => *pos < self.streams.stdin.len(),
            Some(RFd::File { .. }) | Some(RFd::Stdout) => true,
            _ => false,
        }
    }

    /// `time` — logged value or model variable.
    pub fn time(&mut self) -> ModeledResult {
        match self.next_log(Sys::Time)? {
            Some(rec) => Ok((rec.ret, None)),
            None => {
                self.clock += 2;
                let default = self.clock;
                if matches!(self.mode, SyscallMode::Modeled) {
                    let (k, v) = self.model_event(default, 0, i64::MAX / 2);
                    Ok((v, Some((k, 0, i64::MAX / 2))))
                } else {
                    Ok((default, None))
                }
            }
        }
    }

    /// `rand` — logged value or model variable.
    pub fn rand(&mut self) -> ModeledResult {
        match self.next_log(Sys::Rand)? {
            Some(rec) => Ok((rec.ret, None)),
            None => {
                let default = 4; // chosen by fair dice roll in the model
                if matches!(self.mode, SyscallMode::Modeled) {
                    let (k, v) = self.model_event(default, 0, 0x7fff);
                    Ok((v, Some((k, 0, 0x7fff))))
                } else {
                    Ok((default, None))
                }
            }
        }
    }

    /// Deterministic filesystem calls.
    pub fn fs_call(&mut self, sys: Sys, path: &[u8], a: i64, b: i64) -> i64 {
        match sys {
            Sys::Mkdir => self.fs.mkdir(path, a),
            Sys::Mknod => self.fs.mknod(path, a, b),
            Sys::Mkfifo => self.fs.mkfifo(path, a),
            Sys::Stat => self.fs.stat(path),
            Sys::Unlink => self.fs.unlink(path),
            _ => errno::EINVAL,
        }
    }

    /// `getuid`.
    pub fn getuid(&self) -> i64 {
        self.uid
    }

    /// `write` — sinks bytes, returns the count.
    pub fn write(&mut self, fd: i64, bytes: &[u8]) -> i64 {
        match self.fds.get(fd as usize) {
            Some(RFd::Stdout) | Some(RFd::Conn { .. }) => bytes.len() as i64,
            Some(RFd::File { path, .. }) => {
                let path = path.clone();
                self.fs.append(&path, bytes)
            }
            _ => errno::EINVAL,
        }
    }

    /// Number of model events allocated so far.
    pub fn nondet_events(&self) -> usize {
        self.nondet_seq
    }

    /// Logged records consumed.
    pub fn log_consumed(&self) -> usize {
        self.log_pos
    }

    /// True when the syscall log (if any) has been fully consumed.
    pub fn log_exhausted(&self) -> bool {
        match &self.mode {
            SyscallMode::Logged(log) => self.log_pos >= log.records.len(),
            SyscallMode::Modeled => true,
        }
    }
}

fn normalize(path: &[u8]) -> Vec<u8> {
    if path.first() == Some(&b'/') {
        path.to_vec()
    } else {
        let mut p = vec![b'/'];
        p.extend_from_slice(path);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams_with_conn(bytes: &[u8]) -> Streams {
        Streams {
            argv: vec![b"prog".to_vec()],
            stdin: Vec::new(),
            files: HashMap::new(),
            conns: vec![bytes.to_vec()],
        }
    }

    #[test]
    fn logged_read_returns_exact_counts() {
        let mut log = SyscallLog::new();
        log.push(SysRecord {
            sys: Sys::Accept,
            ret: 3,
            flags: vec![],
        });
        log.push(SysRecord {
            sys: Sys::Read,
            ret: 3,
            flags: vec![],
        });
        log.push(SysRecord {
            sys: Sys::Read,
            ret: 2,
            flags: vec![],
        });
        let mut env = ReplayEnv::new(
            streams_with_conn(b"hello"),
            SimFs::new(),
            SyscallMode::Logged(log),
            Vec::new(),
        );
        let fd = {
            env.socket();
            env.accept().unwrap()
        };
        let r1 = env.read(fd, 100).unwrap();
        assert_eq!(r1.ret, 3);
        assert_eq!(r1.bytes, b"hel");
        assert_eq!(r1.stream, Some((StreamSource::Conn(0), 0)));
        let r2 = env.read(fd, 100).unwrap();
        assert_eq!(r2.ret, 2);
        assert_eq!(r2.bytes, b"lo");
        assert_eq!(r2.stream, Some((StreamSource::Conn(0), 3)));
    }

    #[test]
    fn log_order_mismatch_is_divergence() {
        let mut log = SyscallLog::new();
        log.push(SysRecord {
            sys: Sys::Select,
            ret: 1,
            flags: vec![1],
        });
        let mut env = ReplayEnv::new(
            streams_with_conn(b"x"),
            SimFs::new(),
            SyscallMode::Logged(log),
            Vec::new(),
        );
        env.socket();
        let fd = env.accept();
        // accept is a logged call; the log has Select first -> divergence.
        assert!(fd.is_err());
    }

    #[test]
    fn modeled_read_uses_assignment_values() {
        let mut env = ReplayEnv::new(
            streams_with_conn(b"abcdef"),
            SimFs::new(),
            SyscallMode::Modeled,
            vec![2, 4], // event 0 -> ret 2, event 1 -> ret 4
        );
        env.socket();
        let fd = env.accept().unwrap();
        let r1 = env.read(fd, 6).unwrap();
        assert_eq!(r1.ret, 2);
        assert_eq!(r1.bytes, b"ab");
        assert_eq!(r1.model_event, Some((0, -1, 6)));
        let r2 = env.read(fd, 6).unwrap();
        assert_eq!(r2.ret, 4);
        assert_eq!(r2.bytes, b"cdef");
    }

    #[test]
    fn modeled_read_defaults_to_full_drain() {
        let mut env = ReplayEnv::new(
            streams_with_conn(b"abc"),
            SimFs::new(),
            SyscallMode::Modeled,
            Vec::new(),
        );
        env.socket();
        let fd = env.accept().unwrap();
        let r = env.read(fd, 100).unwrap();
        assert_eq!(r.ret, 3, "initially returns all available input");
    }

    #[test]
    fn logged_select_returns_recorded_flags() {
        let mut log = SyscallLog::new();
        log.push(SysRecord {
            sys: Sys::Select,
            ret: 1,
            flags: vec![0, 1],
        });
        let mut env = ReplayEnv::new(
            streams_with_conn(b"x"),
            SimFs::new(),
            SyscallMode::Logged(log),
            Vec::new(),
        );
        let r = env.select(&[3, 4]).unwrap();
        assert_eq!(r.ret, 1);
        assert_eq!(r.flags, vec![0, 1]);
    }

    #[test]
    fn filesystem_calls_replay_deterministically() {
        let mut env = ReplayEnv::new(
            Streams::default(),
            SimFs::new(),
            SyscallMode::Modeled,
            Vec::new(),
        );
        assert_eq!(env.fs_call(Sys::Mkdir, b"/d", 0, 0), 0);
        assert_eq!(env.fs_call(Sys::Mkdir, b"/d", 0, 0), errno::EEXIST);
        assert_eq!(env.fs_call(Sys::Stat, b"/d", 0, 0), 0);
    }

    #[test]
    fn candidate_files_are_visible() {
        let mut streams = Streams::default();
        streams.files.insert(b"/in/a".to_vec(), b"content".to_vec());
        let mut env = ReplayEnv::new(streams, SimFs::new(), SyscallMode::Modeled, Vec::new());
        let fd = env.open(b"/in/a", 0);
        assert!(fd >= 3);
        let r = env.read(fd, 100).unwrap();
        assert_eq!(r.bytes, b"content");
    }

    #[test]
    fn model_events_are_sequential_and_stable() {
        let run = |assign: Vec<i64>| {
            let mut env = ReplayEnv::new(
                streams_with_conn(b"abcd"),
                SimFs::new(),
                SyscallMode::Modeled,
                assign,
            );
            env.socket();
            let fd = env.accept().unwrap();
            let a = env.read(fd, 4).unwrap().model_event.unwrap().0;
            let b = env.read(fd, 4).unwrap().model_event.unwrap().0;
            (a, b)
        };
        assert_eq!(run(vec![]), (0, 1));
        assert_eq!(run(vec![1, 1]), (0, 1), "event ids stable across runs");
    }
}
