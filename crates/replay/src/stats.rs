//! Logged/unlogged symbolic-branch statistics (Tables 4, 7 and 8).
//!
//! The paper correlates replay time with "the number of symbolic branch
//! locations NOT logged". These helpers compute, for a given plan and the
//! *true* buggy execution, how many symbolic branch locations (and
//! executions) were covered by the log versus left for the search.

use concolic::{InputSpec, Profile};
use instrument::Plan;
use serde::{Deserialize, Serialize};

/// Logged/unlogged split of the symbolic branches of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogStats {
    /// Symbolic branch locations covered by the plan.
    pub logged_locs: usize,
    /// Executions of those locations.
    pub logged_execs: u64,
    /// Symbolic branch locations not covered by the plan.
    pub unlogged_locs: usize,
    /// Executions of those locations.
    pub unlogged_execs: u64,
}

impl LogStats {
    /// Splits a (true-execution) profile by a plan's coverage.
    pub fn from_profile(profile: &Profile, plan: &Plan) -> LogStats {
        let mut s = LogStats::default();
        for (i, sym_execs) in profile.symbolic.iter().enumerate() {
            if *sym_execs == 0 {
                continue;
            }
            let covered = plan.instrumented.get(i).copied().unwrap_or(false);
            if covered {
                s.logged_locs += 1;
                s.logged_execs += sym_execs;
            } else {
                s.unlogged_locs += 1;
                s.unlogged_execs += sym_execs;
            }
        }
        s
    }

    /// Formats like the paper's table cells: `locs / execs`.
    pub fn logged_cell(&self) -> String {
        format!("{} / {}", self.logged_locs, self.logged_execs)
    }

    /// Formats the not-logged cell.
    pub fn unlogged_cell(&self) -> String {
        if self.unlogged_locs == 0 {
            "0".to_string()
        } else {
            format!("{} / {}", self.unlogged_locs, self.unlogged_execs)
        }
    }
}

/// The concrete content of every symbolic input slot of a spec, used to
/// build the assignment of the *true* (recorded) execution.
#[derive(Debug, Clone, Default)]
pub struct InputParts {
    /// Bytes of each symbolic argv argument, in argv order.
    pub argv_sym: Vec<Vec<u8>>,
    /// stdin bytes.
    pub stdin: Vec<u8>,
    /// File contents, in spec order.
    pub files: Vec<Vec<u8>>,
    /// Per-connection bytes (packets flattened), in spec order.
    pub conns: Vec<Vec<u8>>,
}

/// Flattens concrete input parts into a solver assignment, following the
/// allocation order of `InputVars::alloc` (argv, stdin, files, conns).
/// Short parts are zero-padded to the spec's lengths; long parts are
/// truncated.
pub fn assignment_from_input(spec: &InputSpec, parts: &InputParts) -> Vec<i64> {
    let mut out = Vec::with_capacity(spec.n_symbolic_bytes());
    let mut sym_arg = 0usize;
    for a in &spec.argv {
        if let concolic::ArgSpec::Symbolic(n) = a {
            let bytes = parts.argv_sym.get(sym_arg).cloned().unwrap_or_default();
            for i in 0..*n {
                out.push(bytes.get(i).copied().unwrap_or(0) as i64);
            }
            sym_arg += 1;
        }
    }
    for i in 0..spec.stdin_len {
        out.push(parts.stdin.get(i).copied().unwrap_or(0) as i64);
    }
    for (fi, f) in spec.files.iter().enumerate() {
        let bytes = parts.files.get(fi).cloned().unwrap_or_default();
        for i in 0..f.len {
            out.push(bytes.get(i).copied().unwrap_or(0) as i64);
        }
    }
    for (ci, c) in spec.clients.iter().enumerate() {
        let total: usize = c.packet_lens.iter().sum();
        let bytes = parts.conns.get(ci).cloned().unwrap_or_default();
        for i in 0..total {
            out.push(bytes.get(i).copied().unwrap_or(0) as i64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concolic::ArgSpec;
    use instrument::Method;
    use minic::BranchId;

    #[test]
    fn splits_profile_by_plan() {
        let mut p = Profile::new(4);
        p.observe(BranchId(0), true); // symbolic, will be logged
        p.observe(BranchId(0), true);
        p.observe(BranchId(1), true); // symbolic, not logged
        p.observe(BranchId(2), false); // concrete: ignored entirely
        let plan = Plan {
            method: Method::Dynamic,
            instrumented: vec![true, false, true, false],
            ..Plan::none(4)
        };
        let s = LogStats::from_profile(&p, &plan);
        assert_eq!(s.logged_locs, 1);
        assert_eq!(s.logged_execs, 2);
        assert_eq!(s.unlogged_locs, 1);
        assert_eq!(s.unlogged_execs, 1);
        assert_eq!(s.logged_cell(), "1 / 2");
        assert_eq!(s.unlogged_cell(), "1 / 1");
    }

    #[test]
    fn assignment_layout_matches_alloc_order() {
        let spec = InputSpec {
            argv: vec![ArgSpec::Fixed(b"p".to_vec()), ArgSpec::Symbolic(2)],
            stdin_len: 1,
            files: vec![concolic::FileSpec {
                path: "/f".into(),
                len: 2,
            }],
            clients: vec![concolic::ClientSpec {
                packet_lens: vec![1, 1],
                close_after: true,
            }],
        };
        let parts = InputParts {
            argv_sym: vec![b"ab".to_vec()],
            stdin: b"S".to_vec(),
            files: vec![b"fg".to_vec()],
            conns: vec![b"xy".to_vec()],
        };
        let a = assignment_from_input(&spec, &parts);
        assert_eq!(
            a,
            vec![
                b'a' as i64,
                b'b' as i64,
                b'S' as i64,
                b'f' as i64,
                b'g' as i64,
                b'x' as i64,
                b'y' as i64
            ]
        );
    }

    #[test]
    fn padding_and_truncation() {
        let spec = InputSpec {
            argv: vec![ArgSpec::Symbolic(4)],
            ..InputSpec::default()
        };
        let parts = InputParts {
            argv_sym: vec![b"hello-too-long".to_vec()],
            ..InputParts::default()
        };
        let a = assignment_from_input(&spec, &parts);
        assert_eq!(a.len(), 4);
        let short = InputParts {
            argv_sym: vec![b"x".to_vec()],
            ..InputParts::default()
        };
        let b = assignment_from_input(&spec, &short);
        assert_eq!(b, vec![b'x' as i64, 0, 0, 0]);
    }
}
