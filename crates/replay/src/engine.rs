//! The bug-reproduction engine (§3).
//!
//! Drives replay runs guided by the partial branch trace: each run
//! executes the program on a candidate input; divergence from the log
//! aborts the run and queues a pending constraint set; the solver turns
//! pending sets into new candidate inputs. Reproduction succeeds when a
//! run reaches the recorded crash site (same source location, whole log
//! consumed) or crashes with the recorded crash itself.
//!
//! "We currently use a simple depth-first approach" (§3.2) — scheduling
//! is delegated to the shared frontier ([`search::Frontier`]): pending
//! sets live on a stack by default, with 2(b) forced-direction sets (and
//! the syscall-divergence recovery sets) on a priority lane popped first,
//! which is what makes the log *guide* the search. Breadth-mixed
//! generational order, per-branch quotas and drain restarts are available
//! through [`search::SearchLimits::policy`].

use crate::env::{realize_streams, ReplayEnv, SyscallMode};
use crate::host::{
    ReplayHost, BRANCH_DIVERGENCE, CHECKPOINT_DIVERGENCE, CURSOR_OVERRUN, REACHED_CRASH_SITE,
    SYSCALL_DIVERGENCE,
};
use concolic::{
    restart_seed, seeded_assignment, Concretization, InputSpec, InputVars, PathStep, StepOrigin,
};
use instrument::{BugReport, Plan};
use minic::memory::pack;
use minic::vm::{RunOutcome, Vm};
use minic::CompiledProgram;
use oskit::SimFs;
use search::{Frontier, FrontierStats, RepairTracker, SearchLimits, SearchPolicy};
use solver::{mix_seed, ConstraintSet, ExprArena, Lit, Node, Op, PrefixCache, SolveCfg, VarId};
use std::collections::{HashMap, HashSet};

pub use crate::escalation::{EscalationReport, LocationEscalation};

/// Budget for one reproduction attempt. `max_runs` is the deterministic
/// stand-in for the paper's 1-hour replay timeout. The knob surface
/// shared with `concolic::Budget` lives in [`search::SearchLimits`],
/// embedded behind `Deref` so `budget.max_runs` and friends read and
/// write exactly as before the unification; only the replay default
/// (512 runs — a replay that stops short is useless) differs.
#[derive(Debug, Clone)]
pub struct ReplayBudget {
    /// The shared search knobs (run cap, fuel, wall clock, frontier
    /// caps, policy, workers, prefix cache).
    pub limits: SearchLimits,
    /// How symbolic address components are concretized (offset-
    /// generalizing region bounds by default). Engine-specific: not
    /// part of the shared limits.
    pub concretization: Concretization,
}

impl Default for ReplayBudget {
    fn default() -> Self {
        ReplayBudget {
            limits: SearchLimits::replay(),
            concretization: Concretization::default(),
        }
    }
}

impl std::ops::Deref for ReplayBudget {
    type Target = SearchLimits;
    fn deref(&self) -> &SearchLimits {
        &self.limits
    }
}

impl std::ops::DerefMut for ReplayBudget {
    fn deref_mut(&mut self) -> &mut SearchLimits {
        &mut self.limits
    }
}

impl From<SearchLimits> for ReplayBudget {
    fn from(limits: SearchLimits) -> Self {
        ReplayBudget {
            limits,
            ..ReplayBudget::default()
        }
    }
}

impl From<ReplayBudget> for SearchLimits {
    fn from(b: ReplayBudget) -> Self {
        b.limits
    }
}

impl ReplayBudget {
    /// Sets the run cap.
    #[deprecated(note = "write `budget.max_runs` (via SearchLimits) directly")]
    pub fn set_max_runs(&mut self, n: usize) {
        self.limits.max_runs = n;
    }

    /// Sets the worker count.
    #[deprecated(note = "write `budget.workers` (via SearchLimits) directly")]
    pub fn set_workers(&mut self, n: usize) {
        self.limits.workers = n;
    }

    /// Sets the scheduling policy.
    #[deprecated(note = "write `budget.policy` (via SearchLimits) directly")]
    pub fn set_policy(&mut self, policy: SearchPolicy) {
        self.limits.policy = policy;
    }
}

/// Configuration of a reproduction attempt.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The input shape the developer replays against (same shape as the
    /// deployment workload; contents are searched for).
    pub spec: InputSpec,
    /// Replica of the deployment filesystem (concrete parts).
    pub base_fs: SimFs,
    /// Search budget.
    pub budget: ReplayBudget,
    /// Solver configuration.
    pub solve: SolveCfg,
    /// Seed for the initial candidate input.
    pub seed: u64,
    /// Optional starting candidate (controllable assignment). Developers
    /// often have a plausible input at hand (a regression corpus entry,
    /// a sanitized capture); starting the guided search there instead of
    /// from random printables can skip most of the log re-derivation.
    pub initial_hint: Option<Vec<i64>>,
}

impl ReplayConfig {
    /// Default configuration over an input shape.
    pub fn new(spec: InputSpec) -> Self {
        ReplayConfig {
            spec,
            base_fs: SimFs::new(),
            budget: ReplayBudget::default(),
            solve: SolveCfg::default(),
            seed: 11,
            initial_hint: None,
        }
    }
}

/// Outcome of a reproduction attempt.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// True if the bug was reproduced within budget.
    pub reproduced: bool,
    /// Replay runs performed.
    pub runs: usize,
    /// Solver invocations.
    pub solver_calls: usize,
    /// Total VM instructions across runs (deterministic work metric).
    pub total_instrs: u64,
    /// Total cost units across runs.
    pub total_units: u64,
    /// Wall-clock milliseconds spent.
    pub wall_ms: u64,
    /// The reproducing argv, if found.
    pub witness_argv: Option<Vec<Vec<u8>>>,
    /// The full reproducing assignment (inputs + model values).
    pub witness_assignment: Option<Vec<i64>>,
    /// True if the run or wall budget ran out (the paper's ∞ entries).
    pub timed_out: bool,
    /// True if the frontier drained with budget left (and the policy did
    /// not restart) — a genuinely exhausted search, not a timeout.
    pub exhausted: bool,
    /// Syscall-order divergence aborts survived during the search.
    pub syscall_divergences: u64,
    /// Per-location stream overrun aborts (cursor format only): runs
    /// killed early because one location consumed past its recorded
    /// stream while other bits remained.
    pub cursor_overruns: u64,
    /// Syscall-anchored checkpoint divergence aborts: runs killed at a
    /// logged syscall boundary because some per-location cursor position
    /// disagreed with the recorded snapshot — the same resynchronization
    /// signal as a cursor overrun, caught earlier.
    pub checkpoint_divergences: u64,
    /// Per-branch-location escalation evidence gathered over the whole
    /// search — what the next instrumentation plan generation consumes
    /// (see [`EscalationReport`]).
    pub escalation: EscalationReport,
    /// Concretizations emitted as offset-generalizing ranges, summed
    /// across runs.
    pub concretization_ranges: u64,
    /// Concretizations pinned at emission, summed across runs.
    pub concretization_pins: u64,
    /// Solver calls that retried with the hard-pinned variant after the
    /// bounded form went unsolved.
    pub pin_fallbacks: u64,
    /// Committed solver calls that started from a cached path prefix.
    pub cache_hits: u64,
    /// Committed solver calls that found no cached prefix (including all
    /// calls with the prefix cache disabled).
    pub cache_misses: u64,
    /// Total literals skipped via cached prefixes across all hits.
    pub prefix_len_saved: u64,
    /// Frontier scheduling counters (including forced-set repair
    /// activations and cutoffs).
    pub frontier: FrontierStats,
    /// Aggregate per-run stats of the last (or successful) run.
    pub last_run_stats: crate::host::ReplayRunStats,
}

/// The reproduction engine.
pub struct ReplayEngine<'p> {
    cp: &'p CompiledProgram,
    plan: Plan,
    report: BugReport,
    cfg: ReplayConfig,
}

impl<'p> ReplayEngine<'p> {
    /// Creates an engine from the developer-retained plan and the
    /// shipped bug report.
    pub fn new(cp: &'p CompiledProgram, plan: Plan, report: BugReport, cfg: ReplayConfig) -> Self {
        ReplayEngine {
            cp,
            plan,
            report,
            cfg,
        }
    }

    fn initial_assignment(&self, n: usize) -> Vec<i64> {
        match &self.cfg.initial_hint {
            Some(hint) => {
                let mut a = hint.clone();
                a.resize(n, 0x20);
                a
            }
            None => seeded_assignment(n, self.cfg.seed),
        }
    }

    /// Offers the first not-yet-explored rung of the forced set's repair
    /// ladder (`attempt` is a starting offset). The frontier's dedup
    /// rejects rungs explored on earlier bursts, so successive bursts
    /// naturally walk deeper, and a duplicate flip never wastes the
    /// attempt. Returns whether any repair was accepted.
    fn offer_repair_ladder(frontier: &mut Frontier, info: &ForcedInfo, attempt: usize) -> bool {
        for s in info.ladder().skip(attempt) {
            let mut repair = ConstraintSet::new();
            for st in &info.steps[..s] {
                push_step(&mut repair, st);
            }
            repair.push(info.steps[s].lit.negated());
            if frontier.offer_repair(repair, info.seed.clone()) {
                if std::env::var("RETRACE_REPLAY_TRACE").is_ok() {
                    eprintln!("  repair offered: suspect at step {s} (attempt {attempt})");
                }
                return true;
            }
        }
        false
    }

    /// A fresh seeded candidate for the `r`-th drain restart.
    fn restart_assignment(&self, n: usize, r: u64) -> Vec<i64> {
        seeded_assignment(n, restart_seed(self.cfg.seed, r))
    }

    /// Runs the guided search to completion or budget exhaustion.
    ///
    /// `budget.workers <= 1` runs the fully serial engine; larger values
    /// shard the candidate search across that many worker threads (the
    /// internal `reproduce_parallel` path). Both produce the same
    /// search — the parallel engine commits speculative work strictly in
    /// the serial order — so every result field except `wall_ms` and the
    /// per-worker run split is worker-count invariant.
    pub fn reproduce(&self) -> ReplayResult {
        if self.cfg.budget.workers <= 1 {
            self.reproduce_serial()
        } else {
            self.reproduce_parallel()
        }
    }

    /// Executes one replay run under `assignment`, threading the arena
    /// through. `run_no` only labels `RETRACE_REPLAY_TRACE` output.
    fn exec_run(
        &self,
        arena: ExprArena,
        assignment: &[i64],
        syscall_mode: &SyscallMode,
        vars: &InputVars,
        run_no: usize,
    ) -> (RunArtifacts, ExprArena) {
        let n_controllable = vars.n_controllable as usize;
        let streams = realize_streams(&self.cfg.spec, vars, assignment);
        let traced_conns: Option<Vec<String>> =
            std::env::var("RETRACE_REPLAY_TRACE").ok().map(|_| {
                streams
                    .conns
                    .iter()
                    .map(|c| String::from_utf8_lossy(c).escape_default().to_string())
                    .collect()
            });
        let nondet_assign: Vec<i64> = assignment
            .get(n_controllable..)
            .map(|s| s.to_vec())
            .unwrap_or_default();
        let env = ReplayEnv::new(
            streams,
            self.cfg.base_fs.clone(),
            syscall_mode.clone(),
            nondet_assign,
        );
        let argv = env.argv().to_vec();
        let mut host = ReplayHost::new(
            arena,
            env,
            self.plan.clone(),
            self.report.trace.clone(),
            vars.clone(),
            self.report.crash.loc,
        );
        host.concretization = self.cfg.budget.concretization;
        if self.plan.checkpoints {
            host.checkpoints = self.report.checkpoints.clone();
        }
        let mut vm = Vm::new(self.cp, host);
        vm.fuel = self.cfg.budget.fuel_per_run;
        vm.watch_loc = Some(self.report.crash.loc);
        vm.prepare(&argv);
        // Mark symbolic argv bytes.
        let objs: Vec<_> = vm.argv_objects().to_vec();
        for (ai, arg_vars) in vm.host.vars.argv.clone().iter().enumerate() {
            for (bi, vid) in arg_vars.iter().enumerate() {
                let e = vm.host.arena.var_expr(*vid);
                vm.mem
                    .set_shadow(pack(objs[ai], bi as u32), Some(e))
                    .expect("argv bytes exist");
            }
        }
        let outcome = vm.resume();
        let instrs = vm.meter.instrs;
        let units = vm.meter.units;
        let host = vm.host;
        let log_exhausted = host.log_exhausted();
        if let Some(conns) = traced_conns {
            eprintln!(
                "run {run_no}: outcome={outcome:?} bits={} recon={} sym_logged={} sym_unlogged={} path={} div={:?} cursors={:?} conns={conns:?}",
                host.stats.bits_consumed,
                host.stats.reconstructed_bits,
                host.stats.sym_logged_execs,
                host.stats.sym_unlogged_execs,
                host.path.len(),
                host.stats.divergent_branch,
                host.cursors.positions(),
            );
        }
        (
            RunArtifacts {
                outcome,
                argv,
                instrs,
                units,
                log_exhausted,
                stats: host.stats,
                path: host.path,
            },
            host.arena,
        )
    }

    /// Did this run reproduce the reported bug?
    fn is_success(&self, run: &RunArtifacts) -> bool {
        match &run.outcome {
            RunOutcome::Aborted(r) if r == REACHED_CRASH_SITE => true,
            RunOutcome::Crashed(c)
                if c.loc == self.report.crash.loc
                    && c.kind == self.report.crash.kind
                    && run.log_exhausted =>
            {
                true
            }
            _ => false,
        }
    }

    /// Banks one finished run into the frontier: recovery sets for
    /// syscall divergences and cursor overruns, the standard negated-
    /// literal pendings, and the forced set (with its repair metadata in
    /// `book`). Identical for the serial and parallel engines — the
    /// parallel engine calls it from the serial commit phase only, which
    /// also makes it the prefix cache's single writer.
    #[allow(clippy::too_many_arguments)]
    fn bank_offers(
        &self,
        run: &RunArtifacts,
        assignment: &[i64],
        arena: &mut ExprArena,
        vars: &InputVars,
        frontier: &mut Frontier,
        book: &mut RepairBook,
        cache: &mut PrefixCache,
    ) {
        let forced = matches!(&run.outcome, RunOutcome::Aborted(r) if r == BRANCH_DIVERGENCE);
        let syscall_div = matches!(&run.outcome, RunOutcome::Aborted(r) if r == SYSCALL_DIVERGENCE);
        // A checkpoint divergence is a cursor overrun caught earlier (at
        // the syscall boundary instead of at stream exhaustion): it earns
        // the same recovery flips and the same escalation evidence.
        let overrun = matches!(
            &run.outcome,
            RunOutcome::Aborted(r) if r == CURSOR_OVERRUN || r == CHECKPOINT_DIVERGENCE
        );
        let path = &run.path;
        let lits: Vec<Lit> = path.iter().map(|s| s.lit).collect();
        // Every executed step's literal held under this run's input, so
        // its prefixes are witnessed-satisfiable: register them so later
        // candidates sharing one skip straight to the divergent suffix.
        // A 2(b) abort's final literal points the *recorded* way, not
        // the executed way — it is unwitnessed, so it never registers.
        if self.cfg.budget.prefix_cache {
            let cut = path.len().saturating_sub(usize::from(forced));
            let executed = &path[..cut];
            let reg_lits: Vec<Lit> = executed
                .iter()
                .filter(|s| s.range.is_none())
                .map(|s| s.lit)
                .collect();
            let reg_ranges: Vec<solver::RangeConstraint> =
                executed.iter().filter_map(|s| s.range).collect();
            cache.register_path(arena, &reg_lits, &reg_ranges);
        }
        frontier.begin_run();

        // Syscall-divergence recovery: the run followed the branch log
        // but issued the wrong syscall, so the most recent unlogged
        // symbolic decision is the prime suspect. Queue the path so
        // far with that decision flipped on the priority lane — the
        // guided analogue of the 2(b) forced set. (The literal
        // path-so-far would be a no-op: the current candidate already
        // satisfies it, so the solver would hand it straight back.)
        // A per-location stream overrun earns the same recovery: the
        // prime suspect for a location executing too often is the
        // most recent unlogged symbolic decision — usually the loop
        // exit that kept the scan going.
        if syscall_div || overrun {
            // Only UNLOGGED branches qualify as suspects: a logged
            // step (case 2a) already agreed with the recorded
            // direction, and negating it would just force the next
            // candidate into a 2(b) divergence at that spot.
            let unlogged_sym = |i: usize| {
                i < self.cfg.budget.max_pending_lits
                    && matches!(path[i].origin, StepOrigin::Branch(b) if !self.plan.covers(b))
                    && !arena.support(lits[i].expr).is_empty()
            };
            let offer_flip = |frontier: &mut Frontier, d: usize| {
                let mut cs = ConstraintSet::new();
                for st in &path[..d] {
                    push_step(&mut cs, st);
                }
                cs.push(lits[d].negated());
                frontier.offer_priority(cs, assignment.to_vec(), true);
            };
            let recent = (0..lits.len()).rev().find(|&i| unlogged_sym(i));
            if let Some(d) = recent {
                offer_flip(frontier, d);
                // Escalation evidence: a syscall divergence is charged
                // to its prime suspect — the branch whose unlogged
                // decision the recovery flips.
                if syscall_div {
                    if let StepOrigin::Branch(b) = path[d].origin {
                        book.escalation.loc_mut(b.0).syscall_divergences += 1;
                    }
                }
            }
            // An overrun (or checkpoint divergence) names its own
            // location directly: the stream that consumed past its
            // recorded length.
            if overrun {
                if let Some((loc, _)) = run.stats.divergent_cursor {
                    book.escalation.loc_mut(loc).cursor_overruns += 1;
                }
            }
            // An overrun names a more precise suspect class: the
            // location re-executed because some unlogged *loop*
            // decision kept a scan going, and that decision may sit
            // above several unlogged body branches. Offer the most
            // recent unlogged loop-kind flip too (LIFO: popped
            // first); the dedup absorbs it when it IS the most
            // recent decision.
            if overrun {
                let is_loop = |i: usize| {
                    matches!(path[i].origin, StepOrigin::Branch(b) if matches!(
                        self.cp.branch(b).kind,
                        minic::BranchKind::While
                            | minic::BranchKind::DoWhile
                            | minic::BranchKind::For
                    ))
                };
                let loop_suspect = (0..lits.len())
                    .rev()
                    .find(|&i| unlogged_sym(i) && is_loop(i));
                if let Some(d) = loop_suspect.filter(|d| Some(*d) != recent) {
                    offer_flip(frontier, d);
                }
            }
        }

        // Standard pending sets: negate branch literals, offered in
        // the strategy's order (caps, quotas and dedup live in the
        // frontier; the caps bound quadratic prefix copying on long
        // server paths).
        for i in self.cfg.budget.policy.strategy.offer_order(lits.len()) {
            if frontier.run_full() {
                break;
            }
            let StepOrigin::Branch(bid) = path[i].origin else {
                continue;
            };
            if !frontier.depth_ok(i + 1) {
                continue;
            }
            // In a 2(b) abort the final literal is already forced;
            // don't negate it.
            if forced && i == lits.len() - 1 {
                continue;
            }
            if arena.support(lits[i].expr).is_empty() {
                continue;
            }
            let mut cs = ConstraintSet::new();
            for st in &path[..i] {
                push_step(&mut cs, st);
            }
            cs.push(lits[i].negated());
            frontier.offer(cs, assignment.to_vec(), Some(bid.0));
        }
        frontier.end_run();
        // The branch-divergence forced set (whole path; for a 2(b)
        // abort its last literal already points the recorded way)
        // goes on the priority lane: tried first. Its repair metadata
        // (the unlogged suspects an UNSAT burst will backtrack to) is
        // registered alongside; the evidence that triggers repair is
        // collected in the solve loop, where forced sets earn UNSAT
        // verdicts. (Divergence-count and duplicate-offer signals
        // were measured as repair triggers too: they reach the
        // 3(b)-style stalls whose forced sets always solve, but they
        // also tax the healthy dynamic rows — exp 3 (hc) nearly
        // tripled its run count — without making any combined row
        // finite, so repair stays scoped to UNSAT bursts.)
        if forced {
            let progressed = run.stats.bits_consumed > book.bits_high_water;
            if progressed {
                book.bits_high_water = run.stats.bits_consumed;
                book.tracker.reset_bursts();
            }
            let mut cs = ConstraintSet::new();
            for st in path {
                push_step(&mut cs, st);
            }
            let rp = self.cfg.budget.policy.forced_repair;
            let mut info_for_meta = None;
            if rp.enabled {
                // The suspect windows are wider than the attempt
                // budget so duplicate (already-explored) flips can be
                // walked past without exhausting the ladder.
                let window = (rp.max_repairs as usize).max(64);
                let suspects: Vec<usize> = path
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| {
                        matches!(st.origin, StepOrigin::Branch(b) if !self.plan.covers(b))
                            && !arena.support(st.lit.expr).is_empty()
                    })
                    .map(|(i, _)| i)
                    .take(window)
                    .collect();
                if let (Some(_), Some(&last)) = (suspects.first(), suspects.last()) {
                    // The burst key is the stall identity. Flat logs
                    // key on the log high-water mark: every UNSAT
                    // forced set while the mark stands still pools
                    // its evidence into one burst, however the
                    // aborting paths differ — and each deeper stall
                    // gets a fresh repair budget. Per-location logs
                    // key on the (location, cursor) that diverged:
                    // stalls at different locations are independent
                    // pathologies and must not share a burst or a
                    // repair budget.
                    let key = match run.stats.divergent_cursor {
                        Some((loc, pos)) => search::location_key(loc, pos),
                        None => book.bits_high_water as u128,
                    };
                    let info = ForcedInfo {
                        key,
                        steps: path[..=last].to_vec(),
                        suspects,
                        seed: assignment.to_vec(),
                    };
                    info_for_meta = Some(info);
                }
            }
            let cs_sig = search::signature(&cs);
            frontier.offer_priority(cs, assignment.to_vec(), false);
            if let Some(info) = info_for_meta {
                book.forced_meta.insert(cs_sig, info);
            }
            // Multi-byte string-literal forcing (adaptive plans): when
            // the plan carries forced literals for the diverging
            // location, pin the whole literal in one priority set
            // instead of re-deriving it byte by byte.
            self.offer_literal_pins(run, assignment, arena, vars, frontier);
        }
    }

    /// The multi-byte literal-forcing escalation rule. A 2(b) abort at a
    /// location the plan carries forced literals for (a `strcmp`-style
    /// scan cluster diagnosed by an earlier generation's replay) means
    /// the search is about to re-derive a known string one byte per run.
    /// When the forced step compares one input byte against a constant
    /// that occurs in a literal, the matching alignment pins the *whole*
    /// literal over the surrounding bytes as a single priority set — one
    /// solve replaces a byte-by-byte derivation burst. Wrong alignments
    /// simply go UNSAT and cost one solver call each, so offers are
    /// capped.
    fn offer_literal_pins(
        &self,
        run: &RunArtifacts,
        assignment: &[i64],
        arena: &mut ExprArena,
        vars: &InputVars,
        frontier: &mut Frontier,
    ) {
        let Some((loc, _)) = run.stats.divergent_branch else {
            return;
        };
        let literals = self.plan.forced_literals_at(loc).to_vec();
        if literals.is_empty() {
            return;
        }
        let Some(last) = run.path.last() else {
            return;
        };
        // Peel unary wrappers (Bool normalization, negations) off the
        // forced literal and match a byte-vs-constant comparison either
        // way around.
        let mut e = last.lit.expr;
        while let Node::Un(_, inner) = arena.node(e) {
            e = inner;
        }
        let (v, c) = match arena.node(e) {
            Node::Bin(Op::Eq | Op::Ne, a, b) => match (arena.node(a), arena.node(b)) {
                (Node::Var(v), Node::Const(c)) | (Node::Const(c), Node::Var(v)) => (v, c),
                _ => return,
            },
            _ => return,
        };
        let n_controllable = vars.n_controllable as usize;
        if (v.0 as usize) >= n_controllable {
            return;
        }
        let mut offered = 0usize;
        'lits: for lit in &literals {
            for j in 0..lit.len() {
                if i64::from(lit[j]) != c {
                    continue;
                }
                let Some(start) = (v.0 as usize).checked_sub(j) else {
                    continue;
                };
                if start + lit.len() > n_controllable {
                    continue;
                }
                let mut cs = ConstraintSet::new();
                for st in &run.path[..run.path.len() - 1] {
                    push_step(&mut cs, st);
                }
                for (t, byte) in lit.iter().enumerate() {
                    let var = arena.var_expr(VarId((start + t) as u32));
                    let konst = arena.constant(i64::from(*byte));
                    let pin = arena.bin(Op::Eq, var, konst);
                    cs.push(Lit {
                        expr: pin,
                        positive: true,
                    });
                }
                frontier.offer_priority(cs, assignment.to_vec(), true);
                offered += 1;
                if offered >= 4 {
                    break 'lits;
                }
            }
        }
        if offered > 0 && std::env::var("RETRACE_REPLAY_TRACE").is_ok() {
            eprintln!("  literal pins offered: {offered} at loc {loc}");
        }
    }

    /// Handles an UNSAT verdict for the set with signature `sig`: when
    /// it was a registered forced set, account the thrash burst and (on
    /// a burst) queue the repair ladder. The parallel engine must call
    /// this only after restoring any speculatively popped tail — a
    /// ladder offer mutates the frontier.
    fn handle_unsat(&self, sig: u128, frontier: &mut Frontier, book: &mut RepairBook) {
        // A forced set went UNSAT: on a burst, backtrack to the
        // earliest unlogged suspect (attempt k starts the ladder
        // at the k-th rung; dedup walks past already-explored
        // flips) and queue the repaired prefix on the priority
        // lane.
        if let Some(info) = book.forced_meta.get(&sig) {
            frontier.note_forced_unsat();
            // Escalation evidence: charge the UNSAT to the stalled
            // location — decoded from a per-location burst key, or the
            // forced step's own branch for flat logs.
            let hot_loc = if (info.key >> 100) & 1 == 1 {
                Some(((info.key >> 64) & 0xffff_ffff) as u32)
            } else {
                info.steps.last().and_then(|st| match st.origin {
                    StepOrigin::Branch(b) => Some(b.0),
                    StepOrigin::Concretization => None,
                })
            };
            if let Some(loc) = hot_loc {
                book.escalation.loc_mut(loc).forced_failures += 1;
            }
            let rp = self.cfg.budget.policy.forced_repair;
            match book.tracker.note_thrash(info.key, &rp) {
                Some(attempt) => {
                    if let Some(loc) = hot_loc {
                        book.escalation.loc_mut(loc).repair_bursts += 1;
                    }
                    let offered = Self::offer_repair_ladder(frontier, info, attempt as usize);
                    if !offered && book.counted_cutoffs.insert(info.key) {
                        frontier.note_repair_cutoff();
                    }
                }
                None => {
                    // Either the burst threshold is unmet, or the
                    // per-prefix budget ran out (count the latter
                    // once).
                    if book.tracker.cut_off(info.key, &rp) && book.counted_cutoffs.insert(info.key)
                    {
                        frontier.note_repair_cutoff();
                    }
                }
            }
        }
    }

    fn reproduce_serial(&self) -> ReplayResult {
        let start = std::time::Instant::now();
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &self.cfg.spec);
        let n_controllable = vars.n_controllable as usize;
        let mut assignment = self.initial_assignment(n_controllable);

        let mut frontier = Frontier::new(
            self.cfg.budget.policy.clone(),
            self.cfg.budget.max_pendings_per_run,
            self.cfg.budget.max_pending_lits,
        );
        let mut runs = 0usize;
        let mut solver_calls = 0usize;
        let mut total_instrs = 0u64;
        let mut total_units = 0u64;
        let mut syscall_divergences = 0u64;
        let mut cursor_overruns = 0u64;
        let mut checkpoint_divergences = 0u64;
        let mut concretization_ranges = 0u64;
        let mut concretization_pins = 0u64;
        let mut pin_fallbacks = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut prefix_len_saved = 0u64;
        let mut pcache = PrefixCache::new();
        // Forced-set repair state: metadata per queued forced set, thrash
        // accounting per shared prefix key, and the log high-water mark
        // that defines "progress" (bursts only accumulate while it
        // stands still).
        let mut book = RepairBook::new();
        // High-water mark at the last dedup reset: a drain only earns a
        // fresh re-derivation epoch after visible progress, so resets
        // cannot loop.
        let mut reset_high_water = u64::MAX;
        let mut timed_out = false;
        #[allow(unused_assignments)]
        let mut last_stats = crate::host::ReplayRunStats::default();
        let wall_expired = |start: &std::time::Instant| {
            self.cfg.budget.max_wall_ms > 0
                && start.elapsed().as_millis() as u64 > self.cfg.budget.max_wall_ms
        };

        let syscall_mode = if self.report.syscalls.is_empty() {
            SyscallMode::Modeled
        } else {
            SyscallMode::Logged(self.report.syscalls.clone())
        };

        loop {
            // ---- one replay run -------------------------------------------
            let (run, arena_back) =
                self.exec_run(arena, &assignment, &syscall_mode, &vars, runs + 1);
            arena = arena_back;
            runs += 1;
            total_instrs += run.instrs;
            total_units += run.units;
            last_stats = run.stats.clone();
            concretization_ranges += last_stats.concretization_ranges;
            concretization_pins += last_stats.concretization_pins;
            // Escalation evidence: which instrumented locations this run
            // actually consumed log bits from.
            book.escalation
                .consulted
                .extend(run.stats.consulted.iter().copied());

            // ---- success checks --------------------------------------------
            if self.is_success(&run) {
                let mut escalation = std::mem::take(&mut book.escalation);
                escalation.runs = runs;
                return ReplayResult {
                    reproduced: true,
                    runs,
                    solver_calls,
                    total_instrs,
                    total_units,
                    wall_ms: start.elapsed().as_millis() as u64,
                    witness_argv: Some(run.argv),
                    witness_assignment: Some(assignment),
                    timed_out: false,
                    exhausted: false,
                    syscall_divergences,
                    cursor_overruns,
                    checkpoint_divergences,
                    escalation,
                    concretization_ranges,
                    concretization_pins,
                    pin_fallbacks,
                    cache_hits,
                    cache_misses,
                    prefix_len_saved,
                    frontier: frontier.into_stats(),
                    last_run_stats: last_stats,
                };
            }
            if runs >= self.cfg.budget.max_runs || wall_expired(&start) {
                return self.failed(
                    runs,
                    solver_calls,
                    total_instrs,
                    total_units,
                    start,
                    Outcome {
                        timed_out: true,
                        exhausted: false,
                        syscall_divergences,
                        cursor_overruns,
                        checkpoint_divergences,
                        escalation: taken(&mut book, runs),
                        concretization_ranges,
                        concretization_pins,
                        pin_fallbacks,
                        cache_hits,
                        cache_misses,
                        prefix_len_saved,
                        frontier: frontier.into_stats(),
                    },
                    last_stats,
                );
            }

            // ---- schedule pending sets -------------------------------------
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == SYSCALL_DIVERGENCE) {
                syscall_divergences += 1;
            }
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == CURSOR_OVERRUN) {
                cursor_overruns += 1;
            }
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == CHECKPOINT_DIVERGENCE) {
                checkpoint_divergences += 1;
            }
            self.bank_offers(
                &run,
                &assignment,
                &mut arena,
                &vars,
                &mut frontier,
                &mut book,
                &mut pcache,
            );
            arena.freeze();

            // ---- pick and solve the next pending set -----------------------
            let mut next = None;
            while let Some(pending) = frontier.pop() {
                solver_calls += 1;
                let scfg = SolveCfg {
                    seed: mix_seed(self.cfg.seed, solver_calls as u64),
                    ..self.cfg.solve.clone()
                };
                let sig = search::signature(&pending.cs);
                let (model, sstats) = solver::solve_or_pin_ro_cached(
                    &arena,
                    &pending.cs,
                    Some(&pending.seed),
                    &scfg,
                    self.cfg.budget.prefix_cache.then_some(&pcache),
                );
                if sstats.pin_fallback {
                    pin_fallbacks += 1;
                }
                if sstats.prefix_hit {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                prefix_len_saved += sstats.prefix_lits_saved;
                if let Some(model) = model {
                    frontier.note_solved_sig(sig, true);
                    next = Some(model);
                    break;
                }
                frontier.note_solved_sig(sig, false);
                self.handle_unsat(sig, &mut frontier, &mut book);
                if wall_expired(&start) {
                    timed_out = true;
                    break;
                }
            }
            match next {
                Some(model) => assignment = model,
                None => {
                    // Drained mid-budget: restart from a fresh seed if the
                    // policy allows; otherwise, if the search has made
                    // progress since the last reset, forget the dedup
                    // table and re-derive from the current candidate (the
                    // suppressed sets were solved against seeds that have
                    // long since moved on). Only then report exhaustion
                    // (or the wall timeout that cut the solve loop
                    // short).
                    if !timed_out
                        && self.cfg.budget.policy.restart_on_drain
                        && frontier.ever_scheduled()
                    {
                        let r = frontier.stats().restarts;
                        frontier.note_restart();
                        assignment = self.restart_assignment(n_controllable, r);
                        continue;
                    }
                    if !timed_out
                        && frontier.ever_scheduled()
                        && (reset_high_water == u64::MAX || book.bits_high_water > reset_high_water)
                    {
                        reset_high_water = book.bits_high_water;
                        frontier.reset_dedup();
                        continue;
                    }
                    return self.failed(
                        runs,
                        solver_calls,
                        total_instrs,
                        total_units,
                        start,
                        Outcome {
                            timed_out,
                            exhausted: !timed_out,
                            syscall_divergences,
                            cursor_overruns,
                            checkpoint_divergences,
                            escalation: taken(&mut book, runs),
                            concretization_ranges,
                            concretization_pins,
                            pin_fallbacks,
                            cache_hits,
                            cache_misses,
                            prefix_len_saved,
                            frontier: frontier.into_stats(),
                        },
                        last_stats,
                    );
                }
            }
        }
    }

    /// The parallel engine: the shared frontier stays the single source
    /// of scheduling truth, and `workers` threads speculate on the work
    /// it hands out.
    ///
    /// Each round pops up to `workers` pending sets ([`Frontier::
    /// pop_batch`]); every worker solves its set against the shared
    /// *read-only* arena (`solve_or_pin_ro` — pin fallbacks clone
    /// privately) and, on SAT, immediately replays the model on its own
    /// `minic::Vm` over a private arena clone. The verdicts are then
    /// committed serially in pop order: the first verdict that would
    /// mutate the frontier (a SAT model ends the solve streak; a forced
    /// UNSAT may queue a repair) first restores the unconsumed tail
    /// ([`Frontier::restore`]), so the frontier evolves exactly as the
    /// serial engine's would and later speculation is merely discarded,
    /// never observed. A committed SAT run's private arena is absorbed
    /// back into the central one ([`ExprArena::absorb`]); because the
    /// central arena never changes during a speculative phase, the
    /// absorption reproduces the worker's numbering and the session
    /// stays bit-identical to the serial engine — which is what the
    /// worker-count invariance suite pins.
    fn reproduce_parallel(&self) -> ReplayResult {
        let workers = self.cfg.budget.workers;
        let start = std::time::Instant::now();
        let mut arena = ExprArena::new();
        let vars = InputVars::alloc(&mut arena, &self.cfg.spec);
        let n_controllable = vars.n_controllable as usize;
        let mut assignment = self.initial_assignment(n_controllable);

        let mut frontier = Frontier::new(
            self.cfg.budget.policy.clone(),
            self.cfg.budget.max_pendings_per_run,
            self.cfg.budget.max_pending_lits,
        );
        let mut runs = 0usize;
        let mut solver_calls = 0usize;
        let mut total_instrs = 0u64;
        let mut total_units = 0u64;
        let mut syscall_divergences = 0u64;
        let mut cursor_overruns = 0u64;
        let mut checkpoint_divergences = 0u64;
        let mut concretization_ranges = 0u64;
        let mut concretization_pins = 0u64;
        let mut pin_fallbacks = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut prefix_len_saved = 0u64;
        let mut pcache = PrefixCache::new();
        let mut book = RepairBook::new();
        let mut reset_high_water = u64::MAX;
        let mut timed_out = false;
        #[allow(unused_assignments)]
        let mut last_stats = crate::host::ReplayRunStats::default();
        let wall_expired = |start: &std::time::Instant| {
            self.cfg.budget.max_wall_ms > 0
                && start.elapsed().as_millis() as u64 > self.cfg.budget.max_wall_ms
        };

        let syscall_mode = if self.report.syscalls.is_empty() {
            SyscallMode::Modeled
        } else {
            SyscallMode::Logged(self.report.syscalls.clone())
        };

        // A run produced by a winning speculative solve job, carried
        // into the next round together with the model that drove it.
        let mut staged_run: Option<(RunArtifacts, Vec<i64>)> = None;
        loop {
            // ---- one replay run (serial unless a worker already ran it)
            let run = match staged_run.take() {
                Some((run, model)) => {
                    assignment = model;
                    run
                }
                None => {
                    let (run, arena_back) =
                        self.exec_run(arena, &assignment, &syscall_mode, &vars, runs + 1);
                    arena = arena_back;
                    run
                }
            };
            runs += 1;
            total_instrs += run.instrs;
            total_units += run.units;
            last_stats = run.stats.clone();
            concretization_ranges += last_stats.concretization_ranges;
            concretization_pins += last_stats.concretization_pins;
            // Escalation evidence: which instrumented locations this run
            // actually consumed log bits from.
            book.escalation
                .consulted
                .extend(run.stats.consulted.iter().copied());

            // ---- success checks -------------------------------------------
            if self.is_success(&run) {
                let mut escalation = std::mem::take(&mut book.escalation);
                escalation.runs = runs;
                return ReplayResult {
                    reproduced: true,
                    runs,
                    solver_calls,
                    total_instrs,
                    total_units,
                    wall_ms: start.elapsed().as_millis() as u64,
                    witness_argv: Some(run.argv),
                    witness_assignment: Some(assignment),
                    timed_out: false,
                    exhausted: false,
                    syscall_divergences,
                    cursor_overruns,
                    checkpoint_divergences,
                    escalation,
                    concretization_ranges,
                    concretization_pins,
                    pin_fallbacks,
                    cache_hits,
                    cache_misses,
                    prefix_len_saved,
                    frontier: frontier.into_stats(),
                    last_run_stats: last_stats,
                };
            }
            if runs >= self.cfg.budget.max_runs || wall_expired(&start) {
                return self.failed(
                    runs,
                    solver_calls,
                    total_instrs,
                    total_units,
                    start,
                    Outcome {
                        timed_out: true,
                        exhausted: false,
                        syscall_divergences,
                        cursor_overruns,
                        checkpoint_divergences,
                        escalation: taken(&mut book, runs),
                        concretization_ranges,
                        concretization_pins,
                        pin_fallbacks,
                        cache_hits,
                        cache_misses,
                        prefix_len_saved,
                        frontier: frontier.into_stats(),
                    },
                    last_stats,
                );
            }

            // ---- bank the run (serial commit) -----------------------------
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == SYSCALL_DIVERGENCE) {
                syscall_divergences += 1;
            }
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == CURSOR_OVERRUN) {
                cursor_overruns += 1;
            }
            if matches!(&run.outcome, RunOutcome::Aborted(r) if r == CHECKPOINT_DIVERGENCE) {
                checkpoint_divergences += 1;
            }
            self.bank_offers(
                &run,
                &assignment,
                &mut arena,
                &vars,
                &mut frontier,
                &mut book,
                &mut pcache,
            );
            // Freeze the central generation: worker-side clones (solve
            // scratch and speculative run arenas) now share the prefix
            // instead of deep-copying it.
            arena.freeze();

            // ---- speculative solve streak ---------------------------------
            'streak: loop {
                if !timed_out {
                    let batch = frontier.pop_batch(workers);
                    if !batch.is_empty() {
                        // Parallel phase: solve each popped set (and run
                        // its model on SAT) against the frozen central
                        // arena. Seeds are pre-assigned by commit index so
                        // committed verdicts match the serial engine's.
                        let base_calls = solver_calls;
                        let base_nodes = arena.len();
                        let arena_ref = &arena;
                        let cache_ref = self.cfg.budget.prefix_cache.then_some(&pcache);
                        let jobs: Vec<(ConstraintSet, Vec<i64>)> = batch
                            .iter()
                            .map(|p| (p.set.cs.clone(), p.set.seed.clone()))
                            .collect();
                        let phase = search::pool::parallel_map(workers, jobs, |i, (cs, seed)| {
                            let scfg = SolveCfg {
                                seed: mix_seed(self.cfg.seed, (base_calls + i + 1) as u64),
                                ..self.cfg.solve.clone()
                            };
                            let (model, sstats) = solver::solve_or_pin_ro_cached(
                                arena_ref,
                                &cs,
                                Some(&seed),
                                &scfg,
                                cache_ref,
                            );
                            let run = model.as_ref().map(|m| {
                                self.exec_run(arena_ref.clone(), m, &syscall_mode, &vars, runs + 1)
                            });
                            (model, sstats, run)
                        });
                        frontier.note_worker_runs(&phase.worker_counts);

                        // Commit phase: verdicts strictly in pop order.
                        let mut pops = batch.into_iter();
                        let mut outs = phase.results.into_iter();
                        while let Some(pop) = pops.next() {
                            let (model, sstats, spec_run) =
                                outs.next().expect("one verdict per popped set");
                            solver_calls += 1;
                            if sstats.pin_fallback {
                                pin_fallbacks += 1;
                            }
                            if sstats.prefix_hit {
                                cache_hits += 1;
                            } else {
                                cache_misses += 1;
                            }
                            prefix_len_saved += sstats.prefix_lits_saved;
                            let sig = search::signature(&pop.set.cs);
                            if let Some(model) = model {
                                frontier.note_solved_sig(sig, true);
                                frontier.restore(pops.collect());
                                let (mut artifacts, job_arena) =
                                    spec_run.expect("every SAT job carries its run");
                                // Import the worker's expressions and
                                // retarget the path at the central ids.
                                let mut roots = Vec::with_capacity(artifacts.path.len() * 2);
                                for st in &artifacts.path {
                                    roots.push(st.lit.expr);
                                    if let Some(rc) = &st.range {
                                        roots.push(rc.expr);
                                    }
                                }
                                let mapped = arena.absorb(&job_arena, base_nodes, &roots);
                                let mut mapped = mapped.into_iter();
                                for st in &mut artifacts.path {
                                    st.lit.expr = mapped.next().expect("mapped root");
                                    if let Some(rc) = &mut st.range {
                                        rc.expr = mapped.next().expect("mapped root");
                                    }
                                }
                                staged_run = Some((artifacts, model));
                                break 'streak;
                            }
                            frontier.note_solved_sig(sig, false);
                            if book.forced_meta.contains_key(&sig) {
                                // The repair bookkeeping may queue a
                                // priority set: put the speculative tail
                                // back first so the offer lands exactly
                                // where the serial engine would put it.
                                frontier.restore(pops.collect());
                                self.handle_unsat(sig, &mut frontier, &mut book);
                                if wall_expired(&start) {
                                    timed_out = true;
                                }
                                continue 'streak;
                            }
                            if wall_expired(&start) {
                                timed_out = true;
                                frontier.restore(pops.collect());
                                continue 'streak;
                            }
                        }
                        continue 'streak;
                    }
                }

                // ---- drained (or timed out mid-streak) --------------------
                if !timed_out
                    && self.cfg.budget.policy.restart_on_drain
                    && frontier.ever_scheduled()
                {
                    let r = frontier.stats().restarts;
                    frontier.note_restart();
                    assignment = self.restart_assignment(n_controllable, r);
                    break 'streak;
                }
                if !timed_out
                    && frontier.ever_scheduled()
                    && (reset_high_water == u64::MAX || book.bits_high_water > reset_high_water)
                {
                    reset_high_water = book.bits_high_water;
                    frontier.reset_dedup();
                    break 'streak;
                }
                return self.failed(
                    runs,
                    solver_calls,
                    total_instrs,
                    total_units,
                    start,
                    Outcome {
                        timed_out,
                        exhausted: !timed_out,
                        syscall_divergences,
                        cursor_overruns,
                        checkpoint_divergences,
                        escalation: taken(&mut book, runs),
                        concretization_ranges,
                        concretization_pins,
                        pin_fallbacks,
                        cache_hits,
                        cache_misses,
                        prefix_len_saved,
                        frontier: frontier.into_stats(),
                    },
                    last_stats,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn failed(
        &self,
        runs: usize,
        solver_calls: usize,
        total_instrs: u64,
        total_units: u64,
        start: std::time::Instant,
        outcome: Outcome,
        last_stats: crate::host::ReplayRunStats,
    ) -> ReplayResult {
        ReplayResult {
            reproduced: false,
            runs,
            solver_calls,
            total_instrs,
            total_units,
            wall_ms: start.elapsed().as_millis() as u64,
            witness_argv: None,
            witness_assignment: None,
            timed_out: outcome.timed_out,
            exhausted: outcome.exhausted,
            syscall_divergences: outcome.syscall_divergences,
            cursor_overruns: outcome.cursor_overruns,
            checkpoint_divergences: outcome.checkpoint_divergences,
            escalation: outcome.escalation,
            concretization_ranges: outcome.concretization_ranges,
            concretization_pins: outcome.concretization_pins,
            pin_fallbacks: outcome.pin_fallbacks,
            cache_hits: outcome.cache_hits,
            cache_misses: outcome.cache_misses,
            prefix_len_saved: outcome.prefix_len_saved,
            frontier: outcome.frontier,
            last_run_stats: last_stats,
        }
    }
}

/// How a failed search ended (threaded into [`ReplayResult`]).
struct Outcome {
    timed_out: bool,
    exhausted: bool,
    syscall_divergences: u64,
    cursor_overruns: u64,
    checkpoint_divergences: u64,
    escalation: EscalationReport,
    concretization_ranges: u64,
    concretization_pins: u64,
    pin_fallbacks: u64,
    cache_hits: u64,
    cache_misses: u64,
    prefix_len_saved: u64,
    frontier: FrontierStats,
}

/// Everything one replay run leaves behind: the outcome, the argv it
/// ran with, meters, and the symbolic path. Produced by
/// [`ReplayEngine::exec_run`] on the main thread (serial engine) or on
/// a worker (speculative SAT run); consumed by the serial commit path
/// either way.
struct RunArtifacts {
    outcome: RunOutcome,
    argv: Vec<Vec<u8>>,
    instrs: u64,
    units: u64,
    log_exhausted: bool,
    stats: crate::host::ReplayRunStats,
    path: Vec<PathStep>,
}

/// Forced-set repair state: metadata per queued forced set, thrash
/// accounting per shared prefix key, and the log high-water mark that
/// defines "progress" (bursts only accumulate while it stands still).
struct RepairBook {
    forced_meta: HashMap<u128, ForcedInfo>,
    tracker: RepairTracker,
    counted_cutoffs: HashSet<u128>,
    bits_high_water: u64,
    /// Per-location escalation evidence accumulated over the search,
    /// handed to the caller through [`ReplayResult::escalation`].
    escalation: EscalationReport,
}

impl RepairBook {
    fn new() -> Self {
        RepairBook {
            forced_meta: HashMap::new(),
            tracker: RepairTracker::new(),
            counted_cutoffs: HashSet::new(),
            bits_high_water: 0,
            escalation: EscalationReport::new(),
        }
    }
}

/// Metadata retained for a queued forced (2(b)/3(b)) set so a thrash
/// burst can be repaired by suspect backtracking.
struct ForcedInfo {
    /// Burst key: the log high-water mark (stall depth) at registration
    /// for flat logs, or [`search::location_key`] of the divergent
    /// (location, cursor) pair for per-location logs. Every forced set
    /// produced at the same stall pools its evidence into one burst,
    /// however the aborting paths differ, and each new stall gets a
    /// fresh repair budget.
    key: u128,
    /// Path steps up to the last repairable suspect (inclusive).
    steps: Vec<PathStep>,
    /// Indices into `steps` of the *unlogged* symbolic suspects,
    /// earliest first — the decisions the log never vouched for.
    suspects: Vec<usize>,
    /// The aborting run's assignment, used to seed repair solves.
    seed: Vec<i64>,
}

impl ForcedInfo {
    /// The repair ladder: the unlogged suspects, earliest first — an
    /// early unverified decision is what corrupts a forced prefix, and
    /// deepest-first is exactly what plain DFS already retried.
    fn ladder(&self) -> impl Iterator<Item = usize> + '_ {
        self.suspects.iter().copied()
    }
}

/// Takes the accumulated escalation evidence out of the book, stamped
/// with the run count it was gathered over (used at every result-
/// construction site so the book is consumed exactly once).
fn taken(book: &mut RepairBook, runs: usize) -> EscalationReport {
    let mut esc = std::mem::take(&mut book.escalation);
    esc.runs = runs;
    esc
}

/// Appends one path step to a pending constraint set: the
/// offset-generalizing range form when the step has one, its literal
/// (branch condition or emission-time pin) otherwise.
fn push_step(cs: &mut ConstraintSet, step: &PathStep) {
    match step.range {
        Some(rc) => cs.push_range(rc),
        None => cs.push(step.lit),
    }
}
