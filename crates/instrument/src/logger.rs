//! The branch-log runtime: one bit per instrumented branch execution.
//!
//! Reproduces §4 of the paper: "The instrumentation simply uses a bit per
//! branch in a large buffer, and flushes the buffer to disk when it is
//! full. We use a buffer of 4KB." No online compression; no per-branch
//! program locations (the id sequence is implied by the instrumented-
//! branch list plus the execution path).
//!
//! Two log formats exist (see [`crate::plan::LogFormat`]):
//!
//! - **flat** ([`BitLog`] → [`BranchTrace`]): the paper's single
//!   bitvector, bits in global execution order;
//! - **per-location cursors** ([`CursorLog`] → [`CursorTrace`]): one bit
//!   stream per static branch location, each consumed by its own cursor.
//!   Spending [`CURSOR_STEP_COST`] extra instructions per logged
//!   execution buys alignment robustness: one wrong unlogged loop exit
//!   can no longer shift which branch instance consumes which bit across
//!   the whole log — a misaligned candidate now diverges *locally*, at
//!   the first wrong bit of the affected location's own stream.
//!
//! [`TraceLog`] is the shipped artifact covering both formats, consumed
//! through a [`CursorTable`] (one flat position, or one cursor per
//! location).

use minic::cost::{BRANCH_LOG_COST, CURSOR_STEP_COST, LOG_BUFFER_BYTES, LOG_FLUSH_COST};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An append-only bit log with buffered flushing (4 KiB by default).
#[derive(Debug, Clone)]
pub struct BitLog {
    bits: Vec<u8>,
    n_bits: u64,
    buffered_bits: usize,
    flushes: u64,
    buffer_bytes: usize,
}

impl Default for BitLog {
    fn default() -> Self {
        Self::with_buffer_size(LOG_BUFFER_BYTES)
    }
}

impl BitLog {
    /// Creates an empty log with the paper's 4 KiB buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a log with a custom flush-buffer size (the buffer-size
    /// ablation; the paper chose 4 KiB "in order to avoid writing to
    /// disk too often").
    pub fn with_buffer_size(buffer_bytes: usize) -> Self {
        BitLog {
            bits: Vec::new(),
            n_bits: 0,
            buffered_bits: 0,
            flushes: 0,
            buffer_bytes: buffer_bytes.max(1),
        }
    }

    /// Appends one branch direction, returning the cost units charged
    /// (17 per bit, plus the flush amortization when the buffer fills).
    pub fn push(&mut self, taken: bool) -> u64 {
        let byte = (self.n_bits / 8) as usize;
        if byte == self.bits.len() {
            self.bits.push(0);
        }
        if taken {
            self.bits[byte] |= 1 << (self.n_bits % 8);
        }
        self.n_bits += 1;
        self.buffered_bits += 1;
        let mut cost = BRANCH_LOG_COST;
        if self.buffered_bits >= self.buffer_bytes.saturating_mul(8) {
            self.buffered_bits = 0;
            self.flushes += 1;
            cost += LOG_FLUSH_COST;
        }
        cost
    }

    /// Number of bits recorded.
    pub fn len(&self) -> u64 {
        self.n_bits
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Bytes of storage used (the Figure 4b metric).
    pub fn bytes(&self) -> u64 {
        self.n_bits.div_ceil(8)
    }

    /// Buffer flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Finalizes into an immutable, shippable trace.
    pub fn finish(self) -> BranchTrace {
        BranchTrace {
            bits: self.bits,
            n_bits: self.n_bits,
        }
    }
}

/// The shipped branch trace: the bitvector of §3.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BranchTrace {
    bits: Vec<u8>,
    n_bits: u64,
}

impl BranchTrace {
    /// An empty trace.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a trace from plain directions (test support).
    pub fn from_bools(dirs: &[bool]) -> Self {
        let mut log = BitLog::new();
        for d in dirs {
            log.push(*d);
        }
        log.finish()
    }

    /// Number of recorded bits.
    pub fn len(&self) -> u64 {
        self.n_bits
    }

    /// True if the trace has no bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Size in bytes (what gets transferred to the developer).
    pub fn bytes(&self) -> u64 {
        self.n_bits.div_ceil(8)
    }

    /// The direction of bit `i`, if in range.
    pub fn get(&self, i: u64) -> Option<bool> {
        if i >= self.n_bits {
            return None;
        }
        let byte = (i / 8) as usize;
        Some(self.bits[byte] & (1 << (i % 8)) != 0)
    }

    /// The raw backing bytes (for compression experiments).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuilds a trace from raw backing bytes (the wire decoder).
    /// Returns `None` when the byte count cannot hold `n_bits`.
    pub fn from_raw(bits: Vec<u8>, n_bits: u64) -> Option<Self> {
        if (bits.len() as u64) < n_bits.div_ceil(8) {
            return None;
        }
        Some(BranchTrace { bits, n_bits })
    }

    /// A cursor for sequential replay consumption.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            pos: 0,
        }
    }

    /// Truncates to the first `n` bits (failure-injection tests).
    pub fn truncated(&self, n: u64) -> BranchTrace {
        let n = n.min(self.n_bits);
        let mut out = BitLog::new();
        for i in 0..n {
            out.push(self.get(i).expect("index in range"));
        }
        out.finish()
    }

    /// Flips bit `i` (corruption-injection tests).
    pub fn corrupted(&self, i: u64) -> BranchTrace {
        let mut c = self.clone();
        if i < c.n_bits {
            let byte = (i / 8) as usize;
            c.bits[byte] ^= 1 << (i % 8);
        }
        c
    }
}

/// Sequential reader over a [`BranchTrace`].
#[derive(Debug, Clone)]
pub struct TraceCursor<'t> {
    trace: &'t BranchTrace,
    pos: u64,
}

impl<'t> TraceCursor<'t> {
    /// Takes the next recorded direction, if any remain.
    pub fn next_bit(&mut self) -> Option<bool> {
        let b = self.trace.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Bits consumed so far.
    pub fn consumed(&self) -> u64 {
        self.pos
    }

    /// True when every recorded bit has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.trace.len() - self.pos
    }
}

/// An append-only log holding one bit stream per branch location (the
/// per-location-cursor log format).
///
/// Flush accounting is shared across streams — the runtime still owns a
/// single 4 KiB buffer, it just tags buffered bits with their location —
/// so the flush cadence matches the flat format for the same bit volume.
/// Each push charges [`BRANCH_LOG_COST`] plus [`CURSOR_STEP_COST`] for
/// the cursor-table indirection; the extra units are accumulated in
/// [`spend_units`](CursorLog::spend_units) so the instrumentation-spend
/// columns of the tables stay honest about what the format costs.
#[derive(Debug, Clone)]
pub struct CursorLog {
    streams: BTreeMap<u32, BitLog>,
    n_bits: u64,
    buffered_bits: usize,
    flushes: u64,
    buffer_bytes: usize,
    spend_units: u64,
}

impl Default for CursorLog {
    fn default() -> Self {
        Self::with_buffer_size(LOG_BUFFER_BYTES)
    }
}

impl CursorLog {
    /// Creates an empty cursor log with the paper's 4 KiB buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cursor log with a custom flush-buffer size.
    pub fn with_buffer_size(buffer_bytes: usize) -> Self {
        CursorLog {
            streams: BTreeMap::new(),
            n_bits: 0,
            buffered_bits: 0,
            flushes: 0,
            buffer_bytes: buffer_bytes.max(1),
            spend_units: 0,
        }
    }

    /// Appends one direction to location `loc`'s stream, returning the
    /// cost units charged (flat per-bit cost + cursor indirection, plus
    /// the flush amortization when the shared buffer fills).
    pub fn push(&mut self, loc: u32, taken: bool) -> u64 {
        let stream = self
            .streams
            .entry(loc)
            // Per-stream BitLogs never flush on their own: the shared
            // buffer below owns the flush cadence.
            .or_insert_with(|| BitLog::with_buffer_size(usize::MAX));
        let _ = stream.push(taken);
        self.n_bits += 1;
        self.buffered_bits += 1;
        self.spend_units += CURSOR_STEP_COST;
        let mut cost = BRANCH_LOG_COST + CURSOR_STEP_COST;
        if self.buffered_bits >= self.buffer_bytes.saturating_mul(8) {
            self.buffered_bits = 0;
            self.flushes += 1;
            cost += LOG_FLUSH_COST;
        }
        cost
    }

    /// Total bits recorded across all streams.
    pub fn len(&self) -> u64 {
        self.n_bits
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Buffer flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Branch locations with at least one recorded bit.
    pub fn n_locations(&self) -> usize {
        self.streams.len()
    }

    /// Extra instrumentation units spent on cursor maintenance (the
    /// spend counter: what this format costs over flat).
    pub fn spend_units(&self) -> u64 {
        self.spend_units
    }

    /// Every stream's current length, sorted by location — the snapshot
    /// a checkpointing plan records at each logged syscall boundary
    /// (the syscall-anchored cursor checkpoint escalation rule).
    pub fn positions(&self) -> Vec<(u32, u64)> {
        self.streams.iter().map(|(l, s)| (*l, s.len())).collect()
    }

    /// Finalizes into an immutable, shippable cursor trace.
    pub fn finish(self) -> CursorTrace {
        CursorTrace {
            streams: self
                .streams
                .into_iter()
                .map(|(loc, log)| LocStream {
                    loc,
                    bits: log.finish(),
                })
                .collect(),
        }
    }
}

/// One location's shipped bit stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocStream {
    /// The static branch location id.
    pub loc: u32,
    /// Its recorded directions, in that location's execution order.
    pub bits: BranchTrace,
}

/// The shipped per-location trace: a cursor table keyed by static branch
/// id, with a compact on-wire encoding ([`CursorTrace::encode`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CursorTrace {
    /// Streams sorted by location id.
    streams: Vec<LocStream>,
}

impl CursorTrace {
    /// An empty trace.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a trace from (location, directions) pairs (test support).
    /// Pairs are sorted by location; duplicate locations are rejected.
    pub fn from_streams(pairs: &[(u32, &[bool])]) -> Self {
        let mut streams: Vec<LocStream> = pairs
            .iter()
            .map(|(loc, dirs)| LocStream {
                loc: *loc,
                bits: BranchTrace::from_bools(dirs),
            })
            .collect();
        streams.sort_by_key(|s| s.loc);
        assert!(
            streams.windows(2).all(|w| w[0].loc < w[1].loc),
            "duplicate location stream"
        );
        CursorTrace { streams }
    }

    /// The stream of one location, if it recorded anything.
    ///
    /// Relies on the sorted-unique invariant; call
    /// [`normalize`](CursorTrace::normalize) first on traces from
    /// untrusted sources (the derived `Deserialize` cannot enforce it).
    pub fn stream(&self, loc: u32) -> Option<&BranchTrace> {
        self.streams
            .binary_search_by_key(&loc, |s| s.loc)
            .ok()
            .map(|i| &self.streams[i].bits)
    }

    /// Re-establishes the sorted-unique-location invariant that
    /// [`stream`](CursorTrace::stream) and [`encode`](CursorTrace::encode)
    /// rely on. Construction paths (`CursorLog::finish`, `from_streams`,
    /// `decode`) uphold it already; a report deserialized from external
    /// JSON may not — the derived `Deserialize` has no validation hook,
    /// so consumers normalize at the trust boundary. Duplicate locations
    /// keep their first stream. No-op (no allocation) when already valid.
    pub fn normalize(&mut self) {
        if self.streams.windows(2).all(|w| w[0].loc < w[1].loc) {
            return;
        }
        self.streams.sort_by_key(|s| s.loc);
        self.streams.dedup_by_key(|s| s.loc);
    }

    /// All streams, sorted by location id.
    pub fn streams(&self) -> &[LocStream] {
        &self.streams
    }

    /// Total bits across all streams.
    pub fn len(&self) -> u64 {
        self.streams.iter().map(|s| s.bits.len()).sum()
    }

    /// True when no stream recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locations with at least one recorded bit.
    pub fn n_locations(&self) -> usize {
        self.streams.len()
    }

    /// Compact on-wire encoding: varint stream count, then per stream a
    /// varint location-id delta, a varint bit count, and the packed bit
    /// bytes. Location ids are strictly increasing, so deltas stay small.
    pub fn encode(&self) -> Vec<u8> {
        // The delta encoding needs the sorted-unique invariant; encode
        // through a normalized copy if a deserialized trace lacks it
        // (otherwise the id delta underflows).
        if !self.streams.windows(2).all(|w| w[0].loc < w[1].loc) {
            let mut c = self.clone();
            c.normalize();
            return c.encode();
        }
        let mut out = Vec::new();
        push_varint(&mut out, self.streams.len() as u64);
        let mut prev = 0u64;
        for s in &self.streams {
            push_varint(&mut out, u64::from(s.loc) - prev);
            prev = u64::from(s.loc);
            push_varint(&mut out, s.bits.len());
            out.extend_from_slice(&s.bits.raw_bytes()[..s.bits.len().div_ceil(8) as usize]);
        }
        out
    }

    /// Decodes [`encode`](CursorTrace::encode)'s output. Returns `None`
    /// on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n = read_varint(bytes, &mut pos)?;
        let mut streams = Vec::with_capacity(n.min(1024) as usize);
        let mut prev = 0u64;
        for i in 0..n {
            let delta = read_varint(bytes, &mut pos)?;
            // The first stream's id is an absolute value; later deltas
            // must advance (ids are strictly increasing).
            if i > 0 && delta == 0 {
                return None;
            }
            let loc = prev
                .checked_add(delta)
                .filter(|l| *l <= u64::from(u32::MAX))?;
            prev = loc;
            let n_bits = read_varint(bytes, &mut pos)?;
            let n_bytes = n_bits.div_ceil(8) as usize;
            let raw = bytes.get(pos..pos + n_bytes)?.to_vec();
            pos += n_bytes;
            streams.push(LocStream {
                loc: loc as u32,
                bits: BranchTrace::from_raw(raw, n_bits)?,
            });
        }
        if pos != bytes.len() {
            return None;
        }
        Some(CursorTrace { streams })
    }

    /// Wire size in bytes (what gets transferred to the developer).
    pub fn bytes(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// Wire size of syscall-anchored checkpoint snapshots: per snapshot a
/// varint entry count, then per entry a varint location id and a varint
/// cursor position. Checkpoints ship as report metadata; this keeps the
/// transfer-size accounting honest about what the escalation rule costs.
pub fn checkpoints_wire_bytes(checkpoints: &[Vec<(u32, u64)>]) -> u64 {
    fn vlen(mut v: u64) -> u64 {
        let mut n = 1;
        while v >= 0x80 {
            v >>= 7;
            n += 1;
        }
        n
    }
    checkpoints
        .iter()
        .map(|s| {
            vlen(s.len() as u64)
                + s.iter()
                    .map(|(l, p)| vlen(u64::from(*l)) + vlen(*p))
                    .sum::<u64>()
        })
        .sum()
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        let payload = u64::from(b & 0x7f);
        // Ten groups of 7 overflow u64; the tenth group may only carry
        // the top bit. Rejecting (not truncating) overlong encodings
        // keeps corrupted wire input a decode failure, never a silently
        // wrong value.
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None;
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// The shipped branch log in either format — the artifact a
/// [`crate::BugReport`] carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceLog {
    /// The paper's flat bitvector.
    Flat(BranchTrace),
    /// Per-branch-location bit streams.
    Cursors(CursorTrace),
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::Flat(BranchTrace::empty())
    }
}

impl TraceLog {
    /// Total recorded bits.
    pub fn len(&self) -> u64 {
        match self {
            TraceLog::Flat(t) => t.len(),
            TraceLog::Cursors(c) => c.len(),
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wire size in bytes: the flat bitvector's packed bytes, or the
    /// cursor table's compact encoding.
    pub fn bytes(&self) -> u64 {
        match self {
            TraceLog::Flat(t) => t.bytes(),
            TraceLog::Cursors(c) => c.bytes(),
        }
    }

    /// The bytes that go on the wire (for compression experiments).
    pub fn wire_bytes(&self) -> Vec<u8> {
        match self {
            TraceLog::Flat(t) => t.raw_bytes().to_vec(),
            TraceLog::Cursors(c) => c.encode(),
        }
    }

    /// The flat bitvector, when this log is flat.
    pub fn as_flat(&self) -> Option<&BranchTrace> {
        match self {
            TraceLog::Flat(t) => Some(t),
            TraceLog::Cursors(_) => None,
        }
    }

    /// The cursor table, when this log is per-location.
    pub fn as_cursors(&self) -> Option<&CursorTrace> {
        match self {
            TraceLog::Flat(_) => None,
            TraceLog::Cursors(c) => Some(c),
        }
    }

    /// Re-establishes the cursor invariant after deserialization (see
    /// [`CursorTrace::normalize`]); no-op for flat logs.
    pub fn normalize(&mut self) {
        if let TraceLog::Cursors(c) = self {
            c.normalize();
        }
    }

    /// Consumes the next recorded direction for branch location `loc`.
    /// `None` means the relevant stream is exhausted (recording stopped
    /// at the crash) — the caller explores freely from there, exactly as
    /// the flat format does at end-of-log.
    pub fn next_bit(&self, cur: &mut CursorTable, loc: u32) -> Option<bool> {
        match self {
            TraceLog::Flat(t) => {
                let b = t.get(cur.flat)?;
                cur.flat += 1;
                cur.consumed += 1;
                Some(b)
            }
            TraceLog::Cursors(c) => {
                let s = c.stream(loc)?;
                let pos = cur.per_loc.entry(loc).or_insert(0);
                let b = s.get(*pos)?;
                *pos += 1;
                cur.consumed += 1;
                Some(b)
            }
        }
    }

    /// True once every recorded bit has been consumed through `cur`.
    pub fn exhausted(&self, cur: &CursorTable) -> bool {
        cur.consumed >= self.len()
    }

    /// Truncates to the first `n` bits — failure-injection tests.
    ///
    /// Flat logs lose their *time-ordered* tail, faithfully modeling an
    /// unflushed buffer at crash time. Cursor logs carry no global time
    /// order, so truncation here is in concatenated stream order
    /// (ascending location id): a *structural*-loss injection, not a
    /// crash-truncation model. Note the semantic asymmetry downstream:
    /// a flat replay reads end-of-log as "recording stopped, explore
    /// freely", while a cursor replay treats one empty stream among
    /// non-empty ones as overrun evidence — so structurally truncated
    /// cursor logs can abort the true path by design. Modeling real
    /// buffer loss for cursors would need per-stream tail trimming
    /// proportional to recording time, which the trace alone cannot
    /// reconstruct.
    pub fn truncated(&self, n: u64) -> TraceLog {
        match self {
            TraceLog::Flat(t) => TraceLog::Flat(t.truncated(n)),
            TraceLog::Cursors(c) => {
                let mut left = n;
                let mut streams = Vec::new();
                for s in &c.streams {
                    if left == 0 {
                        break;
                    }
                    let take = left.min(s.bits.len());
                    streams.push(LocStream {
                        loc: s.loc,
                        bits: s.bits.truncated(take),
                    });
                    left -= take;
                }
                TraceLog::Cursors(CursorTrace { streams })
            }
        }
    }

    /// Flips bit `i` (concatenated stream order for cursors) —
    /// corruption-injection tests.
    pub fn corrupted(&self, i: u64) -> TraceLog {
        match self {
            TraceLog::Flat(t) => TraceLog::Flat(t.corrupted(i)),
            TraceLog::Cursors(c) => {
                let mut at = i;
                let mut out = c.clone();
                for s in &mut out.streams {
                    if at < s.bits.len() {
                        s.bits = s.bits.corrupted(at);
                        break;
                    }
                    at -= s.bits.len();
                }
                TraceLog::Cursors(out)
            }
        }
    }
}

/// Consumption positions over a [`TraceLog`]: one flat position, or one
/// cursor per branch location. Owned by the replay host so misalignment
/// diagnostics can name the exact (location, cursor) pair that diverged.
#[derive(Debug, Clone, Default)]
pub struct CursorTable {
    flat: u64,
    per_loc: BTreeMap<u32, u64>,
    consumed: u64,
}

impl CursorTable {
    /// A table with every cursor at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits consumed (across all streams).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The cursor position of one location (0 if never consumed). For a
    /// flat log this is the global position regardless of `loc`.
    pub fn position(&self, loc: u32) -> u64 {
        if self.per_loc.is_empty() && self.flat > 0 {
            return self.flat;
        }
        self.per_loc.get(&loc).copied().unwrap_or(0)
    }

    /// Every per-location cursor position, sorted by location (empty for
    /// a flat log — use [`consumed`](CursorTable::consumed) there).
    pub fn positions(&self) -> Vec<(u32, u64)> {
        self.per_loc.iter().map(|(l, p)| (*l, *p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_bits() {
        let dirs = [true, false, true, true, false, false, true, false, true];
        let t = BranchTrace::from_bools(&dirs);
        assert_eq!(t.len(), dirs.len() as u64);
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(t.get(i as u64), Some(*d));
        }
        assert_eq!(t.get(dirs.len() as u64), None);
    }

    #[test]
    fn each_bit_costs_seventeen() {
        let mut log = BitLog::new();
        assert_eq!(log.push(true), BRANCH_LOG_COST);
        assert_eq!(log.push(false), BRANCH_LOG_COST);
    }

    #[test]
    fn flush_fires_every_buffer_of_bits() {
        let mut log = BitLog::new();
        let bits_per_buffer = (LOG_BUFFER_BYTES * 8) as u64;
        let mut total = 0u64;
        for _ in 0..bits_per_buffer * 2 {
            total += log.push(true);
        }
        assert_eq!(log.flushes(), 2);
        assert_eq!(
            total,
            bits_per_buffer * 2 * BRANCH_LOG_COST + 2 * LOG_FLUSH_COST
        );
    }

    #[test]
    fn bytes_round_up() {
        let t = BranchTrace::from_bools(&[true; 9]);
        assert_eq!(t.bytes(), 2);
    }

    #[test]
    fn cursor_consumes_in_order() {
        let t = BranchTrace::from_bools(&[true, false, true]);
        let mut c = t.cursor();
        assert_eq!(c.next_bit(), Some(true));
        assert_eq!(c.next_bit(), Some(false));
        assert!(!c.exhausted());
        assert_eq!(c.next_bit(), Some(true));
        assert!(c.exhausted());
        assert_eq!(c.next_bit(), None);
        assert_eq!(c.consumed(), 3);
    }

    #[test]
    fn truncation_and_corruption() {
        let t = BranchTrace::from_bools(&[true, true, true, true]);
        let short = t.truncated(2);
        assert_eq!(short.len(), 2);
        let bad = t.corrupted(1);
        assert_eq!(bad.get(1), Some(false));
        assert_eq!(bad.get(0), Some(true));
    }

    #[test]
    fn serde_roundtrip() {
        let t = BranchTrace::from_bools(&[true, false, false, true, true]);
        let json = serde_json::to_string(&t).unwrap();
        let u: BranchTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, u);
    }

    proptest! {
        #[test]
        fn trace_stores_arbitrary_sequences(dirs in proptest::collection::vec(any::<bool>(), 0..2000)) {
            let t = BranchTrace::from_bools(&dirs);
            prop_assert_eq!(t.len(), dirs.len() as u64);
            let mut c = t.cursor();
            for d in &dirs {
                prop_assert_eq!(c.next_bit(), Some(*d));
            }
            prop_assert!(c.exhausted());
        }
    }

    #[test]
    fn cursor_encoding_roundtrips_empty_stream() {
        let empty = CursorTrace::empty();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        let wire = empty.encode();
        assert_eq!(wire, vec![0], "empty table is one varint zero");
        assert_eq!(CursorTrace::decode(&wire), Some(empty));
    }

    #[test]
    fn cursor_encoding_roundtrips_single_location() {
        let t = CursorTrace::from_streams(&[(7, &[true, false, true][..])]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.n_locations(), 1);
        let wire = t.encode();
        let back = CursorTrace::decode(&wire).expect("decodes");
        assert_eq!(back, t);
        assert_eq!(back.stream(7).unwrap().get(1), Some(false));
        assert_eq!(back.stream(8), None);
        assert_eq!(t.bytes(), wire.len() as u64);
    }

    #[test]
    fn cursor_encoding_roundtrips_multi_location_and_rejects_garbage() {
        let t = CursorTrace::from_streams(&[
            (0, &[true][..]),
            (3, &[false; 17][..]),
            (300, &[true, true][..]),
        ]);
        let wire = t.encode();
        assert_eq!(CursorTrace::decode(&wire), Some(t.clone()));
        // Truncated input must not decode.
        assert_eq!(CursorTrace::decode(&wire[..wire.len() - 1]), None);
        // Trailing junk must not decode.
        let mut long = wire.clone();
        long.push(0);
        assert_eq!(CursorTrace::decode(&long), None);
        // Serde round-trip (the report is a serializable artifact).
        let json = serde_json::to_string(&t).unwrap();
        let u: CursorTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, u);
    }

    #[test]
    fn decode_rejects_overlong_varints() {
        // Ten continuation groups overflow u64; a tenth group carrying
        // more than the top bit must be rejected, not truncated.
        let mut overlong = vec![0x80u8; 9];
        overlong.push(0x7e);
        let mut pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None);
        // The maximal legal encoding (u64::MAX) still decodes.
        let mut max = Vec::new();
        push_varint(&mut max, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_varint(&max, &mut pos), Some(u64::MAX));
        // And as a stream count it fails later (truncated input), not
        // with a wrong silent value.
        assert_eq!(CursorTrace::decode(&overlong), None);
    }

    #[test]
    fn normalize_repairs_deserialized_stream_order() {
        // The derived Deserialize cannot enforce the sorted-unique
        // invariant; a hand-crafted JSON report can violate it.
        let json = r#"{"streams":[
            {"loc":5,"bits":{"bits":[1],"n_bits":1}},
            {"loc":3,"bits":{"bits":[0],"n_bits":1}},
            {"loc":5,"bits":{"bits":[0],"n_bits":1}}]}"#;
        let mut t: CursorTrace = serde_json::from_str(json).unwrap();
        // encode() is already defensive (normalizes a copy): no panic,
        // and the output decodes.
        let wire = t.encode();
        assert!(CursorTrace::decode(&wire).is_some());
        t.normalize();
        assert_eq!(t.n_locations(), 2, "duplicate loc dropped");
        assert_eq!(t.stream(3).unwrap().get(0), Some(false));
        assert_eq!(t.stream(5).unwrap().get(0), Some(true), "first wins");
        assert_eq!(CursorTrace::decode(&t.encode()), Some(t));
    }

    #[test]
    fn cursor_log_splits_streams_and_charges_the_spend() {
        let mut log = CursorLog::new();
        let c0 = log.push(4, true);
        assert_eq!(c0, BRANCH_LOG_COST + CURSOR_STEP_COST);
        log.push(9, false);
        log.push(4, false);
        assert_eq!(log.len(), 3);
        assert_eq!(log.n_locations(), 2);
        assert_eq!(log.spend_units(), 3 * CURSOR_STEP_COST);
        let t = log.finish();
        assert_eq!(t.stream(4).unwrap().len(), 2);
        assert_eq!(t.stream(4).unwrap().get(0), Some(true));
        assert_eq!(t.stream(4).unwrap().get(1), Some(false));
        assert_eq!(t.stream(9).unwrap().get(0), Some(false));
    }

    #[test]
    fn cursor_log_flush_cadence_matches_flat_for_same_volume() {
        let mut cursor = CursorLog::new();
        let mut flat = BitLog::new();
        let bits = (LOG_BUFFER_BYTES * 8) as u64 * 2 + 5;
        for i in 0..bits {
            cursor.push((i % 3) as u32, i % 2 == 0);
            flat.push(i % 2 == 0);
        }
        assert_eq!(cursor.flushes(), flat.flushes());
    }

    #[test]
    fn trace_log_consumes_per_location_and_reports_exhaustion() {
        let t = TraceLog::Cursors(CursorTrace::from_streams(&[
            (1, &[true, true][..]),
            (5, &[false][..]),
        ]));
        let mut cur = CursorTable::new();
        assert!(!t.exhausted(&cur));
        assert_eq!(t.next_bit(&mut cur, 5), Some(false));
        assert_eq!(t.next_bit(&mut cur, 5), None, "stream 5 exhausted");
        assert_eq!(t.next_bit(&mut cur, 2), None, "no stream for loc 2");
        assert_eq!(t.next_bit(&mut cur, 1), Some(true));
        assert!(!t.exhausted(&cur));
        assert_eq!(t.next_bit(&mut cur, 1), Some(true));
        assert!(t.exhausted(&cur));
        assert_eq!(cur.consumed(), 3);
        assert_eq!(cur.position(1), 2);
        assert_eq!(cur.position(5), 1);
        assert_eq!(cur.positions(), vec![(1, 2), (5, 1)]);
    }

    #[test]
    fn trace_log_truncation_and_corruption_cover_cursors() {
        let t = TraceLog::Cursors(CursorTrace::from_streams(&[
            (1, &[true, true][..]),
            (5, &[true][..]),
        ]));
        let short = t.truncated(2);
        assert_eq!(short.len(), 2);
        let bad = t.corrupted(2);
        assert_eq!(
            bad.as_cursors().unwrap().stream(5).unwrap().get(0),
            Some(false)
        );
        assert_eq!(
            bad.as_cursors().unwrap().stream(1).unwrap().get(0),
            Some(true)
        );
    }

    proptest! {
        // Pushing one interleaved (location, direction) sequence through
        // both log formats must agree: the flat log replays the global
        // order, and each cursor stream replays exactly that location's
        // subsequence — consumed per location, the cursor format yields
        // the same directions the flat format yields globally.
        #[test]
        fn cursor_and_flat_formats_record_identically(
            seq in proptest::collection::vec((0u32..6, any::<bool>()), 0..600),
        ) {
            let mut flat = BitLog::new();
            let mut cursors = CursorLog::new();
            for (loc, taken) in &seq {
                flat.push(*taken);
                cursors.push(*loc, *taken);
            }
            let flat = TraceLog::Flat(flat.finish());
            let cursor = TraceLog::Cursors(cursors.finish());
            prop_assert_eq!(flat.len(), cursor.len());
            // Wire round-trip of the cursor form.
            let wire = cursor.as_cursors().unwrap().encode();
            prop_assert_eq!(
                CursorTrace::decode(&wire).as_ref(),
                cursor.as_cursors()
            );
            // Consuming in the recorded execution order yields identical
            // directions from both formats.
            let mut fc = CursorTable::new();
            let mut cc = CursorTable::new();
            for (loc, taken) in &seq {
                prop_assert_eq!(flat.next_bit(&mut fc, *loc), Some(*taken));
                prop_assert_eq!(cursor.next_bit(&mut cc, *loc), Some(*taken));
            }
            prop_assert!(flat.exhausted(&fc));
            prop_assert!(cursor.exhausted(&cc));
        }
    }
}
