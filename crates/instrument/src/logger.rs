//! The branch-log runtime: one bit per instrumented branch execution.
//!
//! Reproduces §4 of the paper: "The instrumentation simply uses a bit per
//! branch in a large buffer, and flushes the buffer to disk when it is
//! full. We use a buffer of 4KB." No online compression; no per-branch
//! program locations (the id sequence is implied by the instrumented-
//! branch list plus the execution path).

use minic::cost::{BRANCH_LOG_COST, LOG_BUFFER_BYTES, LOG_FLUSH_COST};
use serde::{Deserialize, Serialize};

/// An append-only bit log with buffered flushing (4 KiB by default).
#[derive(Debug, Clone)]
pub struct BitLog {
    bits: Vec<u8>,
    n_bits: u64,
    buffered_bits: usize,
    flushes: u64,
    buffer_bytes: usize,
}

impl Default for BitLog {
    fn default() -> Self {
        Self::with_buffer_size(LOG_BUFFER_BYTES)
    }
}

impl BitLog {
    /// Creates an empty log with the paper's 4 KiB buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a log with a custom flush-buffer size (the buffer-size
    /// ablation; the paper chose 4 KiB "in order to avoid writing to
    /// disk too often").
    pub fn with_buffer_size(buffer_bytes: usize) -> Self {
        BitLog {
            bits: Vec::new(),
            n_bits: 0,
            buffered_bits: 0,
            flushes: 0,
            buffer_bytes: buffer_bytes.max(1),
        }
    }

    /// Appends one branch direction, returning the cost units charged
    /// (17 per bit, plus the flush amortization when the buffer fills).
    pub fn push(&mut self, taken: bool) -> u64 {
        let byte = (self.n_bits / 8) as usize;
        if byte == self.bits.len() {
            self.bits.push(0);
        }
        if taken {
            self.bits[byte] |= 1 << (self.n_bits % 8);
        }
        self.n_bits += 1;
        self.buffered_bits += 1;
        let mut cost = BRANCH_LOG_COST;
        if self.buffered_bits >= self.buffer_bytes * 8 {
            self.buffered_bits = 0;
            self.flushes += 1;
            cost += LOG_FLUSH_COST;
        }
        cost
    }

    /// Number of bits recorded.
    pub fn len(&self) -> u64 {
        self.n_bits
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Bytes of storage used (the Figure 4b metric).
    pub fn bytes(&self) -> u64 {
        self.n_bits.div_ceil(8)
    }

    /// Buffer flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Finalizes into an immutable, shippable trace.
    pub fn finish(self) -> BranchTrace {
        BranchTrace {
            bits: self.bits,
            n_bits: self.n_bits,
        }
    }
}

/// The shipped branch trace: the bitvector of §3.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BranchTrace {
    bits: Vec<u8>,
    n_bits: u64,
}

impl BranchTrace {
    /// An empty trace.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a trace from plain directions (test support).
    pub fn from_bools(dirs: &[bool]) -> Self {
        let mut log = BitLog::new();
        for d in dirs {
            log.push(*d);
        }
        log.finish()
    }

    /// Number of recorded bits.
    pub fn len(&self) -> u64 {
        self.n_bits
    }

    /// True if the trace has no bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Size in bytes (what gets transferred to the developer).
    pub fn bytes(&self) -> u64 {
        self.n_bits.div_ceil(8)
    }

    /// The direction of bit `i`, if in range.
    pub fn get(&self, i: u64) -> Option<bool> {
        if i >= self.n_bits {
            return None;
        }
        let byte = (i / 8) as usize;
        Some(self.bits[byte] & (1 << (i % 8)) != 0)
    }

    /// The raw backing bytes (for compression experiments).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// A cursor for sequential replay consumption.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            pos: 0,
        }
    }

    /// Truncates to the first `n` bits (failure-injection tests).
    pub fn truncated(&self, n: u64) -> BranchTrace {
        let n = n.min(self.n_bits);
        let mut out = BitLog::new();
        for i in 0..n {
            out.push(self.get(i).expect("index in range"));
        }
        out.finish()
    }

    /// Flips bit `i` (corruption-injection tests).
    pub fn corrupted(&self, i: u64) -> BranchTrace {
        let mut c = self.clone();
        if i < c.n_bits {
            let byte = (i / 8) as usize;
            c.bits[byte] ^= 1 << (i % 8);
        }
        c
    }
}

/// Sequential reader over a [`BranchTrace`].
#[derive(Debug, Clone)]
pub struct TraceCursor<'t> {
    trace: &'t BranchTrace,
    pos: u64,
}

impl<'t> TraceCursor<'t> {
    /// Takes the next recorded direction, if any remain.
    pub fn next_bit(&mut self) -> Option<bool> {
        let b = self.trace.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Bits consumed so far.
    pub fn consumed(&self) -> u64 {
        self.pos
    }

    /// True when every recorded bit has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.trace.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_bits() {
        let dirs = [true, false, true, true, false, false, true, false, true];
        let t = BranchTrace::from_bools(&dirs);
        assert_eq!(t.len(), dirs.len() as u64);
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(t.get(i as u64), Some(*d));
        }
        assert_eq!(t.get(dirs.len() as u64), None);
    }

    #[test]
    fn each_bit_costs_seventeen() {
        let mut log = BitLog::new();
        assert_eq!(log.push(true), BRANCH_LOG_COST);
        assert_eq!(log.push(false), BRANCH_LOG_COST);
    }

    #[test]
    fn flush_fires_every_buffer_of_bits() {
        let mut log = BitLog::new();
        let bits_per_buffer = (LOG_BUFFER_BYTES * 8) as u64;
        let mut total = 0u64;
        for _ in 0..bits_per_buffer * 2 {
            total += log.push(true);
        }
        assert_eq!(log.flushes(), 2);
        assert_eq!(
            total,
            bits_per_buffer * 2 * BRANCH_LOG_COST + 2 * LOG_FLUSH_COST
        );
    }

    #[test]
    fn bytes_round_up() {
        let t = BranchTrace::from_bools(&[true; 9]);
        assert_eq!(t.bytes(), 2);
    }

    #[test]
    fn cursor_consumes_in_order() {
        let t = BranchTrace::from_bools(&[true, false, true]);
        let mut c = t.cursor();
        assert_eq!(c.next_bit(), Some(true));
        assert_eq!(c.next_bit(), Some(false));
        assert!(!c.exhausted());
        assert_eq!(c.next_bit(), Some(true));
        assert!(c.exhausted());
        assert_eq!(c.next_bit(), None);
        assert_eq!(c.consumed(), 3);
    }

    #[test]
    fn truncation_and_corruption() {
        let t = BranchTrace::from_bools(&[true, true, true, true]);
        let short = t.truncated(2);
        assert_eq!(short.len(), 2);
        let bad = t.corrupted(1);
        assert_eq!(bad.get(1), Some(false));
        assert_eq!(bad.get(0), Some(true));
    }

    #[test]
    fn serde_roundtrip() {
        let t = BranchTrace::from_bools(&[true, false, false, true, true]);
        let json = serde_json::to_string(&t).unwrap();
        let u: BranchTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, u);
    }

    proptest! {
        #[test]
        fn trace_stores_arbitrary_sequences(dirs in proptest::collection::vec(any::<bool>(), 0..2000)) {
            let t = BranchTrace::from_bools(&dirs);
            prop_assert_eq!(t.len(), dirs.len() as u64);
            let mut c = t.cursor();
            for d in &dirs {
                prop_assert_eq!(c.next_bit(), Some(*d));
            }
            prop_assert!(c.exhausted());
        }
    }
}
