//! LZSS compression for branch-log transfer.
//!
//! §5.3: "Compression can be used to reduce the transfer time. We observe
//! a compression ratio of 10-20x using gzip." Branch logs are extremely
//! redundant (loop branches produce long runs of identical bits), so a
//! small LZ77-family compressor reproduces the effect. Used only at
//! transfer time — never online, matching the paper ("We do not use any
//! form of online compression, as this would impose additional CPU
//! overhead").

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length (fits the one-byte length field).
const MAX_MATCH: usize = MIN_MATCH + 254;
/// Sliding-window size (matches the two-byte offset field).
const WINDOW: usize = 65_535;

/// Compresses `data` with greedy LZSS.
///
/// Format: groups of 8 items prefixed by a flag byte (bit `i` set ⇒ item
/// `i` is a match). A literal is one byte; a match is a two-byte
/// little-endian back-offset (≥1) followed by one byte `length - 4`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    // Chained 3-byte hash table for match finding.
    let mut head: Vec<i32> = vec![-1; 1 << 15];
    let mut prev: Vec<i32> = vec![-1; data.len().max(1)];
    let hash = |d: &[u8], i: usize| -> usize {
        let h = (d[i] as usize) << 10 ^ (d[i + 1] as usize) << 5 ^ (d[i + 2] as usize);
        h & ((1 << 15) - 1)
    };

    let mut i = 0usize;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_count = 0u8;
    let mut flags = 0u8;

    macro_rules! emit_item {
        ($is_match:expr, $body:expr) => {{
            if $is_match {
                flags |= 1 << flag_count;
            }
            $body;
            flag_count += 1;
            if flag_count == 8 {
                out[flag_pos] = flags;
                flags = 0;
                flag_count = 0;
                flag_pos = out.len();
                out.push(0);
            }
        }};
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut tries = 0;
            while cand >= 0 && tries < 32 {
                let c = cand as usize;
                if i - c <= WINDOW {
                    let mut l = 0usize;
                    let max = (data.len() - i).min(MAX_MATCH);
                    while l < max && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - c;
                    }
                }
                cand = prev[c];
                tries += 1;
            }
        }
        if best_len >= MIN_MATCH {
            emit_item!(true, {
                out.push((best_off & 0xff) as u8);
                out.push((best_off >> 8) as u8);
                out.push((best_len - MIN_MATCH) as u8);
            });
            // Insert hash entries for the covered positions.
            let end = i + best_len;
            while i < end {
                if i + 2 < data.len() {
                    let h = hash(data, i);
                    prev[i] = head[h];
                    head[h] = i as i32;
                }
                i += 1;
            }
        } else {
            emit_item!(false, out.push(data[i]));
            if i + 2 < data.len() {
                let h = hash(data, i);
                prev[i] = head[h];
                head[h] = i as i32;
            }
            i += 1;
        }
    }
    if flag_count == 0 && flag_pos == out.len() - 1 {
        // Remove the dangling empty flag byte.
        out.pop();
    } else {
        out[flag_pos] = flags;
    }
    out
}

/// Decompresses LZSS output produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::with_capacity(data.len() * 4);
    let mut i = 0usize;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 3 > data.len() {
                    return Err("truncated match");
                }
                let off = data[i] as usize | (data[i + 1] as usize) << 8;
                let len = data[i + 2] as usize + MIN_MATCH;
                i += 3;
                if off == 0 || off > out.len() {
                    return Err("bad offset");
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(data[i]);
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Compression ratio (`original / compressed`), 1.0 for empty input.
pub fn ratio(original: &[u8]) -> f64 {
    if original.is_empty() {
        return 1.0;
    }
    let c = compress(original);
    original.len() as f64 / c.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let data = b"abcabcabcabcabcabc hello hello hello";
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len());
    }

    #[test]
    fn empty_input() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn branch_log_like_data_compresses_well() {
        // A loop-dominated branch log: long runs of identical bytes with
        // occasional deviations, like 0xFF (taken) runs.
        let mut log = Vec::new();
        for i in 0..4096 {
            log.push(if i % 100 == 0 { 0x7f } else { 0xff });
        }
        let r = ratio(&log);
        assert!(r >= 10.0, "loop logs must compress >= 10x, got {r:.1}");
    }

    #[test]
    fn incompressible_data_does_not_explode() {
        // Pseudo-random bytes: expansion bounded by flag overhead (1/8).
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_corrupt_stream() {
        let c = compress(b"abcdabcdabcdabcd");
        // Flip a flag byte so a literal is parsed as a match with a bad
        // offset.
        let mut bad = c.clone();
        bad[0] = 0xff;
        // Either an error or a (wrong) decode — must not panic.
        let _ = decompress(&bad);
        let truncated = &c[..c.len() - 1];
        let _ = decompress(truncated);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn roundtrip_repetitive(seed in any::<u8>(), n in 1usize..3000) {
            let data: Vec<u8> = (0..n).map(|i| seed.wrapping_add((i / 700) as u8)).collect();
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data.clone());
            if n > 1000 {
                prop_assert!(c.len() * 8 < data.len());
            }
        }
    }
}
