//! The instrumented deployment host: what runs at the "user site".
//!
//! Wraps the kernel like [`oskit::OsHost`], but additionally logs one bit
//! per executed instrumented branch (charging the paper's 17 instructions
//! plus periodic flush costs) and, when enabled, the results of the
//! selected system calls. When the program crashes, [`BugReport::capture`]
//! packages the crash site and the logs — the artifact shipped to the
//! developer.

use crate::logger::{checkpoints_wire_bytes, BitLog, CursorLog, TraceLog};
use crate::plan::{LogFormat, Method, Plan};
use crate::syscall_log::{is_logged, SysRecord, SyscallLog};
use minic::cost::Meter;
use minic::memory::Memory;
use minic::types::Sys;
use minic::vm::{CrashInfo, CrashKind, Host, HostStop};
use minic::{BranchId, Loc};
use oskit::{apply_effect, Kernel};
use serde::{Deserialize, Serialize};

/// The accumulating branch log in the plan's format: the flat bitvector,
/// or one bit stream per branch location (see [`LogFormat`]).
#[derive(Debug, Clone)]
pub enum BranchLogger {
    /// The paper's flat bit log.
    Flat(BitLog),
    /// The per-location cursor log.
    Cursors(CursorLog),
}

impl BranchLogger {
    /// An empty logger in the given format.
    pub fn new(format: LogFormat) -> Self {
        match format {
            LogFormat::Flat => BranchLogger::Flat(BitLog::new()),
            LogFormat::PerLocation => BranchLogger::Cursors(CursorLog::new()),
        }
    }

    /// Appends one direction for branch location `loc`, returning the
    /// cost units charged.
    pub fn push(&mut self, loc: u32, taken: bool) -> u64 {
        match self {
            BranchLogger::Flat(l) => l.push(taken),
            BranchLogger::Cursors(l) => l.push(loc, taken),
        }
    }

    /// Total bits recorded.
    pub fn len(&self) -> u64 {
        match self {
            BranchLogger::Flat(l) => l.len(),
            BranchLogger::Cursors(l) => l.len(),
        }
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer flushes performed.
    pub fn flushes(&self) -> u64 {
        match self {
            BranchLogger::Flat(l) => l.flushes(),
            BranchLogger::Cursors(l) => l.flushes(),
        }
    }

    /// Branch locations with at least one recorded bit (0 under flat —
    /// the flat format keeps no per-location table).
    pub fn n_locations(&self) -> usize {
        match self {
            BranchLogger::Flat(_) => 0,
            BranchLogger::Cursors(l) => l.n_locations(),
        }
    }

    /// Extra instrumentation units spent on cursor maintenance (0 under
    /// flat) — the spend counter behind the tables' spend column.
    pub fn spend_units(&self) -> u64 {
        match self {
            BranchLogger::Flat(_) => 0,
            BranchLogger::Cursors(l) => l.spend_units(),
        }
    }

    /// Finalizes into the shippable trace.
    pub fn finish(self) -> TraceLog {
        match self {
            BranchLogger::Flat(l) => TraceLog::Flat(l.finish()),
            BranchLogger::Cursors(l) => TraceLog::Cursors(l.finish()),
        }
    }
}

/// Concrete host with branch + syscall logging per an instrumentation
/// [`Plan`].
#[derive(Debug)]
pub struct LoggingHost {
    /// The kernel backing this run.
    pub kernel: Kernel,
    /// The instrumentation plan (what to log).
    pub plan: Plan,
    /// The branch log being accumulated, in the plan's format.
    pub log: BranchLogger,
    /// The syscall-result log being accumulated.
    pub syscalls: SyscallLog,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Executions of instrumented branches (Figure 4's count metric).
    pub instrumented_execs: u64,
    /// Executions of suppressed branches: branches the plan *observes*
    /// but never pays a log bit for, because replay reconstructs their
    /// outcome from the implying branch ([`Plan::suppresses`]).
    pub suppressed_execs: u64,
    /// Syscall-anchored cursor checkpoints: one snapshot of every
    /// location's stream length per logged syscall, recorded only when
    /// [`Plan::checkpoints`] is set under the per-location format.
    pub checkpoints: Vec<Vec<(u32, u64)>>,
}

impl LoggingHost {
    /// Creates a logging host.
    pub fn new(kernel: Kernel, plan: Plan) -> Self {
        let log = BranchLogger::new(plan.format);
        LoggingHost {
            kernel,
            plan,
            log,
            syscalls: SyscallLog::new(),
            stdout: Vec::new(),
            instrumented_execs: 0,
            suppressed_execs: 0,
            checkpoints: Vec::new(),
        }
    }
}

impl Host for LoggingHost {
    type V = ();

    fn on_branch(
        &mut self,
        bid: BranchId,
        _cond: (i64, &()),
        taken: bool,
        _loc: Loc,
    ) -> Result<u64, HostStop> {
        if self.plan.covers(bid) {
            self.instrumented_execs += 1;
            Ok(self.log.push(bid.0, taken))
        } else {
            if self.plan.suppresses(bid).is_some() {
                // Observed but not logged: the bit is implied by an
                // earlier branch, so deployment pays nothing here.
                self.suppressed_execs += 1;
            }
            Ok(0)
        }
    }

    fn syscall(
        &mut self,
        sys: Sys,
        args: &[(i64, ())],
        mem: &mut Memory<()>,
        meter: &mut Meter,
    ) -> Result<(i64, ()), HostStop> {
        let raw: Vec<i64> = args.iter().map(|a| a.0).collect();
        let eff = self
            .kernel
            .dispatch(sys, &raw, mem)
            .map_err(|f| HostStop::Crash(CrashKind::Mem(f)))?;
        apply_effect(&eff, mem).map_err(|f| HostStop::Crash(CrashKind::Mem(f)))?;
        if let Some(out) = &eff.stdout {
            self.stdout.extend_from_slice(out);
        }
        if self.plan.log_syscalls && is_logged(sys) {
            // Only control metadata: return values and select's ready
            // flags. Input bytes are never logged.
            let flags = if sys == Sys::Select {
                eff.writes
                    .first()
                    .map(|w| w.values.clone())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            let cost = self.syscalls.push(SysRecord {
                sys,
                ret: eff.ret,
                flags,
            });
            meter.charge_instrumentation(cost);
            meter.syscall_log_bytes = self.syscalls.bytes();
            if self.plan.checkpoints {
                if let BranchLogger::Cursors(l) = &self.log {
                    // Syscall-anchored cursor checkpoint: snapshot every
                    // stream's length, charging one cursor-table read per
                    // entry. Anchoring to *logged* syscalls keeps the
                    // record index aligned with the syscall log replay
                    // already follows.
                    let snap = l.positions();
                    meter.charge_instrumentation(minic::cost::CURSOR_STEP_COST * snap.len() as u64);
                    self.checkpoints.push(snap);
                }
            }
        }
        if let Some(sig) = self.kernel.take_pending_signal() {
            return Err(HostStop::Crash(CrashKind::Signal(sig)));
        }
        Ok((eff.ret, ()))
    }

    fn output(&mut self, bytes: &[u8]) {
        self.stdout.extend_from_slice(bytes);
    }
}

/// The artifact shipped from the user site to the developer (§3.1): the
/// crash site, the branch bitvector, and the syscall-result log. The
/// instrumented-branch *list* is not shipped — the developer retained it
/// at build time (it is the [`Plan`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugReport {
    /// Where and why the program crashed.
    pub crash: CrashInfo,
    /// The partial branch trace (flat, or per-location cursor streams).
    pub trace: TraceLog,
    /// Extra instrumentation units the cursor format spent at the user
    /// site (0 under flat) — ships as metadata so the developer-side
    /// tables can report the spend without re-running the deployment.
    pub cursor_spend_units: u64,
    /// Logged syscall results (empty when disabled).
    pub syscalls: SyscallLog,
    /// Syscall-anchored cursor checkpoints: `checkpoints[k]` snapshots
    /// every location's stream length right after the `k`-th logged
    /// syscall. Empty unless the plan's checkpoint escalation rule was
    /// active ([`Plan::checkpoints`]).
    pub checkpoints: Vec<Vec<(u32, u64)>>,
    /// Which method produced the instrumentation (metadata).
    pub method: Method,
}

impl BugReport {
    /// Packages a report after a crash.
    pub fn capture(host: LoggingHost, crash: CrashInfo) -> BugReport {
        let cursor_spend_units = host.log.spend_units();
        BugReport {
            crash,
            trace: host.log.finish(),
            cursor_spend_units,
            syscalls: host.syscalls,
            checkpoints: host.checkpoints,
            method: host.plan.method,
        }
    }

    /// Total transfer size in bytes before compression (the cursor
    /// format counts its compact on-wire encoding; checkpoints ship
    /// varint-packed).
    pub fn transfer_bytes(&self) -> u64 {
        self.trace.bytes() + self.syscalls.bytes() + checkpoints_wire_bytes(&self.checkpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::DynLabel;
    use minic::build;
    use minic::vm::{RunOutcome, Vm};
    use oskit::{KernelConfig, SignalPlan};

    const SRC: &str = r#"
        int main(int argc, char **argv) {
            int n = 0;
            for (int i = 0; i < 8; i++) {       // b0: loop condition
                if (argv[1][0] == 'x') {        // b1: input test
                    n++;
                }
            }
            sys_time();
            return n;
        }
    "#;

    fn run_with_plan(plan: Plan, arg: &[u8]) -> (RunOutcome, LoggingHost, Meter) {
        let cp = build(&[("main", SRC)]).unwrap();
        let host = LoggingHost::new(Kernel::new(KernelConfig::default()), plan);
        let mut vm = Vm::new(&cp, host);
        let out = vm.run(&[b"prog".to_vec(), arg.to_vec()]);
        let meter = vm.meter.clone();
        (out, vm.host, meter)
    }

    #[test]
    fn all_branches_logs_every_execution() {
        let plan = Plan::build(
            Method::AllBranches,
            &[DynLabel::Unvisited; 2],
            &[false; 2],
            2,
        );
        let (out, host, _) = run_with_plan(plan, b"x");
        assert_eq!(out, RunOutcome::Exited(8));
        // Loop: 9 evaluations (8 taken + 1 exit); if: 8 evaluations.
        assert_eq!(host.log.len(), 17);
        assert_eq!(host.instrumented_execs, 17);
    }

    #[test]
    fn partial_plan_logs_subset() {
        // Only the input-dependent branch (b1).
        let plan = Plan {
            method: Method::Dynamic,
            instrumented: vec![false, true],
            log_syscalls: true,
            ..Plan::none(2)
        };
        let (_, host, _) = run_with_plan(plan, b"x");
        assert_eq!(host.log.len(), 8);
    }

    #[test]
    fn logged_bits_encode_directions() {
        let plan = Plan {
            method: Method::Dynamic,
            instrumented: vec![false, true],
            ..Plan::none(2)
        };
        let (_, host, _) = run_with_plan(plan.clone(), b"x");
        let trace = host.log.finish();
        let trace = trace.as_flat().expect("flat plan ships a flat trace");
        // 'x' matches: all 8 bits taken.
        assert!((0..8).all(|i| trace.get(i) == Some(true)));
        let (_, host2, _) = run_with_plan(plan, b"y");
        let trace2 = host2.log.finish();
        let trace2 = trace2.as_flat().unwrap();
        assert!((0..8).all(|i| trace2.get(i) == Some(false)));
    }

    #[test]
    fn cursor_format_splits_the_log_by_location_and_records_spend() {
        // Same program, same coverage, per-location format: the loop
        // condition (b0) and the input test (b1) land in separate
        // streams instead of interleaving in one bitvector.
        let plan = Plan::build(
            Method::AllBranches,
            &[DynLabel::Unvisited; 2],
            &[false; 2],
            2,
        )
        .with_format(LogFormat::PerLocation);
        let (out, host, meter) = run_with_plan(plan, b"x");
        assert_eq!(out, RunOutcome::Exited(8));
        assert_eq!(host.log.len(), 17, "same bit count as flat");
        assert_eq!(host.log.n_locations(), 2);
        assert_eq!(
            host.log.spend_units(),
            17 * minic::cost::CURSOR_STEP_COST,
            "every cursored bit charges the indirection"
        );
        assert!(
            meter.instrumentation_units
                >= 17 * (minic::cost::BRANCH_LOG_COST + minic::cost::CURSOR_STEP_COST),
            "the spend reaches the cost model"
        );
        let trace = host.log.finish();
        let c = trace.as_cursors().expect("cursor plan ships cursors");
        // Loop: 8 taken + 1 exit; if: 8 taken ('x' matches every time).
        assert_eq!(c.stream(0).unwrap().len(), 9);
        assert_eq!(c.stream(0).unwrap().get(8), Some(false));
        assert_eq!(c.stream(1).unwrap().len(), 8);
        assert!((0..8).all(|i| c.stream(1).unwrap().get(i) == Some(true)));
    }

    #[test]
    fn checkpoints_snapshot_cursor_positions_at_logged_syscalls() {
        let mut plan = Plan::build(
            Method::AllBranches,
            &[DynLabel::Unvisited; 2],
            &[false; 2],
            2,
        )
        .with_format(LogFormat::PerLocation);
        plan.checkpoints = true;
        plan.generation = 2;
        let (_, host, meter) = run_with_plan(plan.clone(), b"x");
        // The single sys_time fires after the whole loop: one snapshot,
        // loop stream at 9 bits (8 taken + exit), if stream at 8.
        assert_eq!(host.checkpoints.len(), 1);
        assert_eq!(host.checkpoints[0], vec![(0, 9), (1, 8)]);
        // The snapshot charges the cursor-table reads.
        assert!(
            meter.instrumentation_units
                >= 17 * (minic::cost::BRANCH_LOG_COST + minic::cost::CURSOR_STEP_COST)
                    + 2 * minic::cost::CURSOR_STEP_COST
        );
        let report = BugReport::capture(
            host,
            CrashInfo {
                kind: CrashKind::Signal(11),
                loc: Loc::default(),
                func: "main".into(),
            },
        );
        assert!(
            report.transfer_bytes() > report.trace.bytes() + report.syscalls.bytes(),
            "checkpoints count toward the transfer size"
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: BugReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.checkpoints, report.checkpoints);

        // Without the escalation rule nothing is recorded.
        plan.checkpoints = false;
        let (_, host2, _) = run_with_plan(plan, b"x");
        assert!(host2.checkpoints.is_empty());
    }

    #[test]
    fn instrumentation_cost_is_charged() {
        let all = Plan::build(
            Method::AllBranches,
            &[DynLabel::Unvisited; 2],
            &[false; 2],
            2,
        );
        let (_, _, meter_all) = run_with_plan(all, b"x");
        let none = Plan::none(2);
        let (_, _, meter_none) = run_with_plan(none, b"x");
        assert!(meter_all.units > meter_none.units);
        assert!(
            meter_all.instrumentation_units >= 17 * 17,
            "17 branch executions at 17 units each"
        );
        assert_eq!(meter_none.instrumentation_units, 0);
    }

    #[test]
    fn syscall_results_are_logged_when_enabled() {
        let plan = Plan {
            method: Method::Static,
            instrumented: vec![true, true],
            log_syscalls: true,
            ..Plan::none(2)
        };
        let (_, host, meter) = run_with_plan(plan, b"a");
        assert_eq!(host.syscalls.len(), 1); // the sys_time call
        assert_eq!(host.syscalls.records[0].sys, Sys::Time);
        assert!(meter.syscall_log_bytes > 0);
    }

    #[test]
    fn bug_report_captures_crash_and_logs() {
        let src = r#"
            int main(int argc, char **argv) {
                int i;
                for (i = 0; i < 100; i++) { sys_getuid(); }
                return 0;
            }
        "#;
        let cp = build(&[("main", src)]).unwrap();
        let kcfg = KernelConfig {
            signal_plan: Some(SignalPlan {
                sig: 11,
                after_all_conns_served: false,
                after_n_syscalls: Some(10),
            }),
            ..KernelConfig::default()
        };
        let plan = Plan::build(Method::AllBranches, &[DynLabel::Unvisited], &[false], 1);
        let host = LoggingHost::new(Kernel::new(kcfg), plan);
        let mut vm = Vm::new(&cp, host);
        let out = vm.run(&[b"prog".to_vec()]);
        let crash = out.crash().expect("signal crash").clone();
        let report = BugReport::capture(vm.host, crash.clone());
        assert_eq!(report.crash, crash);
        assert_eq!(report.trace.len(), 10, "10 loop evaluations before sig");
        assert!(report.transfer_bytes() > 0);
        // Roundtrip: the report is a serializable artifact.
        let json = serde_json::to_string(&report).unwrap();
        let back: BugReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_never_contains_input_bytes() {
        // Privacy: a distinctive input string must not appear in the
        // serialized report.
        let plan = Plan::build(
            Method::AllBranches,
            &[DynLabel::Unvisited; 2],
            &[false; 2],
            2,
        );
        let cp = build(&[("main", SRC)]).unwrap();
        let host = LoggingHost::new(Kernel::new(KernelConfig::default()), plan);
        let mut vm = Vm::new(&cp, host);
        let secret = b"SECRETPASSWORD";
        vm.run(&[b"prog".to_vec(), secret.to_vec()]);
        let report = BugReport::capture(
            vm.host,
            CrashInfo {
                kind: CrashKind::Signal(11),
                loc: Loc::default(),
                func: "main".into(),
            },
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("SECRETPASSWORD"));
    }
}
