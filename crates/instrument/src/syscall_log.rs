//! Selective system-call result logging (§2.3).
//!
//! "We log the results of all system calls for which logging considerably
//! simplifies replay, including select() and read(). The input data
//! itself is never logged." — the log records *control metadata* (byte
//! counts, readiness sets, clock/PRNG values), never buffer contents,
//! preserving the privacy property.

use minic::cost::SYSCALL_LOG_COST;
use minic::types::Sys;
use serde::{Deserialize, Serialize};

/// Which syscalls get their results logged.
pub fn is_logged(sys: Sys) -> bool {
    matches!(
        sys,
        Sys::Read | Sys::Select | Sys::Accept | Sys::Time | Sys::Rand
    )
}

/// One logged syscall result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SysRecord {
    /// Which call.
    pub sys: Sys,
    /// The return value (e.g. bytes read, ready count, clock value).
    pub ret: i64,
    /// Control outputs written to memory — only `select`'s 0/1 ready
    /// flags; never input data.
    pub flags: Vec<i64>,
}

/// The shipped syscall-result log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallLog {
    /// Records in execution order.
    pub records: Vec<SysRecord>,
}

impl SyscallLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning the cost units charged.
    pub fn push(&mut self, rec: SysRecord) -> u64 {
        self.records.push(rec);
        SYSCALL_LOG_COST
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate wire size: one tag byte + varint-ish value + flags.
    pub fn bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| 1 + varint_len(r.ret) + r.flags.len() as u64)
            .sum()
    }

    /// A sequential reader.
    pub fn cursor(&self) -> SysCursor<'_> {
        SysCursor { log: self, pos: 0 }
    }
}

fn varint_len(v: i64) -> u64 {
    let mut n = 1;
    let mut x = v.unsigned_abs();
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

/// Sequential reader over a [`SyscallLog`].
#[derive(Debug, Clone)]
pub struct SysCursor<'l> {
    log: &'l SyscallLog,
    pos: usize,
}

impl<'l> SysCursor<'l> {
    /// Takes the next record if it matches the expected call; a mismatch
    /// means the replay diverged before this syscall.
    pub fn next_for(&mut self, sys: Sys) -> Option<&'l SysRecord> {
        let rec = self.log.records.get(self.pos)?;
        if rec.sys != sys {
            return None;
        }
        self.pos += 1;
        Some(rec)
    }

    /// Records consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// True when the log is fully consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.log.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logged_set_matches_paper() {
        assert!(is_logged(Sys::Read));
        assert!(is_logged(Sys::Select));
        assert!(!is_logged(Sys::Write));
        assert!(!is_logged(Sys::Mkdir));
    }

    #[test]
    fn log_accumulates_and_sizes() {
        let mut log = SyscallLog::new();
        let c1 = log.push(SysRecord {
            sys: Sys::Read,
            ret: 42,
            flags: vec![],
        });
        log.push(SysRecord {
            sys: Sys::Select,
            ret: 1,
            flags: vec![0, 1],
        });
        assert_eq!(c1, SYSCALL_LOG_COST);
        assert_eq!(log.len(), 2);
        assert!(log.bytes() >= 4);
    }

    #[test]
    fn cursor_enforces_call_ordering() {
        let mut log = SyscallLog::new();
        log.push(SysRecord {
            sys: Sys::Read,
            ret: 5,
            flags: vec![],
        });
        log.push(SysRecord {
            sys: Sys::Select,
            ret: 1,
            flags: vec![1],
        });
        let mut c = log.cursor();
        assert!(c.next_for(Sys::Select).is_none(), "order mismatch detected");
        assert_eq!(c.next_for(Sys::Read).unwrap().ret, 5);
        assert_eq!(c.next_for(Sys::Select).unwrap().flags, vec![1]);
        assert!(c.exhausted());
    }

    #[test]
    fn no_input_data_in_records() {
        // The record type has no payload field for buffer contents; this
        // test documents the privacy invariant at the type level.
        let r = SysRecord {
            sys: Sys::Read,
            ret: 100,
            flags: vec![],
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("data"));
        assert!(!json.contains("buf"));
    }
}
