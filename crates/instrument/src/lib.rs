//! `instrument` — instrumentation methods and the user-site runtime.
//!
//! Everything that happens between "the developer ships the program" and
//! "a bug report arrives" (§2.3 + §4 of the paper):
//!
//! - [`Plan`]: which branch locations are logged, per the four methods
//!   (`dynamic`, `static`, `dynamic+static`, `all branches`), plus the
//!   log-format decision ([`LogFormat`]);
//! - [`BitLog`]/[`BranchTrace`]: the flat bit-per-branch log with 4 KiB
//!   buffered flushing and its 17-instruction per-branch cost;
//! - [`CursorLog`]/[`CursorTrace`]: the per-branch-location log-format
//!   extension (one bit stream and cursor per location, with a spend
//!   counter and a compact on-wire encoding), unified with the flat
//!   format under [`TraceLog`];
//! - [`SyscallLog`]: selective syscall-result logging (`read` counts,
//!   `select` ready sets — never input data);
//! - [`LoggingHost`]: the instrumented execution host;
//! - [`BugReport`]: the shippable crash artifact;
//! - [`compress`]: transfer-time LZSS compression (the gzip 10–20×
//!   observation).

pub mod builder;
pub mod compress;
pub mod escalate;
pub mod host;
pub mod logger;
pub mod plan;
pub mod syscall_log;

pub use builder::PlanBuilder;
pub use escalate::{escalate, EscalationHints, LiteralClusterHint, LocationHint};
pub use host::{BranchLogger, BugReport, LoggingHost};
pub use logger::{
    BitLog, BranchTrace, CursorLog, CursorTable, CursorTrace, LocStream, TraceCursor, TraceLog,
};
pub use plan::{DynLabel, LogFormat, Method, Plan, Suppressed};
pub use syscall_log::{is_logged, SysCursor, SysRecord, SyscallLog};
