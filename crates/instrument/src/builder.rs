//! [`PlanBuilder`]: the one front door for constructing instrumentation
//! plans.
//!
//! The previous API grew by accretion: `Plan::build` then
//! `.with_suppression(..)` then `.with_cursor_opt_in(..)` then
//! `.with_format(..)`, in whatever order the call site happened to pick
//! — and the order mattered (cursor opt-in inspects the *suppressed*
//! plan; a format override before opt-in gets silently overwritten).
//! The builder takes the same ingredients declaratively and applies
//! them in one fixed order:
//!
//! 1. base plan from method + analysis labels (§2.3 rules),
//! 2. implication suppression,
//! 3. combined-row cursor opt-in (sees the suppressed plan),
//! 4. explicit format override (always wins over the opt-in heuristic),
//! 5. escalation on replay hints (may upgrade format again and bump the
//!    generation).
//!
//! Call order of the setters is irrelevant; only the declaration
//! matters.

use crate::escalate::{escalate, EscalationHints, LiteralClusterHint};
use crate::plan::{DynLabel, LogFormat, Method, Plan};
use minic::{BranchId, BranchInfo};

/// Declarative builder for [`Plan`]; see the module docs for the fixed
/// application order.
#[derive(Debug, Clone)]
pub struct PlanBuilder<'a> {
    method: Method,
    dynamic: &'a [DynLabel],
    static_symbolic: &'a [bool],
    n_branches: usize,
    log_syscalls: bool,
    format: Option<LogFormat>,
    cursor_branches: Option<&'a [BranchInfo]>,
    implications: Option<Vec<(BranchId, BranchId, bool)>>,
    escalation: Option<(EscalationHints, Vec<LiteralClusterHint>)>,
}

impl<'a> PlanBuilder<'a> {
    /// Starts a builder from the §2.3 ingredients: the method and the
    /// two analyses' labels (both indexed by `BranchId`, covering all
    /// `n_branches` locations).
    pub fn new(
        method: Method,
        dynamic: &'a [DynLabel],
        static_symbolic: &'a [bool],
        n_branches: usize,
    ) -> Self {
        PlanBuilder {
            method,
            dynamic,
            static_symbolic,
            n_branches,
            log_syscalls: true,
            format: None,
            cursor_branches: None,
            implications: None,
            escalation: None,
        }
    }

    /// Whether selected syscall results are logged (default: `true`).
    pub fn log_syscalls(mut self, on: bool) -> Self {
        self.log_syscalls = on;
        self
    }

    /// Forces the log format, overriding the cursor opt-in heuristic
    /// (ablations and tests). Escalation may still upgrade it later.
    pub fn format(mut self, format: LogFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// Enables the combined-row cursor opt-in: upgrade to the
    /// per-location format exactly when the (suppressed) plan leaves a
    /// partially instrumented loop cluster (see
    /// [`Plan::has_partial_loop_cluster`]).
    pub fn cursor_opt_in(mut self, branches: &'a [BranchInfo]) -> Self {
        self.cursor_branches = Some(branches);
        self
    }

    /// Applies implication suppression from `staticax`'s analysis (see
    /// the deprecated `Plan::with_suppression` for semantics).
    pub fn suppress<I>(mut self, implications: I) -> Self
    where
        I: IntoIterator<Item = (BranchId, BranchId, bool)>,
    {
        self.implications = Some(implications.into_iter().collect());
        self
    }

    /// Escalates the built plan on replay hints (see
    /// [`crate::escalate()`]). With empty hints this is the identity.
    pub fn escalate(mut self, hints: &EscalationHints, clusters: &[LiteralClusterHint]) -> Self {
        self.escalation = Some((hints.clone(), clusters.to_vec()));
        self
    }

    /// Builds the plan, applying every declared stage in the fixed
    /// order the module docs give.
    pub fn build(self) -> Plan {
        let mut plan = Plan::build(
            self.method,
            self.dynamic,
            self.static_symbolic,
            self.n_branches,
        );
        if !self.log_syscalls {
            plan = plan.without_syscall_logging();
        }
        if let Some(implications) = self.implications {
            plan = plan.apply_suppression(implications);
        }
        if let Some(branches) = self.cursor_branches {
            plan = plan.apply_cursor_opt_in(branches);
        }
        if let Some(format) = self.format {
            plan.format = format;
        }
        if let Some((hints, clusters)) = &self.escalation {
            plan = escalate(&plan, hints, clusters);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::{BranchKind, UnitId};

    fn labels() -> (Vec<DynLabel>, Vec<bool>) {
        use DynLabel::*;
        (
            vec![Symbolic, Symbolic, Concrete, Concrete, Unvisited, Unvisited],
            vec![true, false, true, false, true, false],
        )
    }

    fn branch_infos(kinds: &[(BranchKind, &str)]) -> Vec<BranchInfo> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, (kind, func))| BranchInfo {
                id: BranchId(i as u32),
                kind: *kind,
                unit: UnitId(0),
                line: i as u32,
                col: 0,
                func: func.to_string(),
            })
            .collect()
    }

    #[test]
    fn builder_matches_the_legacy_chain() {
        #![allow(deprecated)]
        let (d, s) = labels();
        let implications = [(BranchId(2), BranchId(0), false)];
        let legacy = Plan::build(Method::Static, &d, &s, 6).with_suppression(implications);
        let built = PlanBuilder::new(Method::Static, &d, &s, 6)
            .suppress(implications)
            .build();
        assert_eq!(legacy, built);
    }

    #[test]
    fn setter_call_order_is_irrelevant() {
        let (d, s) = labels();
        let infos = branch_infos(&[
            (BranchKind::While, "parse"),
            (BranchKind::If, "parse"),
            (BranchKind::If, "parse"),
            (BranchKind::If, "main"),
            (BranchKind::If, "main"),
            (BranchKind::If, "main"),
        ]);
        let implications = [(BranchId(4), BranchId(0), true)];
        let a = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .suppress(implications)
            .cursor_opt_in(&infos)
            .log_syscalls(true)
            .build();
        let b = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .log_syscalls(true)
            .cursor_opt_in(&infos)
            .suppress(implications)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_format_wins_over_opt_in() {
        let (d, s) = labels();
        // parse() has an unlogged while + logged if under the combined
        // method: opt-in alone would upgrade to PerLocation.
        let infos = branch_infos(&[
            (BranchKind::While, "main"),
            (BranchKind::If, "main"),
            (BranchKind::If, "parse"),
            (BranchKind::While, "parse"),
            (BranchKind::If, "parse"),
            (BranchKind::If, "main"),
        ]);
        let upgraded = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .cursor_opt_in(&infos)
            .build();
        assert_eq!(upgraded.format, LogFormat::PerLocation);
        let pinned = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .cursor_opt_in(&infos)
            .format(LogFormat::Flat)
            .build();
        assert_eq!(pinned.format, LogFormat::Flat);
    }

    #[test]
    fn escalation_stage_runs_last_and_bumps_generation() {
        let (d, s) = labels();
        let mut hints = EscalationHints::default();
        hints.loc_mut(3).syscall_divergences = 1;
        hints.consulted.extend([0, 1, 4]);
        hints.observed_runs = 6;
        let plan = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .escalate(&hints, &[])
            .build();
        assert_eq!(plan.generation, 2);
        assert!(plan.covers(BranchId(3)));
        assert_eq!(plan.format, LogFormat::PerLocation);

        // Empty hints keep the builder's output identical to a plain
        // build: the escalation stage is the identity.
        let base = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6).build();
        let noop = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .escalate(&EscalationHints::default(), &[])
            .build();
        assert_eq!(base, noop);
    }

    #[test]
    fn log_syscalls_off_blocks_checkpoints_through_the_builder() {
        let (d, s) = labels();
        let mut hints = EscalationHints::default();
        hints.loc_mut(0).cursor_overruns = 2;
        hints.consulted.extend([0, 1, 4]);
        hints.observed_runs = 3;
        let with_sys = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .escalate(&hints, &[])
            .build();
        assert!(with_sys.checkpoints);
        let without = PlanBuilder::new(Method::DynamicStatic, &d, &s, 6)
            .log_syscalls(false)
            .escalate(&hints, &[])
            .build();
        assert!(!without.checkpoints);
    }
}
